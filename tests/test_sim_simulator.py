"""Tests for the single-core and multi-core simulation drivers."""

import pytest

from repro.prefetchers import NextLinePrefetcher, NoPrefetcher, create_prefetcher
from repro.sim import default_system_config, simulate_mix, simulate_trace
from repro.sim.simulator import SingleCoreSimulator
from repro.sim.types import AccessType, MemoryAccess

from tests.conftest import sequential_trace


class TestSingleCoreSimulator:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_trace([], prefetcher=None)

    def test_counts_instructions(self, seq_trace):
        stats = simulate_trace(seq_trace, prefetcher=None)
        expected = sum(a.instr_gap + 1 for a in seq_trace)
        assert stats.instructions == expected
        assert stats.demand_accesses == len(seq_trace)

    def test_ipc_positive_and_bounded(self, seq_trace):
        stats = simulate_trace(seq_trace, prefetcher=None)
        assert 0.0 < stats.ipc <= 4.0

    def test_deterministic(self, spatial_trace):
        first = simulate_trace(spatial_trace, prefetcher=None)
        second = simulate_trace(spatial_trace, prefetcher=None)
        assert first.cycles == second.cycles
        assert first.llc_misses == second.llc_misses

    def test_replay_when_budget_exceeds_trace(self):
        trace = sequential_trace(num_blocks=16)
        stats = simulate_trace(trace, prefetcher=None, max_instructions=2_000)
        assert stats.instructions >= 2_000

    def test_max_instructions_limits_run(self):
        trace = sequential_trace(num_blocks=512)
        short = simulate_trace(trace, prefetcher=None, max_instructions=500)
        long = simulate_trace(trace, prefetcher=None, max_instructions=2_000)
        assert short.instructions < long.instructions

    def test_warmup_preserves_cache_state(self):
        trace = sequential_trace(num_blocks=64)
        warm = simulate_trace(
            trace, prefetcher=None, warmup_instructions=400, max_instructions=400
        )
        cold = simulate_trace(trace, prefetcher=None, max_instructions=400)
        # After warming up, the same blocks are resident, so fewer misses.
        assert warm.llc_misses <= cold.llc_misses

    def test_prefetcher_receives_loads_only(self):
        calls = []

        class Spy(NoPrefetcher):
            def train(self, pc, address, cycle, result=None):
                calls.append(address)
                return []

        trace = [
            MemoryAccess(pc=1, address=0, access_type=AccessType.LOAD),
            MemoryAccess(pc=1, address=64, access_type=AccessType.STORE),
            MemoryAccess(pc=1, address=128, access_type=AccessType.LOAD),
        ]
        simulate_trace(trace, prefetcher=Spy())
        assert calls == [0, 128]

    def test_next_line_improves_sequential(self, seq_trace):
        base = simulate_trace(seq_trace, prefetcher=None)
        pref = simulate_trace(seq_trace, prefetcher=NextLinePrefetcher(degree=2))
        assert pref.llc_misses < base.llc_misses
        assert pref.speedup(base) > 1.0

    def test_stats_name_tags(self, seq_trace):
        stats = simulate_trace(seq_trace, prefetcher=NoPrefetcher(), name="mytrace")
        assert stats.name == "mytrace"
        assert stats.prefetcher == "none"

    def test_eviction_listener_wired_to_prefetcher(self):
        evicted = []

        class Spy(NoPrefetcher):
            def on_cache_eviction(self, block):
                evicted.append(block)

        trace = sequential_trace(num_blocks=2048)  # exceeds the 768-block L1D
        simulate_trace(trace, prefetcher=Spy())
        assert len(evicted) > 0


class TestMultiCoreSimulator:
    def test_per_core_results(self):
        traces = [sequential_trace(64, pc=0x100), sequential_trace(64, pc=0x200)]
        result = simulate_mix(traces, None, max_instructions_per_core=1_000)
        assert result.num_cores == 2
        for stats in result.per_core.values():
            assert stats.instructions >= 1_000

    def test_mismatched_trace_count_rejected(self):
        from repro.sim.multicore import MultiCoreSimulator

        simulator = MultiCoreSimulator(num_cores=2)
        with pytest.raises(ValueError):
            simulator.run([sequential_trace(16)], max_instructions_per_core=100)

    def test_prefetcher_factory_instantiated_per_core(self):
        created = []

        def factory():
            created.append(1)
            return NoPrefetcher()

        traces = [sequential_trace(32), sequential_trace(32), sequential_trace(32)]
        simulate_mix(traces, factory, max_instructions_per_core=200)
        assert len(created) == 3

    def test_shared_llc_contention_slows_cores(self):
        # Two cores streaming disjoint data must be slower per-core than one
        # core alone with the same per-core configuration and shared DRAM.
        alone = simulate_mix(
            [sequential_trace(512, pc=0x1)],
            None,
            config=default_system_config(1),
            max_instructions_per_core=2_000,
        )
        together = simulate_mix(
            [sequential_trace(512, pc=0x1),
             [MemoryAccess(pc=0x2, address=a.address + (1 << 30), instr_gap=a.instr_gap)
              for a in sequential_trace(512, pc=0x2)]],
            None,
            config=default_system_config(1),  # deliberately NOT scaled up
            max_instructions_per_core=2_000,
        )
        assert together.per_core[0].ipc <= alone.per_core[0].ipc * 1.05

    def test_speedup_with_prefetching_multicore(self):
        traces = [sequential_trace(256, pc=0x10), sequential_trace(256, pc=0x20)]
        baseline = simulate_mix(traces, None, max_instructions_per_core=1_500)
        prefetched = simulate_mix(
            traces,
            lambda: create_prefetcher("ip-stride"),
            max_instructions_per_core=1_500,
        )
        assert prefetched.geomean_speedup(baseline) >= 0.95
