"""The repro lint engine: rule-by-rule fixtures, waivers, CLI and the
"real repository is clean" gate.

Each rule is exercised against a miniature fixture tree (``tmp_path``
acting as a repo root) that seeds exactly the violation the rule exists
to catch, so the assertions can pin the full diagnostic down to rule ID,
path and message fragment.  R2's fixtures are copies of the real anchor
files with one constant edited — the cheapest way to guarantee every
anchor resolves while still proving drift detection.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, run_lint
from repro.analysis.lint.diagnostics import Diagnostic, is_waived, waived_rules
from repro.cli import main
from repro.prefetchers import available_prefetchers

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The real files R2 anchors on; fixture trees copy these wholesale.
R2_ANCHORS = (
    "src/repro/_kernels.c",
    "src/repro/sim/driver.py",
    "src/repro/prefetchers/arrays.py",
    "src/repro/sim/types.py",
    "src/repro/prefetchers/compiled.py",
)


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def _copy_anchors(root: Path) -> None:
    for rel in R2_ANCHORS:
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, target)


def _full_grid_snapshot() -> dict:
    return {name: {} for name in available_prefetchers()}


def _messages(report, rule=None):
    return [
        d.format() for d in report.diagnostics if rule is None or d.rule == rule
    ]


# --------------------------------------------------------------------------- #
# Waiver syntax
# --------------------------------------------------------------------------- #
class TestWaiverSyntax:
    def test_no_marker(self):
        assert waived_rules("x = 1  # just a comment") is None

    def test_single_rule(self):
        assert waived_rules("x = {}  # repro-lint: waive R3") == {"R3"}

    def test_multiple_rules(self):
        assert waived_rules("# repro-lint: waive R2, R3") == {"R2", "R3"}

    def test_all(self):
        assert waived_rules("# repro-lint: waive all") == {"all"}

    def test_case_insensitive(self):
        assert waived_rules("# REPRO-LINT: WAIVE r3") == {"R3"}

    def test_c_comment_style(self):
        assert waived_rules("int x; /* repro-lint: waive R2 */") == {"R2"}

    def test_marker_without_tokens_waives_nothing(self):
        # A bare marker is a loud no-op, not a blanket waiver.
        assert waived_rules("# repro-lint: waive") == frozenset()

    def test_is_waived_on_flagged_line(self):
        lines = ["a = {}  # repro-lint: waive R3"]
        assert is_waived(Diagnostic("R3", "f.py", 1, "m"), lines)
        assert not is_waived(Diagnostic("R1", "f.py", 1, "m"), lines)

    def test_is_waived_on_line_above(self):
        lines = ["# repro-lint: waive R3", "a = {}"]
        assert is_waived(Diagnostic("R3", "f.py", 2, "m"), lines)

    def test_not_waived_two_lines_up(self):
        lines = ["# repro-lint: waive R3", "", "a = {}"]
        assert not is_waived(Diagnostic("R3", "f.py", 3, "m"), lines)

    def test_all_waives_any_rule(self):
        lines = ["a = {}  # repro-lint: waive all"]
        assert is_waived(Diagnostic("R4", "f.py", 1, "m"), lines)


# --------------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------------- #
class TestEngine:
    def test_unknown_rule_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lint(root=tmp_path, rules=["R1", "R99"])

    def test_rule_subset_runs_only_those(self, tmp_path):
        report = run_lint(root=tmp_path, rules=["R5"])
        assert report.rules_run == ("R5",)

    def test_empty_root_is_mostly_clean(self, tmp_path):
        # An empty tree has nothing for the file-based rules to flag; R4
        # still requires the golden snapshot (the registry is live).
        report = run_lint(root=tmp_path)
        assert all(d.rule == "R4" for d in report.diagnostics)

    def test_diagnostic_format(self):
        d = Diagnostic("R1", "src/x.py", 12, "message text")
        assert d.format() == "src/x.py:12: R1: message text"


# --------------------------------------------------------------------------- #
# R1 — job-key completeness
# --------------------------------------------------------------------------- #
class TestR1JobKeys:
    def _job(self, body: str) -> str:
        return (
            "from dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\n"
            "class Job:\n" + textwrap.indent(textwrap.dedent(body), "    ")
        )

    def test_unconsumed_field_is_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/job.py", self._job(
            """\
            trace: str
            seed: int
            batch: str

            def to_dict(self):
                return {"trace": self.trace, "seed": self.seed}
            """
        ))
        report = run_lint(root=tmp_path, rules=["R1"])
        assert len(report.diagnostics) == 1
        diagnostic = report.diagnostics[0]
        assert diagnostic.rule == "R1"
        assert diagnostic.path == "src/repro/job.py"
        assert "'batch' of Job" in diagnostic.message
        assert "KEY_EXCLUDED" in diagnostic.message

    def test_key_excluded_field_is_fine(self, tmp_path):
        _write(tmp_path, "src/repro/job.py", self._job(
            """\
            trace: str
            batch: str

            KEY_EXCLUDED = ("batch",)

            def to_dict(self):
                return {"trace": self.trace}
            """
        ))
        assert run_lint(root=tmp_path, rules=["R1"]).ok

    def test_transitive_consumption_through_key(self, tmp_path):
        _write(tmp_path, "src/repro/job.py", self._job(
            """\
            trace: str
            seed: int

            def _identity(self):
                return (self.trace, self.seed)

            def to_dict(self):
                return dict(zip(("trace", "seed"), self._identity()))
            """
        ))
        assert run_lint(root=tmp_path, rules=["R1"]).ok

    def test_asdict_consumes_every_field(self, tmp_path):
        _write(tmp_path, "src/repro/job.py", self._job(
            """\
            trace: str
            seed: int

            def to_dict(self):
                from dataclasses import asdict
                return asdict(self)
            """
        ))
        assert run_lint(root=tmp_path, rules=["R1"]).ok

    def test_stale_exclusions_are_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/job.py", self._job(
            """\
            trace: str

            KEY_EXCLUDED = ("gone", "trace")

            def to_dict(self):
                return {"trace": self.trace}
            """
        ))
        report = run_lint(root=tmp_path, rules=["R1"])
        messages = _messages(report)
        assert len(messages) == 2
        assert any("'gone'" in m and "no such field" in m for m in messages)
        assert any("'trace'" in m and "consumed" in m for m in messages)

    def test_unfrozen_or_keyless_classes_ignored(self, tmp_path):
        _write(tmp_path, "src/repro/job.py",
            """\
            from dataclasses import dataclass

            @dataclass
            class Mutable:
                hidden: int

                def to_dict(self):
                    return {}

            @dataclass(frozen=True)
            class NoKey:
                hidden: int
            """
        )
        assert run_lint(root=tmp_path, rules=["R1"]).ok


# --------------------------------------------------------------------------- #
# R2 — twin-constant drift
# --------------------------------------------------------------------------- #
class TestR2TwinConstants:
    def test_faithful_copy_is_clean(self, tmp_path):
        _copy_anchors(tmp_path)
        report = run_lint(root=tmp_path, rules=["R2"])
        assert report.ok, _messages(report)

    def test_seeded_flag_drift_is_caught(self, tmp_path):
        _copy_anchors(tmp_path)
        driver = tmp_path / "src/repro/sim/driver.py"
        text = driver.read_text(encoding="utf-8")
        assert "_F_DIRTY = 8" in text
        driver.write_text(
            text.replace("_F_DIRTY = 8", "_F_DIRTY = 9"), encoding="utf-8"
        )
        report = run_lint(root=tmp_path, rules=["R2"])
        assert len(report.diagnostics) == 1
        message = report.diagnostics[0].message
        assert "twin drift" in message and "_F_DIRTY" in message

    def test_seeded_stamp_limit_drift_is_caught(self, tmp_path):
        _copy_anchors(tmp_path)
        arrays = tmp_path / "src/repro/prefetchers/arrays.py"
        text = arrays.read_text(encoding="utf-8")
        assert "DEFAULT_STAMP_LIMIT = 1 << 60" in text
        arrays.write_text(
            text.replace(
                "DEFAULT_STAMP_LIMIT = 1 << 60", "DEFAULT_STAMP_LIMIT = 1 << 59"
            ),
            encoding="utf-8",
        )
        report = run_lint(root=tmp_path, rules=["R2"])
        assert any("STAMP_LIMIT" in d.message for d in report.diagnostics)

    def test_missing_anchor_is_loud(self, tmp_path):
        _copy_anchors(tmp_path)
        (tmp_path / "src/repro/sim/types.py").unlink()
        report = run_lint(root=tmp_path, rules=["R2"])
        assert any(
            "twin anchor file" in d.message and "types.py" in d.message
            for d in report.diagnostics
        )

    def test_pure_python_checkout_is_silent(self, tmp_path):
        # No _kernels.c at all: nothing to mirror, not an error.
        assert run_lint(root=tmp_path, rules=["R2"]).ok


# --------------------------------------------------------------------------- #
# R3 — hot-path hygiene
# --------------------------------------------------------------------------- #
class TestR3Hygiene:
    def test_unslotted_class_in_hot_module(self, tmp_path):
        _write(tmp_path, "src/repro/sim/cache.py",
            """\
            class Cache:
                def __init__(self):
                    self.sets = []
            """
        )
        report = run_lint(root=tmp_path, rules=["R3"])
        assert _messages(report) == [
            "src/repro/sim/cache.py:1: R3: class Cache lives in a hot module "
            "and must define __slots__"
        ]

    def test_slotted_class_is_fine(self, tmp_path):
        _write(tmp_path, "src/repro/sim/cache.py",
            """\
            class Cache:
                __slots__ = ("sets",)
            """
        )
        assert run_lint(root=tmp_path, rules=["R3"]).ok

    def test_foreign_base_is_exempt(self, tmp_path):
        _write(tmp_path, "src/repro/sim/cache.py",
            """\
            from enum import Enum

            class Kind(Enum):
                A = 1
            """
        )
        assert run_lint(root=tmp_path, rules=["R3"]).ok

    def test_dataclass_without_slots(self, tmp_path):
        _write(tmp_path, "src/repro/prefetchers/entries.py",
            """\
            from dataclasses import dataclass

            @dataclass
            class Entry:
                value: int
            """
        )
        report = run_lint(root=tmp_path, rules=["R3"])
        assert len(report.diagnostics) == 1
        assert "dataclass Entry must pass slots=True" in report.diagnostics[0].message

    def test_module_level_mutable_state(self, tmp_path):
        _write(tmp_path, "src/repro/sim/helper.py", "CACHE = {}\n")
        report = run_lint(root=tmp_path, rules=["R3"])
        assert len(report.diagnostics) == 1
        assert "module-level mutable state 'CACHE'" in report.diagnostics[0].message

    def test_waived_lookup_table(self, tmp_path):
        _write(
            tmp_path, "src/repro/sim/helper.py",
            "TABLE = {1: 2}  # repro-lint: waive R3\n",
        )
        report = run_lint(root=tmp_path, rules=["R3"])
        assert report.ok
        assert len(report.waived) == 1

    def test_unseeded_randomness(self, tmp_path):
        _write(tmp_path, "src/repro/sim/noise.py",
            """\
            import random
            from random import choice

            def jitter():
                return random.random() + random.Random().random()

            def seeded(seed):
                return random.Random(seed).random()
            """
        )
        report = run_lint(root=tmp_path, rules=["R3"])
        messages = _messages(report)
        assert len(messages) == 3  # the import, random.random(), Random()
        assert any("from random import choice" in m for m in messages)
        assert any("random.random()" in m for m in messages)
        assert any("without a seed argument" in m for m in messages)

    def test_prefetchers_module_state_not_checked(self, tmp_path):
        # Module-state and randomness sub-checks are sim/-only.
        _write(tmp_path, "src/repro/prefetchers/tbl.py", "REGISTRY = {}\n")
        assert run_lint(root=tmp_path, rules=["R3"]).ok


# --------------------------------------------------------------------------- #
# R4 — golden-grid registry coverage
# --------------------------------------------------------------------------- #
class TestR4RegistryCoverage:
    def test_full_snapshot_is_clean(self, tmp_path):
        _write(
            tmp_path, "tests/goldens/spatial-s3.json",
            json.dumps(_full_grid_snapshot()),
        )
        assert run_lint(root=tmp_path, rules=["R4"]).ok

    def test_unpinned_prefetcher_is_flagged(self, tmp_path):
        snapshot = _full_grid_snapshot()
        snapshot.pop("gaze")
        _write(tmp_path, "tests/goldens/spatial-s3.json", json.dumps(snapshot))
        report = run_lint(root=tmp_path, rules=["R4"])
        assert len(report.diagnostics) == 1
        message = report.diagnostics[0].message
        assert "'gaze'" in message and "REFRESH_GOLDENS" in message

    def test_stale_snapshot_entry_is_flagged(self, tmp_path):
        snapshot = _full_grid_snapshot()
        snapshot["retired-design"] = {}
        _write(tmp_path, "tests/goldens/spatial-s3.json", json.dumps(snapshot))
        report = run_lint(root=tmp_path, rules=["R4"])
        assert len(report.diagnostics) == 1
        assert "stale golden-grid entry 'retired-design'" in report.diagnostics[0].message

    def test_missing_snapshot_is_flagged(self, tmp_path):
        report = run_lint(root=tmp_path, rules=["R4"])
        assert len(report.diagnostics) == 1
        assert "snapshot not found" in report.diagnostics[0].message

    def test_unparseable_snapshot_is_flagged(self, tmp_path):
        _write(tmp_path, "tests/goldens/spatial-s3.json", "{not json")
        report = run_lint(root=tmp_path, rules=["R4"])
        assert len(report.diagnostics) == 1
        assert "unparseable" in report.diagnostics[0].message


# --------------------------------------------------------------------------- #
# R5 — exhaustive decline reasons
# --------------------------------------------------------------------------- #
class TestR5DeclineReasons:
    def test_reasonless_declines_are_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/sim/driver.py",
            """\
            def try_attach(sim):
                if sim.bad:
                    return None, None
                if sim.worse:
                    return None, ""
                if sim.fine:
                    return None, "honest reason"
                if sim.dynamic:
                    return None, sim.reason
                return object(), None
            """
        )
        report = run_lint(root=tmp_path, rules=["R5"])
        messages = _messages(report)
        assert len(messages) == 2
        assert any("reason slot is None" in m for m in messages)
        assert any("empty string" in m for m in messages)

    def test_triple_decline_checks_last_slot(self, tmp_path):
        _write(tmp_path, "src/repro/sim/driver.py",
            """\
            def classify(p):
                if p is None:
                    return None, None, None
                return 1, p, None
            """
        )
        report = run_lint(root=tmp_path, rules=["R5"])
        # Only the first return declines (first element literal None).
        assert len(report.diagnostics) == 1
        assert report.diagnostics[0].line == 3


class TestR6SilentHandlers:
    def test_bare_except_without_reraise_is_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/experiments/cache.py",
            """\
            def load(path):
                try:
                    return path.read_bytes()
                except:
                    return None
            """
        )
        report = run_lint(root=tmp_path, rules=["R6"])
        messages = _messages(report)
        assert len(messages) == 1
        assert "bare except" in messages[0]
        assert "KeyboardInterrupt" in messages[0]

    def test_except_baseexception_counts_as_bare(self, tmp_path):
        _write(tmp_path, "src/repro/experiments/engine.py",
            """\
            def run(job):
                try:
                    job()
                except BaseException:
                    return 0
            """
        )
        report = run_lint(root=tmp_path, rules=["R6"])
        assert len(report.diagnostics) == 1

    def test_silent_pass_handler_is_flagged(self, tmp_path):
        _write(tmp_path, "src/repro/experiments/executors.py",
            """\
            def cleanup(pool):
                try:
                    pool.shutdown()
                except OSError:
                    pass
            """
        )
        report = run_lint(root=tmp_path, rules=["R6"])
        messages = _messages(report)
        assert len(messages) == 1
        assert "silent exception handler" in messages[0]

    def test_handlers_that_reraise_or_record_pass(self, tmp_path):
        _write(tmp_path, "src/repro/experiments/executors.py",
            """\
            def run(job, failures):
                try:
                    return job()
                except ValueError:
                    failures.append("boom")
                    return None
                except OSError:
                    raise
                except BaseException:
                    job.abort()
                    raise
            """
        )
        report = run_lint(root=tmp_path, rules=["R6"])
        assert report.ok

    def test_waiver_with_reason_moves_diagnostic_aside(self, tmp_path):
        _write(tmp_path, "src/repro/experiments/cache.py",
            """\
            def sweep(path):
                try:
                    path.unlink()
                except OSError:  # repro-lint: waive R6 -- raced; gone either way
                    pass
            """
        )
        report = run_lint(root=tmp_path, rules=["R6"])
        assert report.ok
        assert len(report.waived) == 1
        assert report.waived[0].rule == "R6"

    def test_scope_is_experiments_only(self, tmp_path):
        _write(tmp_path, "src/repro/sim/driver.py",
            """\
            def poke(sim):
                try:
                    sim.step()
                except:
                    pass
            """
        )
        report = run_lint(root=tmp_path, rules=["R6"])
        assert report.ok


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestLintCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        code = main(["lint", "--root", str(tmp_path), "--rules", "R5"])
        assert code == 0
        assert "repro lint: clean" in capsys.readouterr().out

    def test_problems_exit_one_with_diagnostics(self, tmp_path, capsys):
        _write(tmp_path, "src/repro/sim/driver.py",
            "def f():\n    return None, None\n",
        )
        code = main(["lint", "--root", str(tmp_path), "--rules", "R5"])
        assert code == 1
        out = capsys.readouterr().out
        assert "src/repro/sim/driver.py:2: R5:" in out
        assert "1 problem" in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rules", "R99"]) == 2

    def test_check_alias(self, tmp_path):
        assert main(["lint", "--check", "--root", str(tmp_path),
                     "--rules", "R5"]) == 0


# --------------------------------------------------------------------------- #
# The real repository ships lint-clean
# --------------------------------------------------------------------------- #
class TestRealRepository:
    def test_repo_is_clean(self):
        report = run_lint(root=REPO_ROOT)
        assert report.ok, "\n".join(_messages(report))
        assert report.rules_run == tuple(sorted(RULES))

    def test_known_waiver_is_routed_to_waived(self):
        # batch.py's init-once decode table carries the repo's one real
        # R3 waiver; it must surface as waived, not silently vanish.
        report = run_lint(root=REPO_ROOT, rules=["R3"])
        assert any(
            w.path == "src/repro/sim/batch.py" and w.rule == "R3"
            for w in report.waived
        )
