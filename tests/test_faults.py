"""Chaos tests: fault plans, retrying executors and the crash-safe cache.

The contract under test is the fault-tolerance tentpole's acceptance
property: a figure-sized batch run under a seeded fault plan (worker
kills, hangs, torn/bit-flipped cache writes, transient I/O errors)
finishes **bit-identical** to a fault-free run, with every recovery
counted, and ``strict=True`` turns residual failures into a structured
:class:`BatchExecutionError` instead of wrong numbers.

Every test pins its own ``faults=`` argument (a spec or ``"off"``) and
the autouse fixture strips ``REPRO_FAULT_PLAN`` from the environment, so
the assertions stay exact even inside the CI chaos lane, which exports a
plan for the rest of the suite.
"""

from __future__ import annotations

import json
import math
import multiprocessing
import time

import pytest

from repro.cli import main
from repro.experiments.cache import (
    CorruptEntry,
    ResultCache,
    decode_entry,
    encode_entry,
)
from repro.experiments.engine import build_engine
from repro.experiments.executors import (
    BatchExecutionError,
    JobFailure,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
)
from repro.experiments.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    corrupt_payload,
    resolve_fault_plan,
)
from repro.experiments.jobs import SimulationJob
from repro.experiments.runner import RunResult
from repro.sim.config import default_system_config
from repro.workloads.suites import trace_specs_for_suite


@pytest.fixture(autouse=True)
def _no_env_plan(monkeypatch):
    """Pin every test to its explicit ``faults=`` argument.

    The CI chaos lane exports ``REPRO_FAULT_PLAN`` for the whole suite;
    these tests assert exact counters, so an inherited plan must not
    stack on top of the one under test.
    """
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)


def _jobs(n=4, trace_length=600):
    """A figure-sized batch: (trace x prefetcher) cells, pairwise distinct."""
    specs = trace_specs_for_suite("spec17")[: max(1, (n + 1) // 2)]
    system = default_system_config(1)
    jobs = []
    for spec in specs:
        for prefetcher in ("ip-stride", None):
            jobs.append(
                SimulationJob(
                    spec=spec,
                    prefetcher=prefetcher,
                    system=system,
                    trace_length=trace_length,
                )
            )
    return jobs[:n]


def _rows(results):
    """Comparable plain-data form of a result list (bit-exact via to_dict)."""
    return [r.to_dict() for r in results]


def _reference(jobs):
    """Fault-free serial stats for ``jobs`` — the bit-identity baseline."""
    return SerialExecutor(faults="off").run(jobs)


# --------------------------------------------------------------------------- #
# The plan itself
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_spec_round_trip_is_exact(self):
        spec = "seed=1337;worker.crash:rate=0.35;worker.hang:rate=0.1,seconds=2"
        plan = FaultPlan.from_spec(spec)
        assert plan.to_spec() == spec
        assert FaultPlan.from_spec(plan.to_spec()).to_spec() == plan.to_spec()

    def test_decisions_are_deterministic_across_instances(self):
        spec = "seed=99;worker.error:rate=0.5,attempts=0"
        first = FaultPlan.from_spec(spec)
        second = FaultPlan.from_spec(spec)
        tokens = [f"job-{i}" for i in range(64)]
        decisions_a = [first.should_fire("worker.error", t) is not None for t in tokens]
        decisions_b = [second.should_fire("worker.error", t) is not None for t in tokens]
        assert decisions_a == decisions_b
        # A 0.5 rate over 64 tokens fires some but not all of them.
        assert 0 < sum(decisions_a) < len(tokens)

    def test_seed_changes_the_schedule(self):
        tokens = [f"job-{i}" for i in range(64)]

        def schedule(seed):
            plan = FaultPlan.from_spec(f"seed={seed};worker.error:rate=0.5")
            return [plan.should_fire("worker.error", t) is not None for t in tokens]

        assert schedule(1) != schedule(2)

    def test_rate_bounds(self):
        never = FaultPlan(rules=[FaultRule("worker.error", rate=0.0)])
        always = FaultPlan(rules=[FaultRule("worker.error", rate=1.0)])
        assert all(
            never.should_fire("worker.error", f"t{i}") is None for i in range(32)
        )
        assert all(
            always.should_fire("worker.error", f"t{i}") is not None
            for i in range(32)
        )

    def test_attempts_gate_guarantees_retry_recovery(self):
        plan = FaultPlan(rules=[FaultRule("worker.error")])  # attempts=1
        assert plan.should_fire("worker.error", "t", attempt=1) is not None
        assert plan.should_fire("worker.error", "t", attempt=2) is None
        every = FaultPlan(rules=[FaultRule("worker.error", attempts=0)])
        assert every.should_fire("worker.error", "t", attempt=7) is not None

    def test_max_fires_caps_per_process_fires(self):
        plan = FaultPlan(rules=[FaultRule("worker.error", max_fires=2)])
        fired = [plan.should_fire("worker.error", f"t{i}") for i in range(5)]
        assert sum(rule is not None for rule in fired) == 2
        assert plan.fire_count("worker.error") == 2

    def test_unknown_site_and_bad_values_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("worker.explode")
        with pytest.raises(ValueError, match="rate"):
            FaultRule("worker.error", rate=1.5)
        with pytest.raises(ValueError, match="parameter"):
            FaultPlan.from_spec("worker.error:boom=1")
        with pytest.raises(ValueError, match="seed"):
            FaultPlan.from_spec("seed=abc")

    def test_resolve_none_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=5;worker.error:rate=0.25")
        plan = resolve_fault_plan(None)
        assert plan is not None and plan.seed == 5
        assert resolve_fault_plan("off") is None
        assert resolve_fault_plan("") is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "off")
        assert resolve_fault_plan(None) is None

    def test_resolve_passes_plans_through(self):
        plan = FaultPlan.from_spec("seed=3;cache.torn")
        assert resolve_fault_plan(plan) is plan
        assert resolve_fault_plan(None) is None  # env stripped by fixture

    def test_os_error_sites_carry_injected_marker(self):
        plan = FaultPlan.from_spec("cache.put.enospc")
        with pytest.raises(OSError, match="injected: cache.put.enospc"):
            plan.maybe_os_error("cache.put.enospc", "key")

    def test_corrupt_payload_torn_and_bitflip(self):
        plan = FaultPlan(seed=11)
        data = b'{"stats": {"x": 1}, "sha256": "abc"}'
        torn = corrupt_payload(data, "torn", plan, "k")
        assert torn == data[: len(data) // 2]
        flipped = corrupt_payload(data, "bitflip", plan, "k")
        assert len(flipped) == len(data)
        diff_bits = sum(
            bin(a ^ b).count("1") for a, b in zip(data, flipped)
        )
        assert diff_bits == 1
        # Deterministic: same (plan seed, token) flips the same bit.
        assert corrupt_payload(data, "bitflip", plan, "k") == flipped


# --------------------------------------------------------------------------- #
# Serial retry path
# --------------------------------------------------------------------------- #
class TestSerialRetry:
    def test_transient_error_is_retried_to_bit_identity(self):
        jobs = _jobs(2)
        chaotic = SerialExecutor(faults="seed=1;worker.error:rate=1.0")
        outcome = chaotic.run_detailed(jobs)
        assert outcome.ok
        # attempts=1 (default) fires on every first attempt only: each job
        # burns exactly one retry and then must succeed.
        assert outcome.retries == len(jobs)
        assert _rows(outcome.results) == _rows(_reference(jobs))

    def test_exhausted_retries_become_structured_failures(self):
        jobs = _jobs(2)
        executor = SerialExecutor(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            faults="seed=1;worker.error:rate=1.0,attempts=0",
        )
        outcome = executor.run_detailed(jobs)
        assert not outcome.ok
        assert len(outcome.failures) == len(jobs)
        for failure, job in zip(outcome.results, jobs):
            assert isinstance(failure, JobFailure)
            assert failure.key == job.key()
            assert failure.attempts == 2
            assert failure.reason == "error"
            assert "FaultInjected" in failure.error
            assert "FaultInjected" in failure.traceback

    def test_strict_run_raises_batch_execution_error(self):
        jobs = _jobs(1)
        executor = SerialExecutor(
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            faults="seed=1;worker.error:rate=1.0,attempts=0",
        )
        with pytest.raises(BatchExecutionError) as excinfo:
            executor.run(jobs)
        assert len(excinfo.value.failures) == 1
        assert "failed after 2 attempt(s)" in str(excinfo.value)

    def test_keyboard_interrupt_is_not_swallowed_by_retries(self, monkeypatch):
        class Interrupting:
            def key(self, salt=""):
                return "interrupting-job"

        def boom(job):
            raise KeyboardInterrupt

        import repro.experiments.executors as executors_module

        monkeypatch.setattr(executors_module, "execute_job", boom)
        with pytest.raises(KeyboardInterrupt):
            SerialExecutor(faults="off").run_detailed([Interrupting()])

    def test_retry_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.1, backoff_factor=2.0,
            backoff_max_s=0.5, jitter=0.25,
        )
        delays = [policy.delay("token", attempt) for attempt in (1, 2, 3, 4)]
        assert delays == [policy.delay("token", attempt) for attempt in (1, 2, 3, 4)]
        for attempt, delay in enumerate(delays, start=1):
            base = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert base * 0.75 <= delay <= base


# --------------------------------------------------------------------------- #
# Parallel chaos: crashes, hangs, interrupts
# --------------------------------------------------------------------------- #
class TestParallelChaos:
    def test_worker_crashes_are_survived_bit_identically(self):
        jobs = _jobs(4)
        executor = ParallelExecutor(
            jobs=2,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
            faults="seed=7;worker.crash:rate=0.6;worker.error:rate=0.5",
        )
        outcome = executor.run_detailed(jobs)
        assert outcome.ok
        # The seeded plan must actually have injected something, or the
        # test proves nothing.
        assert outcome.retries + outcome.crashes > 0
        assert _rows(outcome.results) == _rows(_reference(jobs))

    def test_hung_worker_is_reclaimed_by_job_timeout(self):
        jobs = _jobs(2)
        executor = ParallelExecutor(
            jobs=2,
            retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
            job_timeout=1.0,
            faults="seed=7;worker.hang:rate=1.0,seconds=60",
        )
        start = time.monotonic()
        outcome = executor.run_detailed(jobs)
        elapsed = time.monotonic() - start
        assert outcome.ok
        assert outcome.timeouts >= 1
        # Reclamation, not the 60 s hang, bounds the wall clock.
        assert elapsed < 30
        assert _rows(outcome.results) == _rows(_reference(jobs))

    def test_injected_interrupt_leaves_no_orphan_workers(self):
        jobs = _jobs(4)
        executor = ParallelExecutor(
            jobs=2,
            retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
            faults="seed=7;main.interrupt",
        )
        with pytest.raises(KeyboardInterrupt):
            executor.run_detailed(jobs)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(p.is_alive() for p in multiprocessing.active_children()):
                break
            time.sleep(0.05)
        leaked = [p for p in multiprocessing.active_children() if p.is_alive()]
        assert not leaked, f"orphaned worker processes: {leaked}"

    def test_single_job_batches_fall_back_to_serial(self):
        jobs = _jobs(1)
        executor = ParallelExecutor(jobs=4, faults="off")
        assert _rows(executor.run(jobs)) == _rows(_reference(jobs))


# --------------------------------------------------------------------------- #
# Crash-safe cache
# --------------------------------------------------------------------------- #
class TestCacheCrashSafety:
    def _stats(self):
        return _reference(_jobs(1))[0]

    def test_entry_bytes_are_a_pure_function_of_key_and_stats(self):
        stats = self._stats()
        assert encode_entry("k" * 64, stats) == encode_entry("k" * 64, stats)
        decoded = decode_entry(encode_entry("k" * 64, stats), key="k" * 64)
        assert decoded.to_dict() == stats.to_dict()

    def test_concurrent_writers_publish_identical_files(self, tmp_path):
        stats = self._stats()
        key = "ab" + "0" * 62
        first = ResultCache(tmp_path / "a")
        second = ResultCache(tmp_path / "b")
        first.put(key, stats)
        second.put(key, stats)
        assert (
            first.path_for(key).read_bytes() == second.path_for(key).read_bytes()
        )

    def test_decode_rejects_torn_bitflipped_and_mismatched_entries(self):
        stats = self._stats()
        key = "cd" + "0" * 62
        data = encode_entry(key, stats)
        plan = FaultPlan(seed=3)
        with pytest.raises(CorruptEntry):
            decode_entry(corrupt_payload(data, "torn", plan, key), key=key)
        with pytest.raises(CorruptEntry):
            decode_entry(corrupt_payload(data, "bitflip", plan, key), key=key)
        with pytest.raises(CorruptEntry, match="key mismatch"):
            decode_entry(data, key="ee" + "0" * 62)

    def test_legacy_unchecksummed_entries_still_load(self, tmp_path):
        stats = self._stats()
        key = "12" + "0" * 62
        cache = ResultCache(tmp_path)
        payload = json.loads(encode_entry(key, stats).decode("utf-8"))
        del payload["sha256"]
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(key) is not None
        assert cache.verify()["legacy"] == 1

    def test_corrupt_entry_is_quarantined_and_healed(self, tmp_path):
        stats = self._stats()
        key = "34" + "0" * 62
        cache = ResultCache(tmp_path, faults="seed=3;cache.bitflip:rate=1.0")
        cache.put(key, stats)
        assert cache.get(key) is None  # corrupt -> miss, not raise
        assert cache.quarantined == 1
        assert not cache.path_for(key).exists()
        corpses = list(cache.quarantine_root.glob("*.json"))
        assert len(corpses) == 1
        # Healing: a clean writer republishes; the quarantined corpse stays.
        clean = ResultCache(tmp_path, faults="off")
        clean.put(key, stats)
        assert clean.get(key).to_dict() == stats.to_dict()
        assert list(cache.quarantine_root.glob("*.json")) == corpses

    def test_quarantine_names_never_collide(self, tmp_path):
        stats = self._stats()
        key = "56" + "0" * 62
        cache = ResultCache(tmp_path, faults="seed=3;cache.torn:rate=1.0")
        for _ in range(3):
            cache.put(key, stats)
            assert cache.get(key) is None
        assert len(list(cache.quarantine_root.glob("*.json"))) == 3

    def test_transient_put_errors_degrade_to_no_op(self, tmp_path):
        stats = self._stats()
        key = "78" + "0" * 62
        cache = ResultCache(
            tmp_path, faults="seed=3;cache.put.enospc:max_fires=1"
        )
        cache.put(key, stats)
        assert cache.store_errors == 1 and cache.stores == 0
        assert cache.get(key) is None  # nothing was written
        cache.put(key, stats)  # max_fires exhausted: this one lands
        assert cache.stores == 1
        assert cache.get(key).to_dict() == stats.to_dict()

    def test_transient_get_errors_are_misses_without_quarantine(self, tmp_path):
        stats = self._stats()
        key = "9a" + "0" * 62
        writer = ResultCache(tmp_path, faults="off")
        writer.put(key, stats)
        reader = ResultCache(tmp_path, faults="seed=3;cache.get.eio:max_fires=1")
        assert reader.get(key) is None
        assert reader.quarantined == 0
        assert reader.path_for(key).exists()  # nothing on disk is known-bad
        assert reader.get(key) is not None  # transient error cleared

    def test_verify_quarantines_every_planted_corruption(self, tmp_path):
        stats = self._stats()
        cache = ResultCache(tmp_path, faults="off")
        keys = [f"{i:02d}" + "0" * 62 for i in range(4)]
        for key in keys:
            cache.put(key, stats)
        # Plant: one torn entry, one bit-flipped entry, one orphaned temp.
        torn_path = cache.path_for(keys[0])
        torn_path.write_bytes(torn_path.read_bytes()[:40])
        flip_path = cache.path_for(keys[1])
        flip_path.write_bytes(
            corrupt_payload(flip_path.read_bytes(), "bitflip", FaultPlan(), keys[1])
        )
        (torn_path.parent / ".tmp-orphan.json").write_bytes(b"partial")
        report = cache.verify()
        assert report == {
            "scanned": 4, "ok": 2, "legacy": 0,
            "quarantined": 2, "tmp_removed": 1,
        }
        info = cache.info()
        assert info["entries"] == 2
        assert info["quarantine_entries"] == 2
        assert info["quarantine_bytes"] > 0
        assert info["tmp_files"] == 0
        # Undamaged entries still load; damaged ones re-simulate as misses.
        assert cache.get(keys[2]) is not None
        assert cache.get(keys[0]) is None

    def test_sweep_tmp_only_removes_orphans(self, tmp_path):
        stats = self._stats()
        key = "bc" + "0" * 62
        cache = ResultCache(tmp_path, faults="off")
        cache.put(key, stats)
        (cache.path_for(key).parent / ".tmp-dead.json").write_bytes(b"x")
        assert cache.sweep_tmp() == 1
        assert cache.get(key) is not None

    def test_directly_constructed_caches_ignore_env_plan(self, monkeypatch, tmp_path):
        # The constructor default is "off", not None: only build_engine
        # opts a cache into the environment's chaos plan.
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=1;cache.torn:rate=1.0")
        cache = ResultCache(tmp_path)
        assert cache.faults is None


# --------------------------------------------------------------------------- #
# Engine-level recovery and strictness
# --------------------------------------------------------------------------- #
class TestEngineFaultRecovery:
    def test_chaos_run_is_bit_identical_and_counted(self, tmp_path):
        jobs = _jobs(4)
        engine = build_engine(
            jobs=2, cache_dir=str(tmp_path / "chaos"), retries=3,
            faults="seed=7;worker.crash:rate=0.6;worker.error:rate=0.5",
        )
        results = engine.run_jobs(jobs)
        counters = engine.counters()
        assert counters["job_failures"] == 0
        assert counters["retries"] + counters["crashes"] > 0
        reference = build_engine(
            cache_dir=str(tmp_path / "clean"), faults="off"
        ).run_jobs(jobs)
        assert _rows(results) == _rows(reference)

    def test_cache_corruption_heals_across_runs(self, tmp_path):
        jobs = _jobs(4)
        cache_dir = str(tmp_path / "cache")
        chaos = build_engine(
            cache_dir=cache_dir,
            faults="seed=7;cache.torn:rate=0.6;cache.bitflip:rate=0.5",
        )
        first = chaos.run_jobs(jobs)
        assert chaos.counters()["job_failures"] == 0
        # Some published entries were damaged post-publish; verify must
        # quarantine them all without aborting.
        verify = ResultCache(cache_dir, faults="off").verify()
        assert verify["quarantined"] > 0
        assert verify["quarantined"] + verify["ok"] == verify["scanned"]
        # The healed warm run answers from cache + re-simulation and stays
        # bit-identical.
        warm = build_engine(cache_dir=cache_dir, faults="off")
        second = warm.run_jobs(jobs)
        assert _rows(second) == _rows(first)
        counters = warm.counters()
        assert counters["cache_hits"] == verify["ok"]
        assert counters["simulations_run"] == verify["quarantined"]

    def test_failures_are_returned_in_slot_but_never_cached(self, tmp_path):
        jobs = _jobs(2)
        cache_dir = str(tmp_path / "cache")
        engine = build_engine(
            cache_dir=cache_dir, retries=2,
            faults="seed=1;worker.error:rate=1.0,attempts=0",
        )
        results = engine.run_jobs(jobs)
        assert all(isinstance(slot, JobFailure) for slot in results)
        assert engine.counters()["job_failures"] == len(jobs)
        assert ResultCache(cache_dir, faults="off").info()["entries"] == 0
        # A later fault-free engine re-simulates the failed cells from
        # scratch — nothing poisoned the memo or the store.
        retry = build_engine(cache_dir=cache_dir, faults="off")
        recovered = retry.run_jobs(jobs)
        assert _rows(recovered) == _rows(_reference(jobs))
        assert retry.counters()["simulations_run"] == len(jobs)

    def test_strict_raises_after_caching_the_successes(self, tmp_path):
        jobs = _jobs(2)
        cache_dir = str(tmp_path / "cache")
        # Deterministically fail exactly one of the two jobs, forever.
        failing = next(
            job for job in jobs
            if FaultPlan.from_spec(
                "seed=13;worker.error:rate=0.5,attempts=0"
            ).should_fire("worker.error", job.key()) is not None
        )
        engine = build_engine(
            cache_dir=cache_dir, retries=2, strict=True,
            faults="seed=13;worker.error:rate=0.5,attempts=0",
        )
        with pytest.raises(BatchExecutionError) as excinfo:
            engine.run_jobs(jobs)
        assert [f.key for f in excinfo.value.failures] == [failing.key()]
        # The surviving job was cached before the raise.
        assert ResultCache(cache_dir, faults="off").info()["entries"] == 1

    def test_per_call_strict_overrides_engine_default(self):
        jobs = _jobs(1)
        engine = build_engine(
            use_cache=False, retries=2,
            faults="seed=1;worker.error:rate=1.0,attempts=0",
        )
        assert isinstance(engine.run_jobs(jobs)[0], JobFailure)
        with pytest.raises(BatchExecutionError):
            engine.run_jobs(jobs, strict=True)


# --------------------------------------------------------------------------- #
# Partial grids in the runner layer
# --------------------------------------------------------------------------- #
class TestPartialGrid:
    def test_failed_cell_reads_nan_but_keeps_row_shape(self):
        jobs = _jobs(2)
        stats, baseline = _reference(jobs)
        good = RunResult(
            spec=jobs[0].spec, prefetcher="ip-stride",
            stats=stats, baseline=baseline,
        )
        failure = JobFailure(
            key=jobs[0].key(), name="x/ip-stride", attempts=3, reason="crash"
        )
        bad = RunResult(
            spec=jobs[0].spec, prefetcher="ip-stride",
            stats=failure, baseline=baseline,
        )
        assert good.ok and not bad.ok
        assert bad.failure is failure
        assert math.isnan(bad.speedup)
        assert math.isnan(bad.accuracy)
        assert math.isnan(bad.coverage)
        assert math.isnan(bad.late_fraction)
        assert set(bad.row().keys()) == set(good.row().keys())

    def test_failed_baseline_also_marks_the_cell(self):
        jobs = _jobs(2)
        stats, _ = _reference(jobs)
        failure = JobFailure(
            key=jobs[1].key(), name="x/none", attempts=3, reason="timeout"
        )
        cell = RunResult(
            spec=jobs[0].spec, prefetcher="ip-stride",
            stats=stats, baseline=failure,
        )
        assert not cell.ok
        assert cell.failure is failure
        assert math.isnan(cell.speedup)
        # The cell's own stats simulated, so its local metrics survive.
        assert not math.isnan(cell.accuracy)


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestFaultCli:
    BASE = [
        "run", "--suite", "spec17", "--prefetchers", "ip-stride",
        "--trace-length", "600", "--traces-per-suite", "1",
    ]

    def _run(self, argv, capsys):
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_recovered_faults_are_reported(self, tmp_path, capsys):
        code, out, _ = self._run(
            self.BASE + [
                "--cache-dir", str(tmp_path / "cache"),
                "--faults", "seed=1;worker.error:rate=1.0", "--retries", "3",
            ],
            capsys,
        )
        assert code == 0
        assert "# fault recovery:" in out
        assert "retries" in out

    def test_fault_free_run_prints_no_recovery_line(self, tmp_path, capsys):
        code, out, _ = self._run(
            self.BASE + ["--cache-dir", str(tmp_path / "cache"), "--faults", "off"],
            capsys,
        )
        assert code == 0
        assert "# fault recovery:" not in out

    def test_default_renders_partial_grid_with_failure_report(
        self, tmp_path, capsys
    ):
        code, out, err = self._run(
            self.BASE + [
                "--cache-dir", str(tmp_path / "cache"),
                "--faults", "seed=1;worker.error:rate=1.0,attempts=0",
                "--retries", "2",
            ],
            capsys,
        )
        assert code == 0
        assert "nan" in out  # the failed cells render, marked
        assert "failed after retries" in err
        assert "attempt(s)" in err

    def test_strict_aborts_with_structured_error(self, tmp_path, capsys):
        code, _, err = self._run(
            self.BASE + [
                "--cache-dir", str(tmp_path / "cache"),
                "--faults", "seed=1;worker.error:rate=1.0,attempts=0",
                "--retries", "2", "--strict",
            ],
            capsys,
        )
        assert code == 1
        assert "failed after retries" in err or "failed after 2 attempt(s)" in err

    def test_retries_must_be_positive(self, capsys):
        code, _, err = self._run(self.BASE + ["--retries", "0"], capsys)
        assert code == 2
        assert "--retries" in err

    def test_cache_verify_reports_and_quarantines(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        code, _, _ = self._run(
            self.BASE + ["--cache-dir", cache_dir, "--faults", "off"], capsys
        )
        assert code == 0
        # Plant a torn entry behind the CLI's back.
        cache = ResultCache(cache_dir, faults="off")
        victim = sorted(cache._entry_files())[0]
        victim.write_bytes(victim.read_bytes()[:32])
        code, out, _ = self._run(["cache", "verify", "--cache-dir", cache_dir], capsys)
        assert code == 0
        assert "quarantined: 1" in out
        assert "re-simulate as misses" in out
        code, out, _ = self._run(["cache", "info", "--cache-dir", cache_dir], capsys)
        assert code == 0
        assert "quarantine_entries: 1" in out

    def test_env_plan_feeds_the_default_faults_flag(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv(FAULT_PLAN_ENV, "seed=1;worker.error:rate=1.0")
        code, out, _ = self._run(
            self.BASE + ["--cache-dir", str(tmp_path / "cache"), "--retries", "3"],
            capsys,
        )
        assert code == 0
        assert "# fault recovery:" in out
