"""Unit tests for repro.sim.types: address arithmetic and value types."""

import pytest

from repro.sim.types import (
    AccessType,
    BLOCK_SIZE,
    MemoryAccess,
    PrefetchHint,
    PrefetchRequest,
    address_from_region_offset,
    block_address,
    block_number,
    block_offset_in_region,
    blocks_per_region,
    region_base_address,
    region_number,
)


class TestBlockArithmetic:
    def test_block_size_is_64(self):
        assert BLOCK_SIZE == 64

    def test_block_number_of_zero(self):
        assert block_number(0) == 0

    def test_block_number_within_block(self):
        assert block_number(63) == 0
        assert block_number(64) == 1
        assert block_number(127) == 1

    def test_block_address_round_trip(self):
        for block in (0, 1, 77, 123456):
            assert block_number(block_address(block)) == block

    def test_block_number_large_address(self):
        assert block_number(1 << 40) == (1 << 40) >> 6


class TestRegionArithmetic:
    def test_default_region_has_64_blocks(self):
        assert blocks_per_region() == 64
        assert blocks_per_region(4096) == 64

    def test_blocks_per_region_other_sizes(self):
        assert blocks_per_region(2048) == 32
        assert blocks_per_region(8192) == 128
        assert blocks_per_region(65536) == 1024

    def test_region_number(self):
        assert region_number(0) == 0
        assert region_number(4095) == 0
        assert region_number(4096) == 1

    def test_region_number_custom_size(self):
        assert region_number(4096, region_size=2048) == 2
        assert region_number(2047, region_size=2048) == 0

    def test_region_base_address(self):
        assert region_base_address(0) == 0
        assert region_base_address(3) == 3 * 4096
        assert region_base_address(5, region_size=2048) == 10240

    def test_offset_in_region(self):
        assert block_offset_in_region(0) == 0
        assert block_offset_in_region(64) == 1
        assert block_offset_in_region(4095) == 63
        assert block_offset_in_region(4096) == 0

    def test_offset_in_region_custom_size(self):
        assert block_offset_in_region(2048 + 128, region_size=2048) == 2

    def test_address_from_region_offset_round_trip(self):
        for region in (0, 7, 1000):
            for offset in (0, 1, 33, 63):
                address = address_from_region_offset(region, offset)
                assert region_number(address) == region
                assert block_offset_in_region(address) == offset

    def test_region_offset_composition_block_aligned(self):
        address = address_from_region_offset(12, 5)
        assert address % 64 == 0


class TestMemoryAccess:
    def test_defaults(self):
        access = MemoryAccess(pc=0x400, address=0x1000)
        assert access.access_type is AccessType.LOAD
        assert access.instr_gap == 0

    def test_block_property(self):
        access = MemoryAccess(pc=0x400, address=0x1040)
        assert access.block == 0x41

    def test_frozen(self):
        access = MemoryAccess(pc=1, address=2)
        with pytest.raises(AttributeError):
            access.address = 3


class TestPrefetchRequest:
    def test_defaults(self):
        request = PrefetchRequest(address=128)
        assert request.hint is PrefetchHint.L1
        assert request.block == 2

    def test_hint_levels_are_ordered(self):
        assert PrefetchHint.L1.value < PrefetchHint.L2.value < PrefetchHint.LLC.value

    def test_request_is_frozen(self):
        request = PrefetchRequest(address=128)
        with pytest.raises(AttributeError):
            request.address = 0
