"""Batched-kernel correctness: decode, boundaries, and scalar equivalence.

The batched kernel (:mod:`repro.sim.batch` + the chunked driver in
:mod:`repro.sim.simulator`) must be *bit-identical* to the scalar kernel for
every statistic.  These tests pin the boundary conditions the chunked fast
path has to get right — forced fallback mid-chunk, an MSHR fill becoming
ready inside a would-be run, budget exhaustion inside a run, warm-up
boundaries landing mid-run — plus streamed-vs-materialized-vs-batched
equality over every registered prefetcher, and the copy-on-write LLC shadow
against the full-clone behaviour it replaced.
"""

from __future__ import annotations

import pytest

from repro.prefetchers import available_prefetchers, create_prefetcher
from repro.prefetchers.base import Prefetcher
from repro.sim.batch import BatchedTrace, decode_trace
from repro.sim.cache import Cache, MSHRFile
from repro.sim.config import CacheConfig, default_system_config
from repro.sim.sharding import CowCacheShadow
from repro.sim.simulator import BATCH_MODES, SingleCoreSimulator, simulate_trace
from repro.sim.types import (
    AccessType,
    MemoryAccess,
    PrefetchHint,
    PrefetchRequest,
)
from repro.workloads import formats as trace_formats
from repro.workloads.trace import TraceSpec


def _cache_config(sets, ways, latency):
    return CacheConfig(
        name="T", size_bytes=sets * ways * 64, ways=ways, latency=latency,
        mshrs=4,
    )


def _stats_dict(stats):
    data = stats.to_dict()
    data.pop("extra", None)
    return data


def _assert_identical(reference, candidate, label):
    assert _stats_dict(reference) == _stats_dict(candidate), (
        f"batched kernel diverged from the scalar kernel ({label})"
    )


def _trace(generator="spatial", seed=7, length=1_200):
    return TraceSpec(
        name=f"{generator}-s{seed}", suite="test", generator=generator,
        seed=seed, length=length,
    ).build()


def _hit_run_trace(n_chunks=40, run_length=12):
    """Alternating pure-L1-hit runs and forced misses (fallback mid-chunk).

    Each chunk re-touches one block ``run_length`` times (hits once
    resident) and then jumps to a brand-new block (a guaranteed miss that
    breaks the run), with stores sprinkled in so the dirty-merge path of
    the batched LRU touch is exercised.
    """
    accesses = []
    for chunk in range(n_chunks):
        base = 0x100000 + chunk * 0x10000
        for i in range(run_length):
            access_type = AccessType.STORE if i % 5 == 3 else AccessType.LOAD
            accesses.append(
                MemoryAccess(pc=0x40 + chunk, address=base,
                             access_type=access_type, instr_gap=i % 3)
            )
        accesses.append(
            MemoryAccess(pc=0x40 + chunk, address=base + 0x8000, instr_gap=1)
        )
    return accesses


class _L1PrefetchStub(Prefetcher):
    """Deterministic stub that keeps the L1 MSHR file busy.

    Every trained load requests the next two blocks into the L1D, so MSHR
    fills are constantly in flight and their ready cycles straddle the
    boundaries of would-be hit chunks — the exact scenario where the
    batched kernel must fall back access-by-access and complete fills at
    the same cycles the scalar kernel does.
    """

    name = "l1-stub"

    def train(self, pc, address, cycle, result=None):
        return [
            PrefetchRequest(address + 64, PrefetchHint.L1, pc, "stub"),
            PrefetchRequest(address + 128, PrefetchHint.L1, pc, "stub"),
        ]


# --------------------------------------------------------------------------- #
# Decode
# --------------------------------------------------------------------------- #
class TestBatchedTraceDecode:
    def test_round_trip_preserves_every_access(self):
        trace = _trace(length=500)
        batched = BatchedTrace.from_accesses(trace)
        assert len(batched) == len(trace)
        assert list(batched) == trace
        assert batched[0] == trace[0]
        assert batched[len(trace) - 1] == trace[-1]
        assert batched.instruction_total == sum(
            a.instr_gap + 1 for a in trace
        )

    def test_kind_encoding_covers_all_access_types(self):
        accesses = [
            MemoryAccess(pc=1, address=64, access_type=AccessType.LOAD),
            MemoryAccess(pc=2, address=128, access_type=AccessType.STORE),
            MemoryAccess(pc=3, address=192, access_type=AccessType.PREFETCH),
        ]
        batched = BatchedTrace.from_accesses(accesses)
        assert list(batched.kinds) == [0, 1, 2]
        assert list(batched) == accesses

    def test_blocks_are_precomputed(self):
        batched = BatchedTrace.from_accesses(_trace(length=100))
        assert batched.blocks == [a >> 6 for a in batched.addresses]

    def test_decode_trace_accepts_lists_and_passes_batched_through(self):
        trace = _trace(length=50)
        batched = decode_trace(trace)
        assert isinstance(batched, BatchedTrace)
        assert decode_trace(batched) is batched
        assert decode_trace(iter(trace)) is None  # streams stay scalar

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            simulate_trace(BatchedTrace.from_accesses([]))

    def test_unknown_batch_mode_rejected(self):
        with pytest.raises(ValueError):
            simulate_trace(_trace(length=10), batch="sometimes")
        assert set(BATCH_MODES) == {"auto", "on", "off"}


# --------------------------------------------------------------------------- #
# Scalar equivalence (bit-identical statistics)
# --------------------------------------------------------------------------- #
class TestBatchedScalarEquivalence:
    @pytest.mark.parametrize("prefetcher_name", sorted(available_prefetchers()))
    def test_every_registered_prefetcher(self, prefetcher_name):
        trace = _trace(length=800)
        scalar = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name), batch="off"
        )
        batched = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name), batch="auto"
        )
        predecoded = simulate_trace(
            BatchedTrace.from_accesses(trace),
            prefetcher=create_prefetcher(prefetcher_name),
        )
        _assert_identical(scalar, batched, f"{prefetcher_name}, auto-decoded")
        _assert_identical(scalar, predecoded, f"{prefetcher_name}, pre-decoded")

    @pytest.mark.parametrize("generator", ["spatial", "streaming", "cloud"])
    def test_no_prefetcher_fused_path(self, generator):
        trace = _trace(generator=generator, seed=3, length=1_500)
        scalar = simulate_trace(trace, batch="off")
        batched = simulate_trace(trace)
        _assert_identical(scalar, batched, f"{generator}, none")

    def test_forced_fallback_mid_chunk(self):
        trace = _hit_run_trace()
        scalar = simulate_trace(trace, batch="off")
        batched = simulate_trace(trace)
        _assert_identical(scalar, batched, "hit runs broken by misses")
        # The scenario really alternates: most accesses hit, each chunk
        # ends in a miss that must fall back to the per-access path.
        assert batched.l1_misses >= 40
        assert batched.l1_hits > batched.l1_misses * 5

    def test_chunk_straddling_mshr_fill_cycles(self):
        trace = _hit_run_trace(n_chunks=30, run_length=10)
        scalar = simulate_trace(
            trace, prefetcher=_L1PrefetchStub(), batch="off"
        )
        batched = simulate_trace(trace, prefetcher=_L1PrefetchStub())
        _assert_identical(scalar, batched, "in-flight L1 fills")
        # The stub must actually have produced in-flight traffic for the
        # scenario to mean anything (late fills observed by demands).
        assert batched.prefetch.filled_l1 > 0

    @pytest.mark.parametrize("budget", [1, 7, 37, 403, 2_001, 100_000])
    def test_budget_exhaustion_inside_a_batched_run(self, budget):
        # One long pure-hit run: any mid-run budget must cut at the exact
        # access the scalar kernel would cut at (replaying across the end
        # of the trace for budgets beyond one pass).
        trace = _hit_run_trace(n_chunks=4, run_length=200)
        scalar = simulate_trace(trace, max_instructions=budget, batch="off")
        batched = simulate_trace(trace, max_instructions=budget)
        _assert_identical(scalar, batched, f"budget={budget}")

    @pytest.mark.parametrize("warmup", [13, 250, 1_000])
    def test_warmup_boundary_inside_a_batched_run(self, warmup):
        trace = _hit_run_trace(n_chunks=6, run_length=100)
        scalar = simulate_trace(
            trace, warmup_instructions=warmup, batch="off"
        )
        batched = simulate_trace(trace, warmup_instructions=warmup)
        _assert_identical(scalar, batched, f"warmup={warmup}")

    def test_batch_off_over_predecoded_trace_runs_scalar(self):
        trace = _trace(length=400)
        batched_input = BatchedTrace.from_accesses(trace)
        scalar = simulate_trace(trace, batch="off")
        via_view = simulate_trace(batched_input, batch="off")
        _assert_identical(scalar, via_view, "batch=off over BatchedTrace")

    def test_non_power_of_two_l1_falls_back_to_scalar(self):
        config = default_system_config(1)
        # 48 sets (not a power of two) at the default associativity.
        odd_l1 = CacheConfig(
            name="L1D", size_bytes=48 * config.l1d.ways * 64,
            ways=config.l1d.ways, latency=config.l1d.latency,
            mshrs=config.l1d.mshrs,
            prefetch_queue_size=config.l1d.prefetch_queue_size,
            max_prefetch_issue_per_access=(
                config.l1d.max_prefetch_issue_per_access
            ),
        )
        assert odd_l1.sets == 48
        odd_config = type(config)(
            core=config.core, l1d=odd_l1, l2c=config.l2c, llc=config.llc,
            dram=config.dram,
        )
        trace = _trace(length=600)
        scalar = simulate_trace(trace, config=odd_config, batch="off")
        batched = simulate_trace(trace, config=odd_config, batch="auto")
        _assert_identical(scalar, batched, "non-power-of-two L1 geometry")


# --------------------------------------------------------------------------- #
# Streamed vs materialized vs batched (file-backed traces)
# --------------------------------------------------------------------------- #
class TestStreamedMaterializedBatchedEquality:
    @pytest.fixture()
    def trace_file_spec(self, tmp_path):
        trace = _trace(generator="streaming", seed=5, length=900)
        path = tmp_path / "equality.gzt.gz"
        trace_formats.save_trace_file(iter(trace), str(path))
        return trace, TraceSpec.from_file(str(path), name="equality",
                                          suite="test", length=900)

    @pytest.mark.parametrize("prefetcher_name", ["none", "gaze", "pmp", "vberti"])
    def test_three_shapes_identical(self, trace_file_spec, prefetcher_name):
        trace, spec = trace_file_spec

        def prefetcher():
            if prefetcher_name == "none":
                return None
            return create_prefetcher(prefetcher_name)

        materialized = simulate_trace(trace, prefetcher=prefetcher(),
                                      batch="off")
        streamed = simulate_trace(spec.replayable(), prefetcher=prefetcher(),
                                  batch="off")
        batched = simulate_trace(spec.batched(), prefetcher=prefetcher())
        decoded_on = simulate_trace(spec.replayable(),
                                    prefetcher=prefetcher(), batch="on")
        _assert_identical(materialized, streamed,
                          f"{prefetcher_name}, streamed")
        _assert_identical(materialized, batched,
                          f"{prefetcher_name}, spec.batched()")
        _assert_identical(materialized, decoded_on,
                          f"{prefetcher_name}, batch=on over a stream")

    def test_trace_file_decode_batched(self, trace_file_spec):
        trace, spec = trace_file_spec
        handle = spec.source.open()
        batched = handle.decode_batched()
        assert isinstance(batched, BatchedTrace)
        assert list(batched) == trace


# --------------------------------------------------------------------------- #
# The engine-level batch knob
# --------------------------------------------------------------------------- #
class TestJobBatchKnob:
    def _spec(self):
        return TraceSpec(name="knob", suite="test", generator="spatial",
                         seed=9, length=700)

    def test_batch_is_an_execution_detail_not_identity(self):
        from repro.experiments.jobs import SimulationJob

        keys = {
            SimulationJob(spec=self._spec(), prefetcher="gaze",
                          trace_length=700, batch=batch).key()
            for batch in ("auto", "on", "off")
        }
        assert len(keys) == 1
        job = SimulationJob(spec=self._spec(), trace_length=700)
        assert "batch" not in job.to_dict()

    def test_invalid_batch_value_rejected(self):
        from repro.experiments.jobs import SimulationJob

        with pytest.raises(ValueError):
            SimulationJob(spec=self._spec(), batch="sometimes")

    @pytest.mark.parametrize("prefetcher_name", ["none", "gaze"])
    def test_execute_job_identical_across_batch_values(self, prefetcher_name):
        from repro.experiments.jobs import SimulationJob, execute_job

        results = [
            execute_job(
                SimulationJob(spec=self._spec(), prefetcher=prefetcher_name,
                              trace_length=700, batch=batch)
            )
            for batch in ("auto", "off")
        ]
        _assert_identical(results[0], results[1],
                          f"execute_job batch knob, {prefetcher_name}")


# --------------------------------------------------------------------------- #
# The batched primitives in isolation
# --------------------------------------------------------------------------- #
class TestBatchedPrimitives:
    def test_demand_hit_run_respects_instruction_limit(self):
        cache = Cache(_cache_config(sets=16, ways=4, latency=4))
        blocks = [1, 2, 3, 4]
        for block in blocks:
            cache.fill(block)
        kinds = bytearray([0, 1, 0, 0])
        gaps = [2, 0, 1, 0]  # per-access instructions: 3, 1, 2, 1
        count, instructions = cache.demand_hit_run(
            blocks, kinds, gaps, 0, 4, 5
        )
        # Accesses are included while the executed count is < 5: the third
        # access starts at 4 < 5 and may overshoot, the fourth must not run.
        assert (count, instructions) == (3, 6)
        full = Cache(_cache_config(sets=16, ways=4, latency=4))
        for block in blocks:
            full.fill(block)
        assert full.demand_hit_run(blocks, kinds, gaps, 0, 4, None) == (4, 7)

    def test_demand_hit_run_stops_without_counting_the_miss(self):
        cache = Cache(_cache_config(sets=16, ways=4, latency=4))
        cache.fill(7)
        count, instructions = cache.demand_hit_run(
            [7, 8], bytearray([0, 0]), [0, 0], 0, 2, None
        )
        assert (count, instructions) == (1, 1)
        # The failed residency probe is side-effect free; the scalar path
        # counts the miss when it actually serves the access.
        assert cache.misses == 0
        assert cache.hits == 1

    def test_advance_hit_run_matches_scalar_calls(self):
        config = default_system_config(1).core
        from repro.sim.cpu import CoreTimingModel

        gaps = [0, 3, 1, 0, 2, 0, 0, 5, 1, 0]
        scalar = CoreTimingModel(config)
        batched = CoreTimingModel(config)
        # Interleave a long-latency access first so outstanding-miss state
        # is live when the run starts.
        for model in (scalar, batched):
            model.begin_memory_access()
            model.complete_memory_access(300)
        for gap in gaps:
            if gap > 0:
                scalar.advance_non_memory(gap)
            scalar.begin_memory_access()
            scalar.complete_memory_access(4)
        batched.advance_hit_run(gaps, 0, len(gaps), 4)
        assert scalar.finalize() == batched.finalize()

    def test_mshr_expire_fast_path_returns_empty(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(5, ready_cycle=100, is_prefetch=True)
        assert list(mshr.expire(10)) == []
        assert [e.block for e in mshr.expire(100)] == [5]


# --------------------------------------------------------------------------- #
# Copy-on-write LLC shadow vs full clone
# --------------------------------------------------------------------------- #
class TestCowCacheShadow:
    def _master(self):
        master = Cache(_cache_config(sets=64, ways=4, latency=30))
        for block in range(0, 300, 3):
            master.fill(block, prefetched=(block % 9 == 0),
                        from_dram=(block % 2 == 0))
        return master

    def _op_sequence(self):
        ops = []
        for i in range(600):
            block = (i * 37) % 400
            kind = i % 4
            if kind == 0:
                ops.append(("probe", block))
            elif kind == 1:
                ops.append(("fill", block, i % 5 == 0, i % 3 == 0))
            elif kind == 2:
                ops.append(("lookup", block, i % 2 == 0))
            else:
                ops.append(("contains", block))
        return ops

    @staticmethod
    def _apply(target, op):
        if op[0] == "probe":
            entry = target.probe(op[1])
        elif op[0] == "fill":
            entry = target.fill(op[1], prefetched=op[2], from_dram=op[3])
        elif op[0] == "lookup":
            entry = target.lookup(op[1], update_lru=op[2])
        else:
            return target.contains(op[1])
        if entry is None:
            return None
        return (entry.block, entry.prefetched, entry.prefetch_useful,
                entry.from_dram, entry.dirty, entry.useful_counted)

    def test_shadow_behaves_exactly_like_a_clone(self):
        master = self._master()
        reference_state = {
            index: list(s.items()) for index, s in enumerate(master._sets)
        }
        clone = master.clone()
        shadow = CowCacheShadow(master)
        for op in self._op_sequence():
            assert self._apply(clone, op) == self._apply(shadow, op), op
        assert (clone.hits, clone.misses, clone.evictions) == (
            shadow.hits, shadow.misses, shadow.evictions
        )
        # The master was never touched: contents, recency order and flags
        # are exactly as before the epoch.
        for index, cache_set in enumerate(master._sets):
            assert list(cache_set.items()) == reference_state[index]

    def test_shadow_copies_only_touched_sets(self):
        master = self._master()
        shadow = CowCacheShadow(master)
        shadow.probe(0)       # hit: copies set 0
        shadow.contains(1)    # read-only: copies nothing
        shadow.probe(100_003)  # miss in an uncopied set: copies nothing
        assert set(shadow._sets) == {0}
