"""Tests for the experiment harness (runner, metrics, reporting, tables)."""

import pytest

from repro.experiments import tables
from repro.experiments.metrics import (
    aggregate_by_suite,
    arithmetic_mean,
    best_prefetcher,
    geomean,
    normalize_to_baseline,
    summarize_runs,
)
from repro.experiments.reporting import format_matrix, format_rows
from repro.experiments.runner import ExperimentRunner, RunResult, RunScale
from repro.workloads.suites import trace_specs_for_suite
from repro.workloads.trace import TraceSpec


@pytest.fixture(scope="module")
def tiny_runner():
    # use_cache=False keeps the suite hermetic: results must come from the
    # simulator under test, never from a stale .repro-cache in the CWD.
    return ExperimentRunner(
        RunScale(trace_length=1_500, traces_per_suite=1), use_cache=False
    )


class TestRunScale:
    def test_select_limits_specs(self):
        scale = RunScale(traces_per_suite=2)
        specs = trace_specs_for_suite("spec17")
        assert len(scale.select(specs)) == 2

    def test_select_unlimited(self):
        scale = RunScale(traces_per_suite=None)
        specs = trace_specs_for_suite("spec17")
        assert len(scale.select(specs)) == len(specs)


class TestExperimentRunner:
    def test_trace_cache_reuses_object(self, tiny_runner):
        spec = trace_specs_for_suite("spec17")[0]
        assert tiny_runner.trace_for(spec) is tiny_runner.trace_for(spec)

    def test_baseline_cache(self, tiny_runner):
        spec = trace_specs_for_suite("spec17")[0]
        assert tiny_runner.baseline_for(spec) is tiny_runner.baseline_for(spec)

    def test_run_one_produces_result(self, tiny_runner):
        spec = trace_specs_for_suite("spec17")[0]
        result = tiny_runner.run_one(spec, "gaze")
        assert result.prefetcher == "gaze"
        assert result.speedup > 0
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.0 <= result.coverage <= 1.0
        row = result.row()
        assert row["trace"] == spec.name

    def test_run_none_returns_baseline(self, tiny_runner):
        spec = trace_specs_for_suite("spec17")[0]
        result = tiny_runner.run_one(spec, "none")
        assert result.speedup == pytest.approx(1.0)

    def test_run_grid_size(self, tiny_runner):
        specs = trace_specs_for_suite("spec17")[:2]
        results = tiny_runner.run_grid(specs, ("none", "ip-stride"))
        assert len(results) == 4

    def test_run_suites_selects_per_scale(self, tiny_runner):
        results = tiny_runner.run_suites(("spec17", "cloud"), ("none",))
        assert len(results) == 2  # one trace per suite at this scale


class TestMetrics:
    def _fake_results(self):
        spec_a = TraceSpec(name="a", suite="s1", generator="streaming")
        spec_b = TraceSpec(name="b", suite="s2", generator="streaming")

        class FakeResult:
            def __init__(self, spec, prefetcher, speedup):
                self.spec = spec
                self.prefetcher = prefetcher
                self.speedup = speedup
                self.accuracy = 0.5
                self.coverage = 0.4
                self.late_fraction = 0.1

        return [
            FakeResult(spec_a, "x", 2.0),
            FakeResult(spec_b, "x", 0.5),
            FakeResult(spec_a, "y", 1.2),
            FakeResult(spec_b, "y", 1.2),
        ]

    def test_geomean(self):
        assert geomean([2.0, 0.5]) == pytest.approx(1.0)
        assert geomean([]) == 0.0

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_summarize_runs(self):
        summary = summarize_runs(self._fake_results())
        assert summary["x"]["speedup"] == pytest.approx(1.0)
        assert summary["y"]["speedup"] == pytest.approx(1.2)
        assert summary["x"]["traces"] == 2.0

    def test_aggregate_by_suite(self):
        aggregated = aggregate_by_suite(self._fake_results())
        assert aggregated["x"]["s1"] == pytest.approx(2.0)
        assert aggregated["x"]["s2"] == pytest.approx(0.5)
        assert aggregated["x"]["avg"] == pytest.approx(1.0)

    def test_normalize_to_baseline(self):
        summary = summarize_runs(self._fake_results())
        normalized = normalize_to_baseline(summary, baseline="x")
        assert normalized["x"] == pytest.approx(1.0)
        assert normalized["y"] == pytest.approx(1.2)

    def test_normalize_missing_baseline(self):
        with pytest.raises(KeyError):
            normalize_to_baseline({}, baseline="x")

    def test_best_prefetcher(self):
        summary = summarize_runs(self._fake_results())
        assert best_prefetcher(summary) == "y"


class TestReporting:
    def test_format_rows_alignment(self):
        text = format_rows([{"a": 1.23456, "b": "x"}, {"a": 2.0, "b": "longer"}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "1.235" in lines[2]

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_format_rows_column_subset(self):
        text = format_rows([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_matrix(self):
        text = format_matrix({"gaze": {"spec": 1.2, "cloud": 1.1}})
        assert "gaze" in text
        assert "spec" in text


class TestTables:
    def test_table1_total_close_to_paper(self):
        rows = tables.table1_gaze_storage()
        total = [r for r in rows if r["structure"] == "Total"][0]
        assert total["measured_bytes"] == pytest.approx(total["paper_bytes"], rel=0.02)

    def test_table1_structures_present(self):
        structures = {r["structure"] for r in tables.table1_gaze_storage()}
        assert {"FT", "AT", "PHT", "DPCT", "PB", "Total"} <= structures

    def test_table4_has_all_prefetchers(self):
        rows = tables.table4_baseline_storage()
        names = {r["prefetcher"] for r in rows}
        assert {"sms", "bingo", "pmp", "vberti", "gaze"} <= names
        for row in rows:
            assert row["measured_kib"] > 0

    def test_table6_mixes(self):
        rows = tables.table6_four_core_mixes()
        assert len(rows) == 5
        assert all("," in row["traces"] for row in rows)

    def test_table5_qualitative(self, tiny_runner):
        rows = tables.table5_comparison(
            runner=tiny_runner, prefetchers=("gaze", "pmp")
        )
        by_name = {row["prefetcher"]: row for row in rows}
        assert by_name["gaze"]["low_hardware_cost"] is True
        assert isinstance(by_name["pmp"]["simple_pattern_ok"], bool)
