"""Unit tests for the cache model (LRU, prefetch provenance, MSHRs)."""

import pytest

from repro.sim.cache import Cache, MSHRFile
from repro.sim.config import CacheConfig


def tiny_cache(ways: int = 2, sets: int = 4) -> Cache:
    return Cache(
        CacheConfig(
            name="T", size_bytes=sets * ways * 64, ways=ways, latency=1, mshrs=4
        )
    )


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        hit, _ = cache.access(10)
        assert not hit
        cache.fill(10)
        hit, entry = cache.access(10)
        assert hit
        assert entry.block == 10

    def test_len_counts_resident_blocks(self):
        cache = tiny_cache()
        for block in range(5):
            cache.fill(block * 4)  # map to same set index 0
        assert len(cache) == 2  # capacity of one set

    def test_contains_does_not_change_lru(self):
        cache = tiny_cache(ways=2)
        cache.fill(0)
        cache.fill(4)
        # Probe block 0 without touching LRU, then insert a conflicting block:
        assert cache.contains(0)
        cache.fill(8)
        # Block 0 (still LRU) should have been evicted.
        assert not cache.contains(0)
        assert cache.contains(4)

    def test_lookup_refreshes_lru(self):
        cache = tiny_cache(ways=2)
        cache.fill(0)
        cache.fill(4)
        cache.lookup(0, update_lru=True)
        cache.fill(8)
        assert cache.contains(0)
        assert not cache.contains(4)

    def test_set_mapping(self):
        cache = tiny_cache(sets=4)
        assert cache.set_index(0) == 0
        assert cache.set_index(5) == 1
        assert cache.set_index(7) == 3

    def test_hits_misses_counted(self):
        cache = tiny_cache()
        cache.access(1)
        cache.fill(1)
        cache.access(1)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_reset_statistics(self):
        cache = tiny_cache()
        cache.access(1)
        cache.reset_statistics()
        assert cache.misses == 0


class TestLRUReplacement:
    def test_evicts_least_recently_used(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(1)
        cache.fill(2)
        cache.access(1)  # make 2 the LRU
        victim = cache.fill(3)
        assert victim is not None
        assert victim.block == 2

    def test_never_evicts_most_recently_used(self):
        cache = tiny_cache(ways=4, sets=1)
        for block in range(4):
            cache.fill(block)
        cache.access(3)
        victim = cache.fill(99)
        assert victim.block != 3

    def test_refill_existing_block_no_eviction(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(1)
        cache.fill(2)
        assert cache.fill(1) is None
        assert len(cache) == 2

    def test_eviction_listener_called(self):
        cache = tiny_cache(ways=1, sets=1)
        evicted = []
        cache.eviction_listeners.append(lambda blk: evicted.append(blk.block))
        cache.fill(1)
        cache.fill(2)
        assert evicted == [1]

    def test_invalidate(self):
        cache = tiny_cache()
        cache.fill(9)
        removed = cache.invalidate(9)
        assert removed.block == 9
        assert not cache.contains(9)
        assert cache.invalidate(9) is None


class TestPrefetchProvenance:
    def test_prefetched_flag_preserved(self):
        cache = tiny_cache()
        cache.fill(5, prefetched=True, from_dram=True)
        entry = cache.lookup(5, update_lru=False)
        assert entry.prefetched
        assert entry.from_dram
        assert not entry.prefetch_useful

    def test_demand_hit_marks_prefetch_useful(self):
        cache = tiny_cache()
        cache.fill(5, prefetched=True)
        _, entry = cache.access(5)
        assert entry.prefetch_useful

    def test_useless_prefetch_eviction_counted(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(1, prefetched=True)
        cache.fill(2)  # evicts unused prefetch
        assert cache.useless_prefetch_evictions == 1

    def test_used_prefetch_eviction_not_useless(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(1, prefetched=True)
        cache.access(1)
        cache.fill(2)
        assert cache.useless_prefetch_evictions == 0

    def test_dirty_flag_merged_on_refill(self):
        cache = tiny_cache()
        cache.fill(3, dirty=False)
        cache.fill(3, dirty=True)
        assert cache.lookup(3, update_lru=False).dirty


class TestMSHRFile:
    def test_capacity_enforced(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(1, ready_cycle=100, is_prefetch=True)
        mshr.allocate(2, ready_cycle=100, is_prefetch=True)
        assert not mshr.has_free_entry(cycle=0)

    def test_expire_frees_entries(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(1, ready_cycle=10, is_prefetch=True)
        mshr.allocate(2, ready_cycle=50, is_prefetch=True)
        done = mshr.expire(cycle=20)
        assert [e.block for e in done] == [1]
        assert mshr.has_free_entry(cycle=20)

    def test_merge_keeps_earliest_ready(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(1, ready_cycle=100, is_prefetch=True)
        entry = mshr.allocate(1, ready_cycle=50, is_prefetch=False)
        assert entry.ready_cycle == 50
        assert len(mshr) == 1

    def test_lookup_and_remove(self):
        mshr = MSHRFile(capacity=2)
        mshr.allocate(7, ready_cycle=5, is_prefetch=True)
        assert mshr.lookup(7) is not None
        assert mshr.remove(7).block == 7
        assert mshr.lookup(7) is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(capacity=0)

    def test_outstanding_snapshot(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(1, 10, True)
        mshr.allocate(2, 20, False)
        blocks = sorted(e.block for e in mshr.outstanding())
        assert blocks == [1, 2]
