"""Tests for the synthetic workload generators, trace utilities and suites."""

import pytest

from repro.sim.types import AccessType
from repro.workloads import (
    GENERATORS,
    SUITES,
    CloudWorkload,
    GraphWorkload,
    MixedPhaseWorkload,
    PointerChaseWorkload,
    SpatialRecurrenceWorkload,
    StreamingWorkload,
    StridedWorkload,
    TraceSpec,
    all_trace_specs,
    load_trace,
    make_trace,
    save_trace,
    suite_names,
    trace_specs_for_suite,
    trace_statistics,
)
from repro.workloads.suites import MAIN_SUITES


class TestGeneratorContract:
    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_exact_length(self, kind):
        trace = make_trace(kind, seed=1, length=500)
        assert len(trace) == 500

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_deterministic_given_seed(self, kind):
        first = make_trace(kind, seed=42, length=300)
        second = make_trace(kind, seed=42, length=300)
        assert [(a.pc, a.address) for a in first] == [(a.pc, a.address) for a in second]

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_different_seeds_differ(self, kind):
        first = make_trace(kind, seed=1, length=300)
        second = make_trace(kind, seed=2, length=300)
        assert [(a.pc, a.address) for a in first] != [(a.pc, a.address) for a in second]

    @pytest.mark.parametrize("kind", sorted(GENERATORS))
    def test_addresses_and_gaps_valid(self, kind):
        for access in make_trace(kind, seed=3, length=300):
            assert access.address >= 0
            assert access.instr_gap >= 0
            assert access.pc > 0
            assert access.access_type in (AccessType.LOAD, AccessType.STORE)

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            StreamingWorkload(length=0)


class TestStreamingWorkloads:
    def test_streaming_regions_are_dense(self):
        trace = make_trace("streaming", seed=5, length=4000)
        stats = trace_statistics(trace)
        assert stats["mean_region_density"] > 0.6

    def test_streaming_accesses_mostly_sequential(self):
        generator = StreamingWorkload(seed=5, length=2000, num_arrays=1,
                                      accesses_per_block=1, revisit_fraction=0.0)
        trace = generator.generate()
        blocks = [a.address >> 6 for a in trace]
        deltas = [b - a for a, b in zip(blocks, blocks[1:])]
        assert deltas.count(1) / len(deltas) > 0.9

    def test_strided_workload_stride(self):
        generator = StridedWorkload(seed=1, length=1000, stride_blocks=4, num_streams=1)
        blocks = [a.address >> 6 for a in generator.generate()]
        deltas = {b - a for a, b in zip(blocks, blocks[1:])}
        assert deltas == {4}

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StreamingWorkload(num_arrays=0)
        with pytest.raises(ValueError):
            StridedWorkload(stride_blocks=0)


class TestSpatialRecurrence:
    def test_classes_share_trigger_offsets(self):
        generator = SpatialRecurrenceWorkload(seed=3, num_classes=12,
                                              classes_per_trigger=3)
        triggers = [cls.trigger_offset for cls in generator.classes]
        assert len(set(triggers)) < len(triggers)

    def test_classes_with_same_trigger_differ_in_second(self):
        generator = SpatialRecurrenceWorkload(seed=3, num_classes=12,
                                              classes_per_trigger=3)
        by_trigger = {}
        for cls in generator.classes:
            by_trigger.setdefault(cls.trigger_offset, set()).add(cls.second_offset)
        assert any(len(seconds) > 1 for seconds in by_trigger.values())

    def test_footprints_are_sparse(self):
        trace = make_trace("spatial", seed=3, length=4000)
        stats = trace_statistics(trace)
        assert 0.05 < stats["mean_region_density"] < 0.6

    def test_regions_mostly_fresh(self):
        trace = make_trace("spatial", seed=3, length=4000)
        stats = trace_statistics(trace)
        assert stats["distinct_regions"] > 100


class TestGraphWorkload:
    def test_invalid_algorithm_and_phase(self):
        with pytest.raises(ValueError):
            GraphWorkload(algorithm="dijkstra")
        with pytest.raises(ValueError):
            GraphWorkload(phase="warmup")

    def test_init_phase_is_streaming(self):
        trace = make_trace("graph", seed=4, length=4000, phase="init")
        stats = trace_statistics(trace)
        assert stats["mean_region_density"] > 0.5

    def test_compute_phase_mixes_patterns(self):
        trace = make_trace("graph", seed=4, length=4000, phase="compute")
        stats = trace_statistics(trace)
        assert stats["distinct_pcs"] >= 4
        assert stats["mean_region_density"] < 0.9

    def test_adjacency_is_valid(self):
        generator = GraphWorkload(seed=4, num_vertices=256)
        assert len(generator.adjacency) == 256
        for neighbours in generator.adjacency:
            assert all(0 <= v < 256 for v in neighbours)


class TestIrregularWorkloads:
    def test_pointer_chase_low_density(self):
        trace = make_trace("pointer-chase", seed=5, length=4000)
        stats = trace_statistics(trace)
        assert stats["mean_region_density"] < 0.2

    def test_pointer_chase_visits_many_regions(self):
        stats = trace_statistics(make_trace("pointer-chase", seed=5, length=4000))
        assert stats["distinct_regions"] > 500

    def test_cloud_has_many_pcs(self):
        stats = trace_statistics(make_trace("cloud", seed=6, length=4000))
        assert stats["distinct_pcs"] >= 20

    def test_cloud_handlers_share_triggers(self):
        generator = CloudWorkload(seed=6, num_handlers=24, handlers_per_trigger=4)
        triggers = [h.footprint_offsets[0] for h in generator.handlers]
        assert len(set(triggers)) < len(triggers)

    def test_mixed_phase_contains_dense_and_sparse(self):
        generator = MixedPhaseWorkload(seed=7, length=6000)
        trace = generator.generate()
        region_blocks = {}
        for access in trace:
            region_blocks.setdefault(access.address // 4096, set()).add(
                access.address >> 6
            )
        densities = [len(blocks) / 64 for blocks in region_blocks.values()]
        assert any(d > 0.9 for d in densities)
        assert any(d < 0.3 for d in densities)


class TestTraceSpecAndPersistence:
    def test_spec_build_respects_length(self):
        spec = TraceSpec(name="t", suite="s", generator="streaming", length=700)
        assert len(spec.build()) == 700
        assert len(spec.build(length=300)) == 300

    def test_spec_unknown_generator(self):
        spec = TraceSpec(name="t", suite="s", generator="nope")
        with pytest.raises(KeyError):
            spec.build()

    def test_make_trace_from_spec(self):
        spec = TraceSpec(name="t", suite="s", generator="spatial", length=200)
        assert len(make_trace(spec)) == 200

    def test_save_load_round_trip(self, tmp_path):
        trace = make_trace("cloud", seed=1, length=100)
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == list(trace)

    def test_statistics_empty_trace(self):
        stats = trace_statistics([])
        assert stats["accesses"] == 0

    def test_statistics_counts(self):
        trace = make_trace("streaming", seed=1, length=500)
        stats = trace_statistics(trace)
        assert stats["accesses"] == 500
        assert stats["instructions"] >= 500


class TestSuites:
    def test_main_suites_present(self):
        assert set(MAIN_SUITES) <= set(suite_names())

    def test_all_specs_have_unique_names(self):
        names = [spec.name for spec in all_trace_specs(main_only=False)]
        assert len(names) == len(set(names))

    def test_every_spec_is_buildable_small(self):
        for spec in all_trace_specs(main_only=False):
            trace = spec.build(length=50)
            assert len(trace) == 50

    def test_suite_lookup_errors(self):
        with pytest.raises(KeyError):
            trace_specs_for_suite("not-a-suite")

    def test_suite_composition_mirrors_table3(self):
        assert len(trace_specs_for_suite("spec06")) >= 10
        assert len(trace_specs_for_suite("spec17")) >= 10
        assert len(trace_specs_for_suite("ligra")) >= 6
        assert len(trace_specs_for_suite("parsec")) >= 3
        assert len(trace_specs_for_suite("cloud")) >= 4
        assert len(trace_specs_for_suite("gap")) == 6

    def test_suite_field_matches_membership(self):
        for suite in ("spec06", "spec17", "ligra", "parsec", "cloud"):
            for spec in trace_specs_for_suite(suite):
                assert spec.suite == suite
