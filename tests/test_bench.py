"""Tests for the kernel-throughput benchmark harness and BENCH trajectory."""

import json

import pytest

from repro.experiments import bench
from repro.experiments.jobs import SimulationJob, execute_job
from repro.workloads.trace import TraceSpec


def _fake_result(rates):
    return {
        "schema": bench.BENCH_SCHEMA,
        "cases": {
            key: {"accesses_per_sec": rate, "accesses": 100, "best_wall_s": 0.1}
            for key, rate in rates.items()
        },
        "geomean_accesses_per_sec": 0.0,
    }


class TestBenchSuiteDefinition:
    def test_full_suite_covers_every_case_kind(self):
        cases = bench.bench_cases(quick=False)
        kernel = [c for c in cases if c.kind == "kernel"]
        scalar = [c for c in kernel if c.batch == "off"]
        mixes = [c for c in cases if c.kind == "mix"]
        streams = [c for c in cases if c.kind == "stream"]
        # The batched-kernel grids (spatial + temporal) plus the scalar
        # reference cases.
        assert len(kernel) == (
            len(bench.BENCH_TRACES) * len(bench.BENCH_PREFETCHERS)
            + len(bench.TEMPORAL_BENCH_PREFETCHERS)
            + len(scalar)
        )
        assert len(scalar) == 3
        assert {c.mode for c in mixes} == {"exact", "epoch"}
        assert len(streams) == 2
        assert {c.generator for c in streams} == {
            "streaming", bench.TEMPORAL_BENCH_TRACE[0],
        }

    def test_scalar_reference_cases_have_distinct_keys(self):
        batched = bench.BenchCase("kernel", "spatial", 11, "none")
        scalar = bench.BenchCase("kernel", "spatial", 11, "none", batch="off")
        assert batched.key(40_000) == "spatial-s11-L40000/none"
        assert scalar.key(40_000) == "spatial-s11-L40000/none@scalar"

    def test_quick_cases_are_a_subset_of_the_full_suite(self):
        full = set(bench.bench_cases(quick=False))
        quick = set(bench.bench_cases(quick=True))
        assert quick < full
        # The quick lane must exercise the multi-core and streamed paths.
        assert any(c.kind == "mix" for c in quick)
        assert any(c.kind == "stream" for c in quick)

    def test_kernel_case_keys_are_stable(self):
        # Kernel keys must stay byte-identical to v1 snapshots (BENCH_0)
        # so the trajectory remains comparable across schema versions.
        case = bench.BenchCase("kernel", "spatial", 11, "gaze")
        assert case.key(40_000) == "spatial-s11-L40000/gaze"

    def test_run_bench_smoke(self):
        # Tiny traces keep this a unit test; the case *keys* then differ
        # from the committed snapshots, which is fine — comparisons only
        # consider shared keys.
        result = bench.run_bench(quick=True, repeats=1, trace_length=400)
        assert result["schema"] == bench.BENCH_SCHEMA
        assert len(result["cases"]) == len(bench.QUICK_CASES)
        for payload in result["cases"].values():
            assert payload["accesses_per_sec"] > 0
            if payload["kind"] in ("kernel", "stream"):
                assert payload["accesses"] == 400
            else:  # mix: measured accesses across all cores
                assert payload["cores"] == len(bench.MIX_BENCH_SPECS)
                assert payload["accesses"] > 0
        assert result["geomean_accesses_per_sec"] > 0
        assert set(result["geomean_by_kind"]) == {"kernel", "mix", "stream"}
        for value in result["geomean_by_kind"].values():
            assert value > 0

    def test_run_bench_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            bench.run_bench(repeats=0)


class TestBenchFiles:
    def test_numbering_starts_at_zero_and_increments(self, tmp_path):
        directory = str(tmp_path)
        assert bench.latest_bench_file(directory) is None
        first = bench.write_bench_file(_fake_result({"a/x": 1.0}), directory)
        assert first.name == "BENCH_0.json"
        second = bench.write_bench_file(_fake_result({"a/x": 2.0}), directory)
        assert second.name == "BENCH_1.json"
        assert bench.latest_bench_file(directory) == second
        assert [p.name for p in bench.bench_files(directory)] == [
            "BENCH_0.json",
            "BENCH_1.json",
        ]

    def test_round_trip(self, tmp_path):
        result = _fake_result({"a/x": 123.0})
        path = bench.write_bench_file(result, str(tmp_path))
        assert bench.load_bench_file(path) == result

    def test_committed_trajectory_is_valid(self):
        # The repository commits its own trajectory; the latest snapshot
        # must carry the *current* full suite at the standard trace length
        # (earlier snapshots may predate newer case kinds).
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        files = bench.bench_files(str(repo_root))
        assert files, "expected committed BENCH_<n>.json files at the repo root"
        latest = bench.load_bench_file(files[-1])
        assert latest["schema"] == bench.BENCH_SCHEMA
        expected_keys = {
            case.key(bench.BENCH_TRACE_LENGTH)
            for case in bench.bench_cases(quick=False)
        }
        assert set(latest["cases"]) == expected_keys
        # Kernel keys are stable across schema versions: every kernel case
        # of the first snapshot must still be part of the current suite.
        first = bench.load_bench_file(files[0])
        assert set(first["cases"]) <= expected_keys


class TestBenchComparison:
    def test_no_regression(self):
        old = _fake_result({"a/x": 100.0, "a/y": 100.0})
        new = _fake_result({"a/x": 90.0, "a/y": 130.0})
        report = bench.compare_bench(new, old, threshold=0.40)
        assert report["ok"]
        assert report["regressions"] == []
        assert report["ratios"]["a/x"] == pytest.approx(0.9)

    def test_regression_detected(self):
        old = _fake_result({"a/x": 100.0})
        new = _fake_result({"a/x": 50.0})
        report = bench.compare_bench(new, old, threshold=0.40)
        assert not report["ok"]
        assert report["regressions"] == ["a/x"]

    def test_only_shared_cases_compared(self):
        old = _fake_result({"a/x": 100.0, "only-old": 1.0})
        new = _fake_result({"a/x": 100.0, "only-new": 1.0})
        report = bench.compare_bench(new, old, threshold=0.40)
        assert report["shared_cases"] == ["a/x"]
        assert report["geomean_ratio"] == pytest.approx(1.0)

    def test_mix_regression_not_masked_by_kernel_win(self):
        # The global geomean can look healthy while one kind collapses;
        # the per-kind geomeans surface (and fail) the collapsed kind.
        old = _fake_result({"k/x": 100.0, "mix4/x": 100.0})
        new = _fake_result({"k/x": 300.0, "mix4/x": 50.0})
        for result in (old, new):
            result["cases"]["k/x"]["kind"] = "kernel"
            result["cases"]["mix4/x"]["kind"] = "mix"
        report = bench.compare_bench(new, old, threshold=0.40)
        assert report["geomean_ratio"] > 1.0  # masked at the global level
        assert report["geomean_ratio_by_kind"]["kernel"] == pytest.approx(3.0)
        assert report["geomean_ratio_by_kind"]["mix"] == pytest.approx(0.5)
        assert report["kind_regressions"] == ["mix"]
        assert not report["ok"]

    def test_kind_defaults_to_kernel_for_legacy_payloads(self):
        old = _fake_result({"a/x": 100.0})
        new = _fake_result({"a/x": 100.0})
        report = bench.compare_bench(new, old, threshold=0.40)
        assert report["geomean_ratio_by_kind"] == {"kernel": pytest.approx(1.0)}
        assert report["kind_regressions"] == []

    def test_unshared_cases_are_reported_by_name(self):
        # A renamed case must not silently lose regression coverage: it
        # shows up as uncovered-in-baseline plus new-without-baseline.
        old = _fake_result({"a/x": 100.0, "renamed-old": 50.0})
        new = _fake_result({"a/x": 100.0, "renamed-new": 50.0})
        report = bench.compare_bench(new, old, threshold=0.40)
        assert report["only_in_baseline"] == ["renamed-old"]
        assert report["only_in_new"] == ["renamed-new"]


class TestExecuteJobTiming:
    def _job(self):
        spec = TraceSpec(
            name="t", suite="test", generator="spatial", seed=5, length=600
        )
        return SimulationJob(spec=spec, prefetcher="none", trace_length=600)

    def test_timing_off_by_default(self):
        stats = execute_job(self._job())
        assert "wall_time_s" not in stats.extra
        assert "accesses_per_sec" not in stats.extra

    def test_timing_recorded_on_request(self):
        stats = execute_job(self._job(), record_timing=True)
        assert stats.extra["wall_time_s"] > 0
        assert stats.extra["accesses_per_sec"] == pytest.approx(
            stats.demand_accesses / stats.extra["wall_time_s"]
        )

    def test_timed_and_untimed_counters_identical(self):
        timed = execute_job(self._job(), record_timing=True)
        untimed = execute_job(self._job())
        timed_dict = timed.to_dict()
        timed_dict["extra"] = {}
        assert timed_dict == untimed.to_dict()


class TestBenchCLI:
    def test_cli_quick_writes_and_compares(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        # Shrink the suite so the CLI test stays fast.
        monkeypatch.setattr(
            bench, "QUICK_CASES", (bench.BenchCase("kernel", "spatial", 11, "none"),)
        )
        monkeypatch.setattr(bench, "BENCH_TRACE_LENGTH", 400)
        directory = str(tmp_path)
        code = cli.main(
            ["bench", "--quick", "--repeats", "1", "--output-dir", directory]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "establishes one" in out
        written = bench.latest_bench_file(directory)
        assert written is not None and written.name == "BENCH_0.json"

        # Second run compares against the first and writes BENCH_1.json.
        # The tiny monkeypatched suite measures ~milliseconds of wall
        # time, so scheduler noise between the two runs can be large; a
        # near-maximal threshold keeps this a plumbing test, not a perf
        # assertion.
        code = cli.main(
            ["bench", "--quick", "--repeats", "1", "--output-dir", directory,
             "--check", "--threshold", "95"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shared cases" in out
        assert bench.latest_bench_file(directory).name == "BENCH_1.json"

    def test_cli_check_fails_on_regression(self, tmp_path, monkeypatch, capsys):
        from repro import cli

        monkeypatch.setattr(
            bench, "QUICK_CASES", (bench.BenchCase("kernel", "spatial", 11, "none"),)
        )
        monkeypatch.setattr(bench, "BENCH_TRACE_LENGTH", 400)
        directory = str(tmp_path)
        key = bench._case_key("spatial", 11, "none", 400)
        impossible = _fake_result({key: 1e15})
        (tmp_path / "BENCH_0.json").write_text(
            json.dumps(impossible), encoding="utf-8"
        )
        code = cli.main(
            ["bench", "--quick", "--repeats", "1", "--output-dir", directory,
             "--check", "--no-write"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_reports_uncovered_baseline_cases(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro import cli

        monkeypatch.setattr(
            bench, "QUICK_CASES", (bench.BenchCase("kernel", "spatial", 11, "none"),)
        )
        monkeypatch.setattr(bench, "BENCH_TRACE_LENGTH", 400)
        key = bench._case_key("spatial", 11, "none", 400)
        baseline = _fake_result({key: 1.0, "vanished-case/gaze": 1.0})
        (tmp_path / "BENCH_0.json").write_text(
            json.dumps(baseline), encoding="utf-8"
        )
        code = cli.main(
            ["bench", "--quick", "--repeats", "1", "--output-dir",
             str(tmp_path), "--check", "--no-write"]
        )
        out = capsys.readouterr().out
        assert code == 0  # uncovered cases are reported, not failed
        assert "not measured this run" in out
        assert "vanished-case/gaze" in out

    def test_cli_rejects_bad_flags(self, capsys):
        from repro import cli

        assert cli.main(["bench", "--repeats", "0"]) == 2
        assert cli.main(["bench", "--threshold", "0"]) == 2
