"""Tests for the storage / area / energy analysis (Tables I & IV, §III-E)."""

import pytest

from repro.analysis import (
    baseline_storage_table,
    estimate_pattern_module_cost,
    gaze_storage_breakdown,
    gaze_vs_pmp_comparison,
    prefetcher_storage_kib,
)
from repro.analysis.storage import GAZE_STORAGE_BREAKDOWN, storage_ratio_vs


class TestGazeStorage:
    def test_breakdown_structures(self):
        breakdown = gaze_storage_breakdown()
        for structure, paper_bytes in GAZE_STORAGE_BREAKDOWN.items():
            assert breakdown[structure] == pytest.approx(paper_bytes, rel=0.02)

    def test_total_is_4_46_kb(self):
        breakdown = gaze_storage_breakdown()
        assert breakdown["Total"] / 1024 == pytest.approx(4.46, abs=0.02)

    def test_dc_is_tiny(self):
        assert gaze_storage_breakdown()["DC"] < 1.0


class TestBaselineStorage:
    def test_rows_have_measured_and_paper(self):
        for row in baseline_storage_table():
            assert row["measured_kib"] > 0

    def test_gaze_much_smaller_than_bingo(self):
        """The paper reports a ~31x storage advantage over Bingo."""
        ratio = storage_ratio_vs("bingo", "gaze")
        assert ratio > 20

    def test_gaze_close_to_pmp(self):
        gaze = prefetcher_storage_kib("gaze")
        pmp = prefetcher_storage_kib("pmp")
        assert abs(pmp - gaze) < 1.5

    def test_low_cost_group_under_10kb(self):
        for name in ("gaze", "pmp", "dspatch", "vberti", "ipcp"):
            assert prefetcher_storage_kib(name) < 10


class TestAreaEnergy:
    def test_known_designs(self):
        for design in ("gaze", "pmp", "berti"):
            estimates = estimate_pattern_module_cost(design)
            for estimate in estimates.values():
                assert estimate.area_mm2 > 0
                assert estimate.access_energy_pj > 0

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            estimate_pattern_module_cost("mystery")

    def test_gaze_cheaper_than_pmp(self):
        """§III-E: Gaze's PHM is ~29% of PMP's area and <46% of its energy."""
        comparison = gaze_vs_pmp_comparison()
        assert comparison["gaze_over_pmp_area"] < 0.6
        assert comparison["gaze_over_pmp_energy"] < 1.0

    def test_berti_l1_extension_larger_than_gaze_phm(self):
        """§III-E: Berti's per-line extension costs >10x the Gaze PHM."""
        comparison = gaze_vs_pmp_comparison()
        assert comparison["berti_over_gaze_area"] > 2.0

    def test_gaze_line_narrower_than_pmp_line(self):
        gaze = estimate_pattern_module_cost("gaze")["PHT"]
        pmp = estimate_pattern_module_cost("pmp")["OPT"]
        assert gaze.bits_per_line < pmp.bits_per_line
