"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def _run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestListCommands:
    def test_list_figures(self, capsys):
        code, out = _run(["list", "figures"], capsys)
        assert code == 0
        names = out.split()
        assert "fig6" in names and "fig18" in names

    def test_list_prefetchers(self, capsys):
        code, out = _run(["list", "prefetchers"], capsys)
        assert code == 0
        assert "gaze" in out.split()

    def test_list_suites(self, capsys):
        code, out = _run(["list", "suites"], capsys)
        assert code == 0
        assert "spec17" in out.split()

    def test_list_tables_and_sweeps(self, capsys):
        assert "table5" in _run(["list", "tables"], capsys)[1].split()
        assert "dram" in _run(["list", "sweeps"], capsys)[1].split()


class TestRunCommand:
    def test_adhoc_grid(self, tmp_path, capsys):
        code, out = _run(
            [
                "run", "--suite", "spec17", "--prefetchers", "ip-stride",
                "--trace-length", "600", "--traces-per-suite", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            capsys,
        )
        assert code == 0
        assert "ip-stride" in out
        assert "speedup" in out
        assert "# 2 simulated" in out

    def test_warm_rerun_skips_simulation(self, tmp_path, capsys):
        argv = [
            "run", "--suite", "spec17", "--prefetchers", "ip-stride",
            "--trace-length", "600", "--traces-per-suite", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        _run(argv, capsys)
        code, out = _run(argv, capsys)
        assert code == 0
        assert "# 0 simulated" in out
        assert "2 cache hits" in out

    def test_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        # Run from a fresh CWD so the default .repro-cache location would be
        # observable if --no-cache failed to suppress it.
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code, out = _run(
            [
                "run", "--suite", "spec17", "--prefetchers", "ip-stride",
                "--trace-length", "600", "--traces-per-suite", "1",
                "--no-cache",
            ],
            capsys,
        )
        assert code == 0
        assert "cache: disabled" in out
        assert not (tmp_path / ".repro-cache").exists()

    def test_run_table(self, capsys):
        code, out = _run(["run", "--table", "table1"], capsys)
        assert code == 0
        assert "structure" in out

    def test_figure_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--figure", "fig99"])

    def test_unknown_prefetcher_is_clean_error(self, capsys):
        code = main(["run", "--suite", "spec17", "--prefetchers", "gazee",
                     "--trace-length", "600", "--traces-per-suite", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown prefetcher 'gazee'" in err

    def test_empty_prefetchers_is_clean_error(self, capsys):
        code = main(["run", "--suite", "spec17", "--prefetchers", " , ",
                     "--trace-length", "600", "--traces-per-suite", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no prefetchers" in err

    def test_standalone_figure_warns_about_ignored_flags(
        self, tmp_path, capsys, monkeypatch
    ):
        # Stub the expensive multi-core figure: this test covers CLI flag
        # handling, not the simulation itself.
        import repro.cli as cli

        monkeypatch.setitem(
            cli._STANDALONE_FIGURES, "fig15", lambda: [{"mix": "stub"}]
        )
        code = main(["run", "--figure", "fig15", "--jobs", "4",
                     "--cache-dir", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "--jobs, --cache-dir ignored" in captured.err
        assert "simulated" not in captured.out  # no misleading engine summary


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        _run(
            [
                "run", "--suite", "spec17", "--prefetchers", "ip-stride",
                "--trace-length", "600", "--traces-per-suite", "1",
                "--cache-dir", cache_dir,
            ],
            capsys,
        )
        code, out = _run(["cache", "info", "--cache-dir", cache_dir], capsys)
        assert code == 0
        assert "entries: 2" in out

        code, out = _run(["cache", "clear", "--cache-dir", cache_dir], capsys)
        assert code == 0
        assert "removed 2" in out
        code, out = _run(["cache", "info", "--cache-dir", cache_dir], capsys)
        assert "entries: 0" in out
