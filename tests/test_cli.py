"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def _run(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestListCommands:
    def test_list_figures(self, capsys):
        code, out = _run(["list", "figures"], capsys)
        assert code == 0
        names = out.split()
        assert "fig6" in names and "fig18" in names

    def test_list_prefetchers(self, capsys):
        code, out = _run(["list", "prefetchers"], capsys)
        assert code == 0
        assert "gaze" in out.split()

    def test_list_suites(self, capsys):
        code, out = _run(["list", "suites"], capsys)
        assert code == 0
        assert "spec17" in out.split()

    def test_list_tables_and_sweeps(self, capsys):
        assert "table5" in _run(["list", "tables"], capsys)[1].split()
        assert "dram" in _run(["list", "sweeps"], capsys)[1].split()


class TestRunCommand:
    def test_adhoc_grid(self, tmp_path, capsys):
        code, out = _run(
            [
                "run", "--suite", "spec17", "--prefetchers", "ip-stride",
                "--trace-length", "600", "--traces-per-suite", "1",
                "--cache-dir", str(tmp_path / "cache"),
            ],
            capsys,
        )
        assert code == 0
        assert "ip-stride" in out
        assert "speedup" in out
        assert "# 2 simulated" in out

    def test_warm_rerun_skips_simulation(self, tmp_path, capsys):
        argv = [
            "run", "--suite", "spec17", "--prefetchers", "ip-stride",
            "--trace-length", "600", "--traces-per-suite", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        _run(argv, capsys)
        code, out = _run(argv, capsys)
        assert code == 0
        assert "# 0 simulated" in out
        assert "2 cache hits" in out

    def test_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        # Run from a fresh CWD so the default .repro-cache location would be
        # observable if --no-cache failed to suppress it.
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code, out = _run(
            [
                "run", "--suite", "spec17", "--prefetchers", "ip-stride",
                "--trace-length", "600", "--traces-per-suite", "1",
                "--no-cache",
            ],
            capsys,
        )
        assert code == 0
        assert "cache: disabled" in out
        assert not (tmp_path / ".repro-cache").exists()

    def test_run_table(self, capsys):
        code, out = _run(["run", "--table", "table1"], capsys)
        assert code == 0
        assert "structure" in out

    def test_figure_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--figure", "fig99"])

    def test_unknown_prefetcher_is_clean_error(self, capsys):
        code = main(["run", "--suite", "spec17", "--prefetchers", "gazee",
                     "--trace-length", "600", "--traces-per-suite", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown prefetcher 'gazee'" in err

    def test_empty_prefetchers_is_clean_error(self, capsys):
        code = main(["run", "--suite", "spec17", "--prefetchers", " , ",
                     "--trace-length", "600", "--traces-per-suite", "1"])
        err = capsys.readouterr().err
        assert code == 2
        assert "no prefetchers" in err

    def test_mix_figure_is_engine_backed(self, tmp_path, capsys, monkeypatch):
        # Stub the expensive multi-core figure: this test covers CLI flag
        # plumbing (runner + mix kwargs), not the simulation itself.
        import repro.cli as cli

        seen = {}

        def stub(runner, **kwargs):
            seen["runner"] = runner
            seen.update(kwargs)
            return [{"mix": "stub"}]

        monkeypatch.setitem(cli._RUNNER_FIGURES, "fig15", stub)
        code = main(["run", "--figure", "fig15", "--jobs", "2",
                     "--cache-dir", str(tmp_path), "--mix-mode", "epoch",
                     "--epoch-instructions", "1000", "--trace-length", "2000"])
        captured = capsys.readouterr()
        assert code == 0
        assert seen["mode"] == "epoch"
        assert seen["epoch_instructions"] == 1000
        assert seen["trace_length"] == 2000
        assert seen["runner"].engine.executor.jobs == 2
        assert "simulated" in captured.out  # engine summary is printed


class TestTraceCommands:
    def test_export_info_import_round_trip(self, tmp_path, capsys):
        exported = tmp_path / "t.gzt.gz"
        code, out = _run(
            ["trace", "export", "--generator", "streaming", "--seed", "4",
             "--length", "400", "-o", str(exported)],
            capsys,
        )
        assert code == 0
        assert "wrote 400 accesses" in out

        code, out = _run(["trace", "info", str(exported)], capsys)
        assert code == 0
        assert "format: native" in out
        assert "compression: gzip" in out
        assert "records: 400" in out

        converted = tmp_path / "t.champsim"
        code, out = _run(
            ["trace", "import", str(exported), "-o", str(converted)], capsys
        )
        assert code == 0
        from repro.workloads import load_trace

        assert load_trace(converted) == load_trace(exported)

    def test_export_named_trace_with_transforms(self, tmp_path, capsys):
        out_path = tmp_path / "bwaves.jsonl"
        code, out = _run(
            ["trace", "export", "--trace", "bwaves_s-like", "--length", "300",
             "--start", "50", "--limit", "100", "-o", str(out_path)],
            capsys,
        )
        assert code == 0
        assert "wrote 100 accesses" in out

    def test_export_generator_params(self, tmp_path, capsys):
        out_path = tmp_path / "g.gzt"
        code, out = _run(
            ["trace", "export", "--generator", "strided", "--length", "100",
             "--param", "stride_blocks=4", "--param", "num_streams=1",
             "-o", str(out_path)],
            capsys,
        )
        assert code == 0
        from repro.workloads import load_trace

        blocks = [a.address >> 6 for a in load_trace(out_path)]
        assert {b - a for a, b in zip(blocks, blocks[1:])} == {4}

    def test_import_interleaves_multiple_sources(self, tmp_path, capsys):
        from repro.sim.types import MemoryAccess
        from repro.workloads import load_trace, save_trace

        a_path = tmp_path / "a.jsonl"
        b_path = tmp_path / "b.jsonl"
        save_trace([MemoryAccess(pc=1, address=64 * i) for i in range(3)], a_path)
        save_trace([MemoryAccess(pc=2, address=64 * i) for i in range(3)], b_path)
        mixed_path = tmp_path / "mix.gzt"
        code, out = _run(
            ["trace", "import", str(a_path), str(b_path), "-o", str(mixed_path)],
            capsys,
        )
        assert code == 0
        assert "wrote 6 accesses from 2 source(s)" in out
        assert [a.pc for a in load_trace(mixed_path)] == [1, 2, 1, 2, 1, 2]

    def test_info_rejects_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "bad.gzt"
        path.write_bytes(b"NOTATRACE_______" + b"\x00" * 10)
        code = main(["trace", "info", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_export_unknown_generator_is_clean_error(self, tmp_path, capsys):
        code = main(["trace", "export", "--generator", "quantum",
                     "-o", str(tmp_path / "t.gzt")])
        err = capsys.readouterr().err
        assert code == 2
        assert "quantum" in err

    def test_export_unknown_named_trace_is_clean_error(self, tmp_path, capsys):
        code = main(["trace", "export", "--trace", "no-such-trace",
                     "-o", str(tmp_path / "t.gzt")])
        err = capsys.readouterr().err
        assert code == 2
        assert "no-such-trace" in err


class TestRunTraceFile:
    def test_run_on_gzip_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "stream.gzt.gz"
        _run(
            ["trace", "export", "--generator", "streaming", "--seed", "9",
             "--length", "1500", "-o", str(trace_path)],
            capsys,
        )
        code, out = _run(
            ["run", "--trace-file", str(trace_path),
             "--prefetchers", "ip-stride",
             "--cache-dir", str(tmp_path / "cache")],
            capsys,
        )
        assert code == 0
        assert "stream.gzt.gz" in out
        assert "speedup" in out
        assert "# 2 simulated" in out

    def test_trace_file_results_are_cached(self, tmp_path, capsys):
        trace_path = tmp_path / "stream.gzt.gz"
        _run(
            ["trace", "export", "--generator", "streaming", "--seed", "9",
             "--length", "1500", "-o", str(trace_path)],
            capsys,
        )
        argv = ["run", "--trace-file", str(trace_path),
                "--prefetchers", "ip-stride",
                "--cache-dir", str(tmp_path / "cache")]
        _run(argv, capsys)
        code, out = _run(argv, capsys)
        assert code == 0
        assert "# 0 simulated" in out

    def test_trace_file_conflicts_with_figure(self, tmp_path, capsys):
        code = main(["run", "--trace-file", str(tmp_path / "t.gzt"),
                     "--figure", "fig6"])
        err = capsys.readouterr().err
        assert code == 2
        assert "--trace-file" in err

    def test_missing_trace_file_is_clean_error(self, tmp_path, capsys):
        code = main(["run", "--trace-file", str(tmp_path / "absent.gzt")])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    def test_suite_traces_not_inflated_by_file_length(self, tmp_path, capsys):
        # A long file trace combined with --suite must not stretch the
        # synthetic suite traces to the file's length.
        trace_path = tmp_path / "long.gzt"
        _run(
            ["trace", "export", "--generator", "streaming", "--seed", "1",
             "--length", "30000", "-o", str(trace_path)],
            capsys,
        )
        import repro.cli as cli
        from repro.experiments.runner import ExperimentRunner

        seen_lengths = {}
        original = ExperimentRunner.job_for

        def spy(self, spec, *a, **kw):
            job = original(self, spec, *a, **kw)
            seen_lengths[spec.name] = job.trace_length
            return job

        try:
            ExperimentRunner.job_for = spy
            code = main(
                ["run", "--trace-file", str(trace_path),
                 "--suite", "spec17", "--prefetchers", "ip-stride",
                 "--traces-per-suite", "1", "--no-cache"]
            )
        finally:
            ExperimentRunner.job_for = original
        captured = capsys.readouterr()
        assert code == 0
        assert "capped at the grid trace length" in captured.err
        suite_lengths = {
            name: length for name, length in seen_lengths.items()
            if name != "long.gzt"
        }
        assert suite_lengths and all(
            length <= 12_000 for length in suite_lengths.values()
        )

    def test_empty_trace_file_is_clean_error(self, tmp_path, capsys):
        from repro.workloads import save_trace

        path = tmp_path / "empty.gzt"
        save_trace([], path)
        code = main(["run", "--trace-file", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "empty" in err

    def test_bad_remap_offset_is_clean_error(self, tmp_path, capsys):
        code = main(["trace", "export", "--generator", "streaming",
                     "--length", "10", "--remap-offset", "zz",
                     "-o", str(tmp_path / "t.gzt")])
        err = capsys.readouterr().err
        assert code == 2
        assert "--remap-offset" in err


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        _run(
            [
                "run", "--suite", "spec17", "--prefetchers", "ip-stride",
                "--trace-length", "600", "--traces-per-suite", "1",
                "--cache-dir", cache_dir,
            ],
            capsys,
        )
        code, out = _run(["cache", "info", "--cache-dir", cache_dir], capsys)
        assert code == 0
        assert "entries: 2" in out

        code, out = _run(["cache", "clear", "--cache-dir", cache_dir], capsys)
        assert code == 0
        assert "removed 2" in out
        code, out = _run(["cache", "info", "--cache-dir", cache_dir], capsys)
        assert "entries: 0" in out
