"""Tests for the trace I/O subsystem: formats, compression, transforms.

The round-trip tests are property-based with seeded randomness (the
environment has no ``hypothesis``): randomized traces spanning the full
value ranges round-trip exactly through every format x compression
combination, and corrupt inputs always raise the typed
:class:`~repro.workloads.formats.TraceFormatError`.
"""

import gzip
import random

import pytest

from repro.sim.types import AccessType, MemoryAccess
from repro.workloads import formats as trace_formats
from repro.workloads.formats import (
    COMPRESSIONS,
    FORMATS,
    TraceFile,
    TraceFormatError,
    cap_instructions,
    describe_trace_file,
    interleave,
    load_trace_file,
    read_trace_stream,
    remap_addresses,
    resolve_format,
    save_trace_file,
    slice_accesses,
    sniff_format,
)
from repro.workloads.trace import TraceSource, TraceSpec, load_trace, save_trace

_COMPRESSION_SUFFIX = {"none": "", "gzip": ".gz", "xz": ".xz"}


def random_trace(seed, length=200, max_gap=200):
    """A seeded-random trace exercising wide pc/address/gap ranges."""
    rng = random.Random(seed)
    return [
        MemoryAccess(
            pc=rng.randrange(1, 1 << 48),
            address=rng.randrange(64, 1 << 48),
            access_type=rng.choice((AccessType.LOAD, AccessType.STORE)),
            instr_gap=rng.randrange(0, max_gap),
        )
        for _ in range(length)
    ]


class TestRoundTripProperties:
    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    @pytest.mark.parametrize("compression", COMPRESSIONS)
    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_save_load_exact(self, tmp_path, fmt, compression, seed):
        trace = random_trace(seed)
        path = tmp_path / f"t-{fmt}-{seed}{_COMPRESSION_SUFFIX[compression]}"
        written = save_trace_file(trace, path, format=fmt, compression=compression)
        assert written == len(trace)
        assert load_trace_file(path, format=fmt) == trace

    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    def test_format_resolved_from_suffix(self, tmp_path, fmt):
        trace = random_trace(3, length=50)
        suffix = FORMATS[fmt].suffixes[0]
        path = tmp_path / f"trace{suffix}.gz"
        save_trace_file(trace, path)
        assert sniff_format(path).name == fmt
        assert load_trace_file(path) == trace

    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    def test_sniffed_without_suffix(self, tmp_path, fmt):
        trace = random_trace(4, length=30)
        path = tmp_path / "suffixless"
        save_trace_file(trace, path, format=fmt)
        assert sniff_format(path).name == fmt
        assert load_trace_file(path) == trace

    def test_empty_trace_round_trips(self, tmp_path):
        for fmt in sorted(FORMATS):
            path = tmp_path / f"empty-{fmt}"
            assert save_trace_file([], path, format=fmt) == 0
            assert load_trace_file(path, format=fmt) == []

    def test_gzip_writes_are_reproducible(self, tmp_path):
        trace = random_trace(5, length=100)
        a = tmp_path / "a.gzt.gz"
        b = tmp_path / "b.gzt.gz"
        save_trace_file(trace, a)
        save_trace_file(trace, b)
        assert a.read_bytes() == b.read_bytes()

    def test_streaming_reader_is_lazy(self, tmp_path):
        path = tmp_path / "t.gzt"
        save_trace_file(random_trace(6, length=500), path)
        stream = read_trace_stream(path)
        first = next(stream)
        assert isinstance(first, MemoryAccess)
        stream.close()


class TestStreamingVsMaterializedSimulation:
    @pytest.mark.parametrize("compression", COMPRESSIONS)
    def test_identical_stats(self, tmp_path, compression):
        from repro.prefetchers import create_prefetcher
        from repro.sim.simulator import simulate_trace
        from repro.workloads import make_trace

        trace = make_trace("spatial", seed=11, length=3_000)
        path = tmp_path / ("t.gzt" + _COMPRESSION_SUFFIX[compression])
        save_trace_file(trace, path, compression=compression)

        materialized = simulate_trace(trace, prefetcher=create_prefetcher("gaze"))
        streamed = simulate_trace(
            TraceFile(path), prefetcher=create_prefetcher("gaze")
        )
        assert streamed.to_dict() == materialized.to_dict()

    def test_identical_stats_with_replay(self, tmp_path):
        from repro.sim.simulator import simulate_trace
        from repro.workloads import make_trace

        trace = make_trace("streaming", seed=12, length=1_000)
        path = tmp_path / "t.gzt.gz"
        save_trace_file(trace, path)
        materialized = simulate_trace(trace, max_instructions=15_000)
        streamed = simulate_trace(TraceFile(path), max_instructions=15_000)
        assert streamed.to_dict() == materialized.to_dict()

    def test_one_shot_iterator_with_budget_matches_list(self):
        from repro.sim.simulator import simulate_trace
        from repro.workloads import make_trace

        trace = make_trace("streaming", seed=16, length=500)
        from_list = simulate_trace(trace, max_instructions=10_000)
        from_iter = simulate_trace(iter(trace), max_instructions=10_000)
        assert from_iter.to_dict() == from_list.to_dict()

    def test_identical_stats_with_warmup(self, tmp_path):
        from repro.prefetchers import create_prefetcher
        from repro.sim.simulator import simulate_trace
        from repro.workloads import make_trace

        trace = make_trace("spatial", seed=15, length=800)
        path = tmp_path / "t.gzt.gz"
        save_trace_file(trace, path)
        materialized = simulate_trace(
            trace, prefetcher=create_prefetcher("gaze"), warmup_instructions=500
        )
        streamed = simulate_trace(
            TraceFile(path),
            prefetcher=create_prefetcher("gaze"),
            warmup_instructions=500,
        )
        assert streamed.to_dict() == materialized.to_dict()

    def test_multicore_replays_reopenable_handles(self, tmp_path):
        from repro.prefetchers import create_prefetcher
        from repro.sim.multicore import simulate_mix
        from repro.workloads import make_trace

        traces = [
            make_trace("streaming", seed=13, length=800),
            make_trace("spatial", seed=14, length=800),
        ]
        handles = []
        for index, trace in enumerate(traces):
            path = tmp_path / f"core{index}.gzt.gz"
            save_trace_file(trace, path)
            handles.append(TraceFile(path))

        factory = lambda: create_prefetcher("gaze")  # noqa: E731
        materialized = simulate_mix(
            traces, prefetcher_factory=factory, max_instructions_per_core=10_000
        )
        streamed = simulate_mix(
            handles, prefetcher_factory=factory, max_instructions_per_core=10_000
        )
        assert streamed.num_cores == materialized.num_cores
        for core in range(streamed.num_cores):
            assert (
                streamed.per_core[core].to_dict()
                == materialized.per_core[core].to_dict()
            )


class TestValidation:
    def test_truncated_native_record(self, tmp_path):
        path = tmp_path / "t.gzt"
        save_trace_file(random_trace(7, length=20), path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace_file(path)

    def test_truncated_native_header(self, tmp_path):
        path = tmp_path / "t.gzt"
        path.write_bytes(b"GZTR")
        with pytest.raises(TraceFormatError, match="header"):
            load_trace_file(path)

    def test_bad_native_magic(self, tmp_path):
        path = tmp_path / "t.gzt"
        path.write_bytes(b"NOTATRACE_______" + b"\x00" * 21)
        with pytest.raises(TraceFormatError, match="magic"):
            load_trace_file(path)

    def test_unsupported_native_version(self, tmp_path):
        import struct

        path = tmp_path / "t.gzt"
        path.write_bytes(struct.pack("<8sHHI", b"GZTRACE\x00", 99, 0, 0))
        with pytest.raises(TraceFormatError, match="version"):
            load_trace_file(path)

    def test_unknown_access_type_code(self, tmp_path):
        import struct

        path = tmp_path / "t.gzt"
        path.write_bytes(
            struct.pack("<8sHHI", b"GZTRACE\x00", 1, 0, 0)
            + struct.pack("<QQBI", 1, 64, 7, 0)
        )
        with pytest.raises(TraceFormatError, match="access-type"):
            load_trace_file(path)

    def test_truncated_champsim_record(self, tmp_path):
        path = tmp_path / "t.champsim"
        save_trace_file(random_trace(8, length=10), path)
        path.write_bytes(path.read_bytes()[:-17])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_trace_file(path)

    def test_corrupt_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"pc": 1, "addr": 64}\nnot json at all\n')
        with pytest.raises(TraceFormatError, match="line 2"):
            load_trace_file(path)

    def test_jsonl_missing_key(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"pc": 1}\n')
        with pytest.raises(TraceFormatError, match="addr"):
            load_trace_file(path)

    def test_jsonl_bad_type(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"pc": 1, "addr": 64, "type": "jump"}\n')
        with pytest.raises(TraceFormatError, match="jump"):
            load_trace_file(path)

    def test_jsonl_negative_values(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"pc": 1, "addr": -64}\n')
        with pytest.raises(TraceFormatError, match="negative"):
            load_trace_file(path)

    def test_corrupt_gzip_container(self, tmp_path):
        path = tmp_path / "t.gzt.gz"
        path.write_bytes(b"\x1f\x8b" + b"\x00" * 32)
        with pytest.raises(TraceFormatError, match="corrupt"):
            load_trace_file(path)

    def test_truncated_gzip_container(self, tmp_path):
        path = tmp_path / "t.gzt.gz"
        save_trace_file(random_trace(9, length=300), path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(TraceFormatError):
            load_trace_file(path)

    def test_champsim_rejects_address_zero(self, tmp_path):
        trace = [MemoryAccess(pc=1, address=0)]
        with pytest.raises(TraceFormatError, match="not.*representable"):
            save_trace_file(trace, tmp_path / "t.champsim")

    def test_failed_write_leaves_no_partial_file(self, tmp_path):
        # Record 3 is unrepresentable in ChampSim; the aborted write must
        # not leave a truncated-but-loadable file (or temp litter) behind.
        trace = [MemoryAccess(pc=1, address=64 * (i + 1)) for i in range(3)]
        trace.append(MemoryAccess(pc=1, address=0))
        path = tmp_path / "t.champsim"
        with pytest.raises(TraceFormatError):
            save_trace_file(trace, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_failed_write_preserves_existing_file(self, tmp_path):
        path = tmp_path / "t.champsim"
        good = [MemoryAccess(pc=1, address=64)]
        save_trace_file(good, path)
        with pytest.raises(TraceFormatError):
            save_trace_file([MemoryAccess(pc=1, address=0)], path)
        assert load_trace_file(path) == good

    def test_unwritable_destination_raises_typed_error(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot write"):
            save_trace_file(
                random_trace(27, length=5), tmp_path / "no-such-dir" / "t.gzt"
            )

    def test_champsim_rejects_prefetch_type(self, tmp_path):
        trace = [
            MemoryAccess(pc=1, address=64, access_type=AccessType.PREFETCH)
        ]
        with pytest.raises(TraceFormatError, match="prefetch"):
            save_trace_file(trace, tmp_path / "t.champsim")

    def test_native_rejects_out_of_range(self, tmp_path):
        trace = [MemoryAccess(pc=1, address=1 << 65)]
        with pytest.raises(TraceFormatError, match="u64"):
            save_trace_file(trace, tmp_path / "t.gzt")

    def test_unknown_format_name(self):
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            resolve_format("elf")

    def test_unknown_compression(self, tmp_path):
        with pytest.raises(TraceFormatError, match="compression"):
            save_trace_file([], tmp_path / "t.gzt", compression="zstd")

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="not found"):
            TraceFile(tmp_path / "nope.gzt")


class TestLegacyWrappers:
    @pytest.mark.parametrize("filename", ("trace.txt", "trace.trace"))
    def test_unknown_suffix_defaults_to_jsonl(self, tmp_path, filename):
        # Earlier versions always wrote JSON lines whatever the suffix
        # (including the generic '.trace'), so these must keep doing so —
        # and keep loading — for old files to stay readable.
        trace = random_trace(10, length=20)
        path = tmp_path / filename
        save_trace(trace, path)
        first_line = path.read_text().splitlines()[0]
        assert first_line.startswith("{")
        assert load_trace(path) == trace

    def test_load_trace_raises_typed_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("garbage\n")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_save_trace_honours_format_suffix(self, tmp_path):
        trace = random_trace(11, length=20)
        path = tmp_path / "trace.gzt.gz"
        save_trace(trace, path)
        assert sniff_format(path).name == "native"
        assert load_trace(path) == trace


class TestTransforms:
    def test_slice_matches_list_slicing(self):
        trace = random_trace(12, length=100)
        assert list(slice_accesses(iter(trace), 10, 40)) == trace[10:40]
        assert list(slice_accesses(iter(trace), 90, None)) == trace[90:]

    def test_slice_rejects_bad_bounds(self):
        with pytest.raises(TraceFormatError):
            list(slice_accesses(iter([]), -1, 5))
        with pytest.raises(TraceFormatError):
            list(slice_accesses(iter([]), 10, 5))

    def test_cap_instructions_budget(self):
        trace = [MemoryAccess(pc=1, address=64 * i, instr_gap=9) for i in range(50)]
        capped = list(cap_instructions(iter(trace), 25))
        # Each access is 10 instructions; the access crossing the budget is
        # still emitted.
        assert len(capped) == 3

    def test_cap_instructions_rejects_non_positive(self):
        with pytest.raises(TraceFormatError):
            list(cap_instructions(iter([]), 0))

    def test_remap_addresses(self):
        trace = random_trace(13, length=30)
        remapped = list(remap_addresses(iter(trace), offset=0x100))
        assert [a.address - 0x100 for a in remapped] == [a.address for a in trace]
        assert [a.pc for a in remapped] == [a.pc for a in trace]

    def test_remap_rejects_negative_result(self):
        with pytest.raises(TraceFormatError):
            list(remap_addresses(iter([MemoryAccess(pc=1, address=64)]), offset=-128))

    def test_interleave_round_robin(self):
        a = [MemoryAccess(pc=1, address=64 * i) for i in range(3)]
        b = [MemoryAccess(pc=2, address=64 * i) for i in range(5)]
        mixed = list(interleave([iter(a), iter(b)]))
        assert len(mixed) == 8
        assert [m.pc for m in mixed] == [1, 2, 1, 2, 1, 2, 2, 2]

    def test_interleave_chunked(self):
        a = [MemoryAccess(pc=1, address=64 * i) for i in range(4)]
        b = [MemoryAccess(pc=2, address=64 * i) for i in range(4)]
        mixed = list(interleave([iter(a), iter(b)], chunk=2))
        assert [m.pc for m in mixed] == [1, 1, 2, 2, 1, 1, 2, 2]


class TestTraceFileHandle:
    def test_reopenable(self, tmp_path):
        trace = random_trace(14, length=40)
        path = tmp_path / "t.gzt.xz"
        save_trace_file(trace, path)
        handle = TraceFile(path)
        assert list(handle) == trace
        assert list(handle) == trace

    def test_with_transforms_composes(self, tmp_path):
        trace = random_trace(15, length=40)
        path = tmp_path / "t.gzt"
        save_trace_file(trace, path)
        sliced = TraceFile(path).with_transforms(
            lambda accesses: slice_accesses(accesses, 0, 10)
        )
        assert list(sliced) == trace[:10]
        assert list(sliced) == trace[:10]

    def test_digest_is_cached_and_stable(self, tmp_path):
        path = tmp_path / "t.gzt"
        save_trace_file(random_trace(16, length=10), path)
        handle = TraceFile(path)
        assert handle.digest() == handle.digest()
        assert handle.digest() == trace_formats.file_digest(path)

    def test_describe_trace_file(self, tmp_path):
        trace = random_trace(17, length=25)
        path = tmp_path / "t.gzt.gz"
        save_trace_file(trace, path)
        info = describe_trace_file(path)
        assert info["format"] == "native"
        assert info["compression"] == "gzip"
        assert info["records"] == 25
        assert info["instructions"] == sum(a.instr_gap + 1 for a in trace)
        assert info["version"] == 1


class TestTraceSourceAndSpec:
    def test_job_key_is_path_independent(self, tmp_path):
        from repro.experiments.jobs import SimulationJob

        trace = random_trace(26, length=30)
        a = tmp_path / "a.gzt"
        b = tmp_path / "elsewhere" / "a.gzt"
        b.parent.mkdir()
        save_trace_file(trace, a)
        save_trace_file(trace, b)
        job_a = SimulationJob(spec=TraceSpec.from_file(a), prefetcher="gaze")
        job_b = SimulationJob(spec=TraceSpec.from_file(b), prefetcher="gaze")
        assert job_a.key() == job_b.key()

    def test_content_key_is_path_independent(self, tmp_path):
        trace = random_trace(18, length=30)
        a = tmp_path / "a.gzt"
        b = tmp_path / "sub" / "b.gzt"
        b.parent.mkdir()
        save_trace_file(trace, a)
        save_trace_file(trace, b)
        spec_a = TraceSpec.from_file(a, name="t")
        spec_b = TraceSpec.from_file(b, name="t")
        assert spec_a.content_key() == spec_b.content_key()

    def test_content_key_tracks_content(self, tmp_path):
        a = tmp_path / "a.gzt"
        b = tmp_path / "b.gzt"
        save_trace_file(random_trace(19, length=30), a)
        save_trace_file(random_trace(20, length=30), b)
        assert (
            TraceSpec.from_file(a, name="t").content_key()
            != TraceSpec.from_file(b, name="t").content_key()
        )

    def test_generator_spec_dict_unchanged_without_source(self):
        spec = TraceSpec(name="t", suite="s", generator="streaming")
        assert "source" not in spec.to_dict()

    def test_spec_round_trips_through_dict(self, tmp_path):
        path = tmp_path / "t.gzt"
        save_trace_file(random_trace(21, length=10), path)
        spec = TraceSpec.from_file(path, name="t", suite="file")
        rebuilt = TraceSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.content_key() == spec.content_key()

    def test_from_file_counts_records(self, tmp_path):
        path = tmp_path / "t.champsim.gz"
        save_trace_file(random_trace(22, length=77), path)
        spec = TraceSpec.from_file(path)
        assert spec.length == 77
        assert spec.source.format == "champsim"
        assert spec.build() == load_trace_file(path)

    def test_digest_mismatch_detected(self, tmp_path):
        import repro.workloads.trace as trace_module

        path = tmp_path / "t.gzt"
        save_trace_file(random_trace(23, length=10), path)
        source = TraceSource(
            path=str(path), format="native", digest="0" * 64
        )
        trace_module._VERIFIED_SOURCES.clear()
        with pytest.raises(TraceFormatError, match="changed on disk"):
            list(source.open())

    def test_stream_equals_build(self, tmp_path):
        path = tmp_path / "t.gzt"
        trace = random_trace(24, length=60)
        save_trace_file(trace, path)
        spec = TraceSpec.from_file(path, name="t", length=40)
        assert list(spec.stream()) == trace[:40]
        assert spec.build() == trace[:40]
        assert spec.build(length=10) == trace[:10]

    def test_compressed_payload_sniffs_inner_format(self, tmp_path):
        # A gzip file whose *name* says nothing about the format still
        # resolves via magic bytes and content sniffing.
        trace = random_trace(25, length=15)
        path = tmp_path / "blob"
        raw = tmp_path / "raw.gzt"
        save_trace_file(trace, raw)
        path.write_bytes(gzip.compress(raw.read_bytes()))
        assert sniff_format(path).name == "native"
        assert load_trace_file(path) == trace
