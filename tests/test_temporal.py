"""Unit tests for the temporal-prefetching tier (Triangel + GHB/Markov).

Covers the mechanisms the simulator-level goldens cannot isolate: GHB's
linked-occurrence walk and validity window, Triangel's sampled reuse
confidence, distance-pair Markov training and pollution resistance, the
miss-stream filter both designs share, and the guarantee that
``kernel="compiled"`` silently falls back (bit-identically) for designs
without a compiled twin.
"""

from __future__ import annotations

import pytest

from repro.prefetchers import create_prefetcher
from repro.prefetchers.compiled import compiled_twin
from repro.prefetchers.temporal import GHBMarkovPrefetcher, TriangelPrefetcher
from repro.sim.simulator import simulate_trace
from repro.sim.types import AccessResult
from repro.workloads.trace import TraceSpec

PC = 0x400


def _train_sequence(prefetcher, blocks, pc=PC, start_cycle=0):
    """Train on block numbers; returns all issued request block numbers."""
    issued = []
    cycle = start_cycle
    for block in blocks:
        for request in prefetcher.train(pc, block * 64, cycle):
            issued.append(request.address // 64)
        cycle += 1
    return issued, cycle


# --------------------------------------------------------------------------- #
# GHB / Markov baseline
# --------------------------------------------------------------------------- #
class TestGHBMarkov:
    def test_predicts_followers_at_distance_on_recurrence(self):
        p = GHBMarkovPrefetcher(distance=1, depth=2, degree=4, width=1)
        seq = list(range(0x1000, 0x1000 + 40))
        first, cycle = _train_sequence(p, seq)
        assert first == []  # nothing to correlate on the first pass
        # Second pass: at each re-observed block the followers recorded
        # ``distance+1 .. distance+depth`` slots after its previous
        # occurrence are prefetched — blocks 2 and 3 ahead in the cycle.
        issued = []
        for i, block in enumerate(seq[:20]):
            requests = p.train(PC, block * 64, cycle + i)
            targets = [r.address // 64 for r in requests]
            expected = [seq[(i + 2) % len(seq)], seq[(i + 3) % len(seq)]]
            assert targets == expected
            issued.extend(targets)
        assert issued

    def test_degree_caps_targets(self):
        p = GHBMarkovPrefetcher(distance=0, depth=8, degree=2, width=1)
        seq = list(range(0x2000, 0x2000 + 32))
        _train_sequence(p, seq)
        requests = p.train(PC, seq[0] * 64, 100)
        assert 0 < len(requests) <= 2

    def test_overwritten_history_is_not_followed(self):
        # 8-slot buffer: by the time the first block recurs, its previous
        # occurrence has been overwritten, so the stale index position must
        # be ignored rather than misread.
        p = GHBMarkovPrefetcher(ghb_entries=8, distance=0, depth=2)
        seq = list(range(0x3000, 0x3000 + 20))
        _train_sequence(p, seq)
        assert p.train(PC, seq[0] * 64, 100) == []

    def test_observes_only_the_miss_stream(self):
        p = GHBMarkovPrefetcher()
        hit = AccessResult(latency=5, hit_level="L1D")
        assert p.train(PC, 0x1000 * 64, 0, result=hit) == []
        assert p._head == 0  # an L1 hit leaves no trace in the buffer
        miss = AccessResult(latency=10, hit_level="L2C")
        p.train(PC, 0x1000 * 64, 1, result=miss)
        assert p._head == 1

    def test_reset_clears_state(self):
        p = GHBMarkovPrefetcher()
        _train_sequence(p, list(range(0x4000, 0x4000 + 16)))
        p.reset()
        assert p._head == 0
        assert p.index.get(0x4000) is None

    def test_storage_scales_with_tables(self):
        small = GHBMarkovPrefetcher(ghb_entries=256, index_entries=256)
        large = GHBMarkovPrefetcher(ghb_entries=4096, index_entries=4096)
        assert 0 < small.storage_bits() < large.storage_bits()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GHBMarkovPrefetcher(ghb_entries=0)
        with pytest.raises(ValueError):
            GHBMarkovPrefetcher(degree=0)
        with pytest.raises(ValueError):
            GHBMarkovPrefetcher(distance=-1)


# --------------------------------------------------------------------------- #
# Triangel-style prefetcher
# --------------------------------------------------------------------------- #
def _eager_triangel(**overrides):
    """A Triangel with warmup shortened so unit traces train quickly."""
    params = dict(
        sample_rate=1, train_threshold=1, predict_threshold=1,
        distance=4, degree=2,
    )
    params.update(overrides)
    return TriangelPrefetcher(**params)


class TestTriangel:
    def test_first_pass_is_silent(self):
        p = _eager_triangel()
        issued, _ = _train_sequence(p, list(range(0x5000, 0x5000 + 48)))
        assert issued == []

    def test_predicts_at_distance_after_training(self):
        p = _eager_triangel(distance=4, degree=2)
        seq = list(range(0x6000, 0x6000 + 48))
        # Two passes: pass 2 observes every sampled block again (raising
        # reuse confidence) and trains the distance-4 Markov pairs.
        _, cycle = _train_sequence(p, seq * 2)
        for i, block in enumerate(seq[:16]):
            requests = p.train(PC, block * 64, cycle + i)
            targets = [r.address // 64 for r in requests]
            # One Markov hop lands ``distance`` ahead, the second doubles it.
            expected = [seq[(i + 4) % len(seq)], seq[(i + 8) % len(seq)]]
            assert targets == expected

    def test_sampler_gates_markov_training(self):
        # train_threshold=2 with a sampler that can never observe a reuse:
        # every block is unique, so reuse confidence stays 0 and the Markov
        # table is never trained or queried.
        p = TriangelPrefetcher(
            sample_rate=1, train_threshold=2, predict_threshold=1,
            distance=2, degree=2,
        )
        issued, _ = _train_sequence(p, list(range(0x7000, 0x7000 + 400)))
        assert issued == []
        assert p.markov.get(*p._markov_key(0x7000)) is None

    def test_one_shot_pairs_do_not_predict(self):
        # predict_threshold=2 (the registry default): a correlation seen
        # once must not issue — the pollution-resistance property that
        # keeps Triangel neutral on streams it cannot replay.
        p = _eager_triangel(predict_threshold=2)
        seq = list(range(0x8000, 0x8000 + 48))
        issued, cycle = _train_sequence(p, seq * 2)
        assert issued == []  # pairs trained once, confidence 1 < 2
        issued3, _ = _train_sequence(p, seq, start_cycle=cycle)
        assert issued3  # the recurrence confirmed the pairs

    def test_observes_only_the_miss_stream(self):
        p = _eager_triangel()
        hit = AccessResult(latency=5, hit_level="L1D")
        assert p.train(PC, 0x9000 * 64, 0, result=hit) == []
        assert p.training.get(PC, touch=False) is None

    def test_reset_clears_state(self):
        p = _eager_triangel()
        _train_sequence(p, list(range(0xA000, 0xA000 + 64)) * 2)
        p.reset()
        assert p.training.get(PC, touch=False) is None
        issued, _ = _train_sequence(p, list(range(0xA000, 0xA000 + 8)))
        assert issued == []

    def test_storage_accounts_for_history_depth(self):
        short = TriangelPrefetcher(distance=4)
        long = TriangelPrefetcher(distance=16)
        assert 0 < short.storage_bits() < long.storage_bits()

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TriangelPrefetcher(sample_rate=0)
        with pytest.raises(ValueError):
            TriangelPrefetcher(degree=0)
        with pytest.raises(ValueError):
            TriangelPrefetcher(distance=0)


# --------------------------------------------------------------------------- #
# Compiled-tier behaviour: twins where supported, silent identical fallback
# --------------------------------------------------------------------------- #
class TestCompiledFallback:
    @pytest.fixture(scope="class")
    def temporal_trace(self):
        return TraceSpec(
            name="fallback", suite="test", generator="temporal-pointer",
            seed=5, length=3_500,
            params={"num_nodes": 900, "noise_fraction": 0.02},
        ).build()

    def test_ghb_has_no_compiled_twin(self):
        assert compiled_twin(create_prefetcher("ghb")) is None

    def test_triangel_has_compiled_twin_when_built(self):
        from repro.prefetchers.compiled import compiled_available

        twin = compiled_twin(create_prefetcher("triangel"))
        if compiled_available():
            assert twin is not None and twin.name == "triangel"
        else:
            assert twin is None

    @pytest.mark.parametrize("name", ["triangel", "ghb", "pmp"])
    def test_kernel_compiled_matches_python_bit_identically(
        self, temporal_trace, name
    ):
        reference = simulate_trace(
            temporal_trace, prefetcher=create_prefetcher(name),
            kernel="python",
        )
        compiled = simulate_trace(
            temporal_trace, prefetcher=create_prefetcher(name),
            kernel="compiled",
        )
        ref = reference.to_dict()
        got = compiled.to_dict()
        ref.pop("extra", None)
        got.pop("extra", None)
        assert ref == got
        # The run must have exercised the prefetcher, or the equality
        # proves nothing.
        assert reference.prefetch.issued > 0
