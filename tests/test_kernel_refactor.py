"""Tests pinned to the flattened simulation kernel.

Covers the behaviour-preserving guarantees of the hot-path refactor:
dict-order LRU equivalence, precomputed region geometry, MSHR fast paths,
prefetch-queue edge cases (overflow accounting, drain limits, flush
ordering), replayer memoization and the bound-method eviction listener.
"""

import pytest

from repro.prefetchers.registry import create_prefetcher
from repro.sim.cache import Cache, MSHRFile
from repro.sim.config import CacheConfig, default_system_config
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.multicore import simulate_mix
from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.simulator import SingleCoreSimulator, _TraceReplayer, simulate_trace
from repro.sim.types import (
    AccessType,
    MemoryAccess,
    PrefetchHint,
    PrefetchRequest,
    RegionGeometry,
    block_offset_in_region,
    region_number,
)
from repro.workloads.trace import TraceSpec


def tiny_cache(ways: int = 2, sets: int = 4) -> Cache:
    return Cache(
        CacheConfig(
            name="T", size_bytes=sets * ways * 64, ways=ways, latency=1, mshrs=4
        )
    )


# --------------------------------------------------------------------------- #
# Region geometry
# --------------------------------------------------------------------------- #
class TestRegionGeometry:
    @pytest.mark.parametrize("region_size", [512, 1024, 4096, 16384])
    def test_matches_module_helpers_power_of_two(self, region_size):
        geometry = RegionGeometry(region_size)
        assert geometry.region_shift is not None
        for address in (0, 63, 64, 4095, 4096, 123_456_789, 2**40 + 12345):
            assert geometry.region_of(address) == region_number(address, region_size)
            assert geometry.offset_of(address) == block_offset_in_region(
                address, region_size
            )
            assert geometry.split(address) == (
                region_number(address, region_size),
                block_offset_in_region(address, region_size),
            )

    def test_matches_module_helpers_non_power_of_two(self):
        geometry = RegionGeometry(3 * 4096)
        assert geometry.region_shift is None
        for address in (0, 64, 4096, 999_999):
            assert geometry.region_of(address) == region_number(address, 3 * 4096)
            assert geometry.offset_of(address) == block_offset_in_region(
                address, 3 * 4096
            )

    def test_address_round_trip(self):
        geometry = RegionGeometry(4096)
        address = geometry.address_of(7, 13)
        assert geometry.split(address) == (7, 13)

    def test_region_of_block(self):
        geometry = RegionGeometry(4096)
        # 64 blocks per 4 KB region.
        assert geometry.region_of_block(0) == 0
        assert geometry.region_of_block(63) == 0
        assert geometry.region_of_block(64) == 1

    def test_rejects_sub_block_region(self):
        with pytest.raises(ValueError):
            RegionGeometry(32)


# --------------------------------------------------------------------------- #
# Cache: dict-order LRU and probe()
# --------------------------------------------------------------------------- #
class TestCacheLRUEquivalence:
    def test_probe_equivalent_to_access(self):
        a, b = tiny_cache(), tiny_cache()
        for block in (1, 2, 1, 5, 9):
            a.fill(block)
            b.fill(block)
        for block in (1, 5, 7):
            hit, entry = a.access(block)
            probed = b.probe(block)
            assert hit == (probed is not None)
            if hit:
                assert entry.block == probed.block
        assert (a.hits, a.misses) == (b.hits, b.misses)

    def test_victim_order_interleaved_touches(self):
        # ways=3, single set: exercise fill-refresh, lookup-refresh and
        # untouched residents; the victim must always be the least recently
        # *touched* block.
        cache = tiny_cache(ways=3, sets=1)
        cache.fill(1)
        cache.fill(2)
        cache.fill(3)
        cache.lookup(1, update_lru=True)  # order now 2, 3, 1
        cache.fill(2)                     # refresh: order now 3, 1, 2
        victim = cache.fill(4)
        assert victim.block == 3

    def test_contains_and_probe_miss_do_not_touch(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(1)
        cache.fill(2)
        cache.contains(1)
        cache.probe(99)  # miss: counts, never touches LRU order
        victim = cache.fill(5)
        assert victim.block == 1
        assert cache.misses == 1


# --------------------------------------------------------------------------- #
# MSHR min-ready fast path
# --------------------------------------------------------------------------- #
class TestMSHRMinReady:
    def test_expire_skips_before_min_ready(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(1, ready_cycle=100, is_prefetch=True)
        mshr.allocate(2, ready_cycle=50, is_prefetch=True)
        # The nothing-ready fast path returns a shared empty sequence
        # (an allocation-free tuple); callers only iterate it.
        assert list(mshr.expire(cycle=49)) == []
        done = mshr.expire(cycle=60)
        assert [e.block for e in done] == [2]
        # min_ready recomputed: entry 1 still pending until cycle 100.
        assert list(mshr.expire(cycle=99)) == []
        assert [e.block for e in mshr.expire(cycle=100)] == [1]

    def test_merge_lowers_min_ready(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(1, ready_cycle=100, is_prefetch=True)
        mshr.allocate(1, ready_cycle=30, is_prefetch=False)
        assert [e.block for e in mshr.expire(cycle=30)] == [1]

    def test_remove_keeps_conservative_min(self):
        mshr = MSHRFile(capacity=4)
        mshr.allocate(1, ready_cycle=10, is_prefetch=True)
        mshr.allocate(2, ready_cycle=200, is_prefetch=True)
        mshr.remove(1)
        # Stale-low min only costs an extra scan; correctness holds.
        assert mshr.expire(cycle=50) == []
        assert [e.block for e in mshr.expire(cycle=200)] == [2]


# --------------------------------------------------------------------------- #
# Prefetch queue edge cases (satellite)
# --------------------------------------------------------------------------- #
class TestPrefetchQueueEdgeCases:
    def test_overflow_drop_accounting(self):
        queue = PrefetchQueue(capacity=3)
        accepted = sum(
            queue.push(PrefetchRequest(address=i * 64), cycle=i) for i in range(8)
        )
        assert accepted == 3
        assert queue.dropped_full == 5
        assert queue.enqueued == 3
        assert len(queue) == 3
        # Draining frees capacity; drops do not retroactively enter.
        queue.drain(limit=2)
        assert queue.push(PrefetchRequest(address=999 * 64), cycle=9)
        assert queue.enqueued == 4
        assert queue.dropped_full == 5

    def test_truthiness_tracks_occupancy(self):
        queue = PrefetchQueue(capacity=2)
        assert not queue
        queue.push(PrefetchRequest(address=0), 0)
        assert queue
        queue.drain_all()
        assert not queue

    def test_drain_per_access_limit_in_hierarchy(self):
        config = default_system_config(1)
        hierarchy = CacheHierarchy(config)
        limit = config.l1d.max_prefetch_issue_per_access
        requests = [
            PrefetchRequest(address=(1000 + i) * 64, hint=PrefetchHint.L2)
            for i in range(limit + 3)
        ]
        assert hierarchy.enqueue_prefetches(requests, cycle=0) == len(requests)
        issued = hierarchy.issue_queued_prefetches(cycle=10)
        assert issued == limit
        assert len(hierarchy.prefetch_queue) == 3
        assert hierarchy.issue_queued_prefetches(cycle=11) == 3
        assert not hierarchy.prefetch_queue

    def test_flush_ordering_is_fifo(self):
        config = default_system_config(1)
        hierarchy = CacheHierarchy(config)
        addresses = [(2000 + i) * 64 for i in range(6)]
        hierarchy.enqueue_prefetches(
            [PrefetchRequest(address=a, hint=PrefetchHint.L2) for a in addresses],
            cycle=0,
        )
        hierarchy.flush_prefetches(cycle=100)
        assert not hierarchy.prefetch_queue
        # All six filled the L2 in request order (same set walk as issue).
        for address in addresses:
            assert hierarchy.l2c.contains(address >> 6)
        assert hierarchy.stats.prefetch.filled_l2 == 6

    def test_enqueue_batched_counters(self):
        config = default_system_config(1)
        hierarchy = CacheHierarchy(config)
        capacity = config.l1d.prefetch_queue_size
        requests = [
            PrefetchRequest(address=i * 64) for i in range(capacity + 10)
        ]
        accepted = hierarchy.enqueue_prefetches(requests, cycle=0)
        assert accepted == capacity
        assert hierarchy.stats.prefetch.generated == capacity + 10
        assert hierarchy.stats.prefetch.dropped_queue_full == 10


# --------------------------------------------------------------------------- #
# Replayer memoization (satellite)
# --------------------------------------------------------------------------- #
class TestReplayerMemoization:
    def test_known_total_computed_once(self):
        trace = [MemoryAccess(pc=1, address=i * 64, instr_gap=3) for i in range(10)]
        replayer = _TraceReplayer(trace)
        assert replayer.known_instruction_total == 40
        # Mutating the (historically immutable) source does not re-sum.
        trace.append(MemoryAccess(pc=1, address=0, instr_gap=99))
        assert replayer.known_instruction_total == 40

    def test_count_pass_instructions_memoized_and_matches(self):
        accesses = [MemoryAccess(pc=1, address=i * 64, instr_gap=2) for i in range(5)]

        class Reopenable:
            def __init__(self):
                self.opens = 0

            def __iter__(self):
                self.opens += 1
                return iter(accesses)

        source = Reopenable()
        replayer = _TraceReplayer(source)
        opens_before = source.opens
        total = replayer.count_pass_instructions()
        assert total == sum(a.instr_gap + 1 for a in accesses)
        assert source.opens == opens_before + 1
        assert replayer.count_pass_instructions() == total
        assert source.opens == opens_before + 1  # memoized: no second pass


# --------------------------------------------------------------------------- #
# Eviction-listener registration (satellite)
# --------------------------------------------------------------------------- #
class TestEvictionListenerRegistration:
    def test_listener_is_bound_method(self):
        prefetcher = create_prefetcher("gaze")
        simulator = SingleCoreSimulator(prefetcher=prefetcher)
        listeners = simulator.hierarchy.l1d.eviction_listeners
        assert simulator._notify_prefetcher_eviction in listeners

    def test_no_duplicate_registration(self):
        prefetcher = create_prefetcher("gaze")
        simulator = SingleCoreSimulator(prefetcher=prefetcher)
        listeners = simulator.hierarchy.l1d.eviction_listeners
        count = listeners.count(simulator._notify_prefetcher_eviction)
        assert count == 1
        # Re-wiring the same simulator/prefetcher pair must not stack.
        if simulator._notify_prefetcher_eviction not in listeners:
            listeners.append(simulator._notify_prefetcher_eviction)
        assert listeners.count(simulator._notify_prefetcher_eviction) == 1

    def test_prefetcher_reuse_across_simulators(self):
        # A prefetcher reused across simulators gets exactly one listener
        # per hierarchy, and both deliver evictions to the same prefetcher.
        prefetcher = create_prefetcher("gaze")
        first = SingleCoreSimulator(prefetcher=prefetcher)
        second = SingleCoreSimulator(prefetcher=prefetcher)
        for simulator in (first, second):
            listeners = simulator.hierarchy.l1d.eviction_listeners
            assert listeners.count(simulator._notify_prefetcher_eviction) == 1

    def test_stats_identical_to_fresh_prefetcher_run(self):
        trace = TraceSpec(
            name="t", suite="test", generator="spatial", seed=4, length=1_500
        ).build()
        fresh = simulate_trace(trace, prefetcher=create_prefetcher("gaze"))
        reused_prefetcher = create_prefetcher("gaze")
        simulate_trace(trace, prefetcher=reused_prefetcher)
        reused_prefetcher.reset()
        again = simulate_trace(trace, prefetcher=reused_prefetcher)
        assert again.to_dict() == fresh.to_dict()


# --------------------------------------------------------------------------- #
# Streaming vs. materialized equality on the multi-core driver (satellite)
# --------------------------------------------------------------------------- #
class TestMultiCoreStreamingEquality:
    def test_mix_with_prefetcher_streamed_equals_materialized(self, tmp_path):
        from repro.workloads import formats as trace_formats

        specs = [
            TraceSpec(name="a", suite="t", generator="spatial", seed=1, length=1_200),
            TraceSpec(name="b", suite="t", generator="streaming", seed=2, length=1_200),
        ]
        materialized_traces = [spec.build() for spec in specs]
        handles = []
        for index, trace in enumerate(materialized_traces):
            path = tmp_path / f"core{index}.gzt"
            trace_formats.save_trace_file(iter(trace), str(path))
            handles.append(trace_formats.TraceFile(str(path)))

        factory = lambda: create_prefetcher("gaze")  # noqa: E731
        materialized = simulate_mix(
            materialized_traces,
            prefetcher_factory=factory,
            max_instructions_per_core=3_000,
        )
        streamed = simulate_mix(
            handles, prefetcher_factory=factory, max_instructions_per_core=3_000
        )
        assert streamed.num_cores == materialized.num_cores
        for core in materialized.per_core:
            assert (
                streamed.per_core[core].to_dict()
                == materialized.per_core[core].to_dict()
            )
