"""Unit tests for the cache hierarchy and prefetch routing."""

import pytest

from repro.sim.config import default_system_config
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.types import PrefetchHint, PrefetchRequest


@pytest.fixture()
def hierarchy():
    return CacheHierarchy(default_system_config(1))


ADDRESS = 0x40_0000


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self, hierarchy):
        result = hierarchy.demand_access(ADDRESS, cycle=0)
        assert result.hit_level == "DRAM"
        assert result.latency >= 35  # at least the three cache latencies

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.demand_access(ADDRESS, cycle=0)
        result = hierarchy.demand_access(ADDRESS, cycle=100)
        assert result.hit_level == "L1D"
        assert result.latency == hierarchy.config.l1d.latency

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hierarchy.demand_access(ADDRESS, cycle=0)
        # Evict the block from the L1 by filling its set with conflicting blocks.
        sets = hierarchy.config.l1d.sets
        for way in range(hierarchy.config.l1d.ways + 1):
            conflicting = ADDRESS + (way + 1) * sets * 64
            hierarchy.demand_access(conflicting, cycle=10 + way)
        result = hierarchy.demand_access(ADDRESS, cycle=1000)
        assert result.hit_level in ("L2C", "LLC")
        assert result.latency > hierarchy.config.l1d.latency

    def test_hit_latencies_ordered(self, hierarchy):
        dram = hierarchy.demand_access(ADDRESS, cycle=0).latency
        l1 = hierarchy.demand_access(ADDRESS, cycle=10).latency
        assert l1 < dram

    def test_stats_counters(self, hierarchy):
        hierarchy.demand_access(ADDRESS, cycle=0)
        hierarchy.demand_access(ADDRESS, cycle=10)
        stats = hierarchy.stats
        assert stats.demand_accesses == 2
        assert stats.l1_misses == 1
        assert stats.l1_hits == 1
        assert stats.llc_misses == 1
        assert stats.dram_reads == 1


class TestPrefetchPath:
    def test_prefetch_fill_then_demand_hit(self, hierarchy):
        request = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L1)
        hierarchy.enqueue_prefetches([request], cycle=0)
        hierarchy.issue_queued_prefetches(cycle=0)
        # Let the fill complete, then demand it.
        result = hierarchy.demand_access(ADDRESS, cycle=10_000)
        assert result.hit_level == "L1D"
        assert result.served_by_prefetch
        assert hierarchy.stats.prefetch.useful_l1 == 1
        assert hierarchy.stats.prefetch.covered_llc_misses == 1

    def test_late_prefetch_partial_saving(self, hierarchy):
        request = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L1)
        hierarchy.enqueue_prefetches([request], cycle=0)
        hierarchy.issue_queued_prefetches(cycle=0)
        # Demand arrives before the fill completes.
        result = hierarchy.demand_access(ADDRESS, cycle=5)
        assert result.late_prefetch
        assert hierarchy.stats.prefetch.late == 1
        # The latency must be lower than a fresh DRAM access would have been
        # but at least the L1 hit latency.
        assert result.latency >= hierarchy.config.l1d.latency

    def test_l2_hint_fills_l2_only(self, hierarchy):
        request = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L2)
        hierarchy.enqueue_prefetches([request], cycle=0)
        hierarchy.issue_queued_prefetches(cycle=0)
        block = ADDRESS >> 6
        assert hierarchy.l2c.contains(block)
        assert not hierarchy.l1d.contains(block)
        assert hierarchy.stats.prefetch.filled_l2 == 1

    def test_l2_prefetch_useful_counted_on_demand(self, hierarchy):
        request = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L2)
        hierarchy.enqueue_prefetches([request], cycle=0)
        hierarchy.issue_queued_prefetches(cycle=0)
        result = hierarchy.demand_access(ADDRESS, cycle=100)
        assert result.hit_level == "L2C"
        assert hierarchy.stats.prefetch.useful_l2 == 1

    def test_redundant_prefetch_dropped(self, hierarchy):
        hierarchy.demand_access(ADDRESS, cycle=0)
        request = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L1)
        hierarchy.enqueue_prefetches([request], cycle=10)
        hierarchy.issue_queued_prefetches(cycle=10)
        assert hierarchy.stats.prefetch.redundant == 1
        assert hierarchy.stats.prefetch.issued == 0

    def test_queue_overflow_drops(self, hierarchy):
        capacity = hierarchy.prefetch_queue.capacity
        requests = [
            PrefetchRequest(address=ADDRESS + i * 64) for i in range(capacity + 10)
        ]
        hierarchy.enqueue_prefetches(requests, cycle=0)
        assert hierarchy.stats.prefetch.dropped_queue_full == 10

    def test_drain_respects_limit(self, hierarchy):
        requests = [PrefetchRequest(address=ADDRESS + i * 64) for i in range(10)]
        hierarchy.enqueue_prefetches(requests, cycle=0)
        issued = hierarchy.issue_queued_prefetches(cycle=0)
        assert issued == hierarchy.config.l1d.max_prefetch_issue_per_access

    def test_useless_prefetch_counted_on_eviction(self, hierarchy):
        request = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L2)
        hierarchy.enqueue_prefetches([request], cycle=0)
        hierarchy.issue_queued_prefetches(cycle=0)
        # Evict it from the L2 without ever demanding it.
        sets = hierarchy.config.l2c.sets
        for way in range(hierarchy.config.l2c.ways + 2):
            victim_addr = ADDRESS + (way + 1) * sets * 64
            hierarchy.l2c.fill(victim_addr >> 6)
        assert hierarchy.stats.prefetch.useless >= 1

    def test_flush_completes_inflight(self, hierarchy):
        request = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L1)
        hierarchy.enqueue_prefetches([request], cycle=0)
        hierarchy.flush_prefetches(cycle=0)
        assert hierarchy.l1d.contains(ADDRESS >> 6)

    def test_accuracy_computation(self, hierarchy):
        useful = PrefetchRequest(address=ADDRESS, hint=PrefetchHint.L2)
        useless = PrefetchRequest(address=ADDRESS + 64, hint=PrefetchHint.L2)
        hierarchy.enqueue_prefetches([useful, useless], cycle=0)
        hierarchy.issue_queued_prefetches(cycle=0)
        hierarchy.demand_access(ADDRESS, cycle=50)
        stats = hierarchy.stats.prefetch
        assert stats.filled == 2
        assert stats.useful == 1
        assert stats.accuracy == pytest.approx(0.5)


class TestSharedLLC:
    def test_two_hierarchies_share_llc(self):
        config = default_system_config(2)
        from repro.sim.cache import Cache
        from repro.sim.dram import DRAMModel

        shared_llc = Cache(config.llc)
        shared_dram = DRAMModel(config.dram)
        first = CacheHierarchy(config, shared_llc=shared_llc, shared_dram=shared_dram)
        second = CacheHierarchy(config, shared_llc=shared_llc, shared_dram=shared_dram)
        first.demand_access(ADDRESS, cycle=0)
        result = second.demand_access(ADDRESS, cycle=100)
        # The second core finds the block in the shared LLC.
        assert result.hit_level == "LLC"
