"""Tests for the table primitives and the spatial-common front end."""

import pytest

from repro.prefetchers.spatial_common import (
    RegionTracker,
    footprint_density,
    footprint_population,
    footprint_to_offsets,
    offsets_to_footprint,
    pattern_to_requests,
    rotate_footprint,
)
from repro.prefetchers.tables import LRUTable, SaturatingCounter, SetAssociativeTable
from repro.sim.types import PrefetchHint


class TestLRUTable:
    def test_put_get(self):
        table = LRUTable(capacity=2)
        table.put("a", 1)
        assert table.get("a") == 1
        assert table.get("missing") is None

    def test_lru_eviction_order(self):
        table = LRUTable(capacity=2)
        table.put("a", 1)
        table.put("b", 2)
        table.get("a")
        evicted = table.put("c", 3)
        assert evicted == ("b", 2)
        assert table.evictions == 1

    def test_get_without_touch(self):
        table = LRUTable(capacity=2)
        table.put("a", 1)
        table.put("b", 2)
        table.get("a", touch=False)
        evicted = table.put("c", 3)
        assert evicted[0] == "a"

    def test_update_existing_key_no_eviction(self):
        table = LRUTable(capacity=1)
        table.put("a", 1)
        assert table.put("a", 2) is None
        assert table.get("a") == 2

    def test_pop_and_lru_key(self):
        table = LRUTable(capacity=3)
        table.put("a", 1)
        table.put("b", 2)
        assert table.lru_key() == "a"
        assert table.pop("a") == 1
        assert table.pop("a") is None

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUTable(capacity=0)

    def test_iteration_order_lru_to_mru(self):
        table = LRUTable(capacity=3)
        for key in "abc":
            table.put(key, key)
        table.get("a")
        assert list(table.keys()) == ["b", "c", "a"]


class TestSetAssociativeTable:
    def test_capacity(self):
        table = SetAssociativeTable(sets=4, ways=2)
        assert table.capacity == 8

    def test_per_set_lru(self):
        table = SetAssociativeTable(sets=2, ways=2)
        table.put(0, 1, "a")
        table.put(0, 2, "b")
        table.get(0, 1)
        evicted = table.put(0, 3, "c")
        assert evicted == (2, "b")
        # The other set is unaffected.
        table.put(1, 9, "z")
        assert table.get(1, 9) == "z"

    def test_set_wraparound(self):
        table = SetAssociativeTable(sets=4, ways=1)
        table.put(5, 1, "x")  # maps to set 1
        assert table.get(1, 1) == "x"

    def test_entries_in_set(self):
        table = SetAssociativeTable(sets=2, ways=2)
        table.put(0, 1, "a")
        table.put(0, 2, "b")
        assert [tag for tag, _ in table.entries_in_set(0)] == [1, 2]

    def test_items_iteration(self):
        table = SetAssociativeTable(sets=2, ways=2)
        table.put(0, 1, "a")
        table.put(1, 2, "b")
        assert len(list(table.items())) == 2

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeTable(sets=0, ways=1)


class TestSaturatingCounter:
    def test_saturation(self):
        counter = SaturatingCounter(bits=2)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3
        assert counter.is_saturated

    def test_floor(self):
        counter = SaturatingCounter(bits=2, initial=1)
        counter.decrement(5)
        assert counter.value == 0

    def test_halve(self):
        counter = SaturatingCounter(bits=3, initial=7)
        counter.halve()
        assert counter.value == 3


class TestFootprintHelpers:
    def test_round_trip(self):
        offsets = [0, 5, 17, 63]
        footprint = offsets_to_footprint(offsets)
        assert footprint_to_offsets(footprint) == offsets
        assert footprint_population(footprint) == 4

    def test_density(self):
        assert footprint_density(offsets_to_footprint(range(32))) == pytest.approx(0.5)
        assert footprint_density(0) == 0.0

    def test_rotate_round_trip(self):
        footprint = offsets_to_footprint([0, 3, 10])
        rotated = rotate_footprint(footprint, 5)
        assert rotate_footprint(rotated, -5) == footprint

    def test_rotate_moves_anchor(self):
        footprint = offsets_to_footprint([7, 9])
        anchored = rotate_footprint(footprint, -7)
        assert footprint_to_offsets(anchored) == [0, 2]

    def test_rotate_wraps(self):
        footprint = offsets_to_footprint([63])
        assert footprint_to_offsets(rotate_footprint(footprint, 1)) == [0]

    def test_pattern_to_requests(self):
        footprint = offsets_to_footprint([1, 2, 3])
        requests = pattern_to_requests(
            region=10, footprint=footprint, region_size=4096,
            hint=PrefetchHint.L2, exclude_offsets=(2,),
        )
        offsets = [(r.address % 4096) // 64 for r in requests]
        assert offsets == [1, 3]
        assert all(r.hint is PrefetchHint.L2 for r in requests)

    def test_pattern_to_requests_limit(self):
        footprint = offsets_to_footprint(range(20))
        requests = pattern_to_requests(10, footprint, 4096, limit=5)
        assert len(requests) == 5


class TestRegionTracker:
    def test_trigger_then_activation(self):
        tracker = RegionTracker()
        trigger, activation, _, _ = tracker.observe(pc=1, address=4096 * 9 + 64 * 5)
        assert trigger is not None and activation is None
        trigger, activation, _, entry = tracker.observe(pc=2, address=4096 * 9 + 64 * 8)
        assert trigger is None and activation is not None
        assert activation.trigger_offset == 5
        assert activation.second_offset == 8
        assert activation.trigger_pc == 1
        assert entry.footprint == (1 << 5) | (1 << 8)

    def test_one_bit_regions_filtered(self):
        tracker = RegionTracker()
        tracker.observe(1, 4096 * 9)
        trigger, activation, _, _ = tracker.observe(1, 4096 * 9 + 8)  # same block
        assert trigger is None and activation is None

    def test_lru_deactivation_event(self):
        tracker = RegionTracker(accumulation_entries=1)
        tracker.observe(1, 0)
        tracker.observe(1, 64)
        tracker.observe(1, 4096)
        _, _, deactivations, _ = tracker.observe(1, 4096 + 64)
        assert len(deactivations) == 1
        assert deactivations[0].region == 0

    def test_block_eviction_deactivates(self):
        tracker = RegionTracker()
        tracker.observe(1, 0)
        tracker.observe(1, 64)
        event = tracker.on_block_eviction(block=0)
        assert event is not None
        assert event.footprint == 0b11
        assert tracker.on_block_eviction(block=0) is None

    def test_drain_returns_all(self):
        tracker = RegionTracker()
        tracker.observe(1, 0)
        tracker.observe(1, 64)
        tracker.observe(1, 8192)
        tracker.observe(1, 8192 + 64)
        assert len(tracker.drain()) == 2
        assert len(tracker.accumulation_table) == 0

    def test_custom_region_size(self):
        tracker = RegionTracker(region_size=2048)
        assert tracker.blocks_per_region == 32
        _, activation, _, _ = (None, None, None, None)
        tracker.observe(1, 2048 * 3 + 64 * 2)
        _, activation, _, _ = tracker.observe(1, 2048 * 3 + 64 * 9)
        assert activation.trigger_offset == 2
        assert activation.second_offset == 9
