"""Integration tests asserting the paper's qualitative claims (shape checks).

These are the claims the reproduction is expected to preserve: who wins,
in which scenario, and in roughly which direction -- not absolute numbers
(our substrate is a scaled-down Python simulator, not the authors' ChampSim
testbed).  Each test runs a small but representative workload.
"""

import pytest

from repro.prefetchers import create_prefetcher
from repro.sim import default_system_config, simulate_mix, simulate_trace
from repro.workloads import make_trace


def run(trace, name):
    if name is None:
        return simulate_trace(trace, prefetcher=None)
    return simulate_trace(trace, prefetcher=create_prefetcher(name))


@pytest.fixture(scope="module")
def spatial():
    return make_trace("spatial", seed=17, length=12_000)


@pytest.fixture(scope="module")
def cloud():
    return make_trace("cloud", seed=18, length=12_000)


@pytest.fixture(scope="module")
def streaming():
    return make_trace("streaming", seed=19, length=12_000)


@pytest.fixture(scope="module")
def mixed():
    return make_trace("mixed", seed=20, length=12_000)


class TestCharacterizationClaims:
    """§II-B / Fig. 1-2: two-access characterization beats trigger-only."""

    def test_gaze_beats_offset_only_on_spatial(self, spatial):
        base = run(spatial, None)
        gaze = run(spatial, "gaze")
        offset = run(spatial, "offset")
        assert gaze.speedup(base) > offset.speedup(base)

    def test_gaze_more_accurate_than_pmp_on_spatial(self, spatial):
        gaze = run(spatial, "gaze")
        pmp = run(spatial, "pmp")
        assert gaze.prefetch.accuracy > pmp.prefetch.accuracy + 0.1

    def test_gaze_matches_finegrained_without_their_storage(self, spatial):
        base = run(spatial, None)
        gaze = run(spatial, "gaze")
        bingo = run(spatial, "bingo")
        assert gaze.speedup(base) > 0.9 * bingo.speedup(base)
        assert (create_prefetcher("bingo").storage_kib()
                > 20 * create_prefetcher("gaze").storage_kib())

    def test_coarse_schemes_degrade_on_cloud(self, cloud):
        """Fig. 1/6: PMP and Offset lose performance on scale-out workloads."""
        base = run(cloud, None)
        assert run(cloud, "pmp").speedup(base) < 1.0
        assert run(cloud, "offset").speedup(base) < 1.0

    def test_gaze_improves_cloud(self, cloud):
        base = run(cloud, None)
        assert run(cloud, "gaze").speedup(base) > 1.05

    def test_vberti_accurate_but_low_coverage_on_cloud(self, cloud):
        """§IV-B1: vBerti's accuracy is high on cloud but it covers few misses."""
        base = run(cloud, None)
        vberti = run(cloud, "vberti")
        gaze = run(cloud, "gaze")
        assert vberti.prefetch.accuracy >= 0.5
        assert vberti.coverage(base) < gaze.coverage(base)


class TestInitialAccessTradeoff:
    """Fig. 4: more initial accesses -> higher accuracy, lower coverage."""

    def test_accuracy_rises_with_n(self, spatial):
        acc = {}
        for n in (1, 2, 4):
            stats = run(spatial, f"gaze-n{n}")
            acc[n] = stats.prefetch.accuracy
        assert acc[2] >= acc[1]
        assert acc[4] >= acc[2] - 0.05

    def test_coverage_falls_with_large_n(self, spatial):
        base = run(spatial, None)
        cov2 = run(spatial, "gaze-n2").coverage(base)
        cov4 = run(spatial, "gaze-n4").coverage(base)
        assert cov4 <= cov2 + 0.02


class TestStreamingClaims:
    """§III-C / Fig. 10: the dedicated streaming module matters when dense
    streams are interleaved with partially-touched regions."""

    def test_gaze_handles_pure_streaming(self, streaming):
        base = run(streaming, None)
        assert run(streaming, "gaze").speedup(base) > 1.05

    def test_sm4ss_faster_than_pht4ss_on_mixed(self, mixed):
        """Fig. 10 (computing phase): the finer-grained streaming module
        performs better than naively replaying dense patterns via the PHT."""
        base = run(mixed, None)
        sm = run(mixed, "sm4ss")
        pht = run(mixed, "pht4ss")
        assert sm.speedup(base) >= pht.speedup(base)

    def test_full_gaze_covers_more_than_streaming_only(self, mixed):
        base = run(mixed, None)
        assert run(mixed, "gaze").coverage(base) >= run(mixed, "sm4ss").coverage(base)

    def test_gaze_positive_on_mixed(self, mixed):
        base = run(mixed, None)
        assert run(mixed, "gaze").speedup(base) > 1.0


class TestIrregularSafety:
    """§IV-B3: Gaze degrades only mildly on irregular workloads while PMP
    collapses."""

    def test_gaze_safe_on_pointer_chase(self):
        trace = make_trace("pointer-chase", seed=23, length=10_000)
        base = run(trace, None)
        gaze = run(trace, "gaze")
        pmp = run(trace, "pmp")
        assert gaze.speedup(base) > 0.93
        assert pmp.speedup(base) < gaze.speedup(base)

    def test_max_degradation_ordering(self, cloud):
        base = run(cloud, None)
        gaze_drop = 1.0 - run(cloud, "gaze").speedup(base)
        pmp_drop = 1.0 - run(cloud, "pmp").speedup(base)
        assert pmp_drop > gaze_drop


class TestMultiCoreClaims:
    """Fig. 14: Gaze degrades more gracefully than aggressive coarse designs."""

    @pytest.fixture(scope="class")
    def four_core_results(self):
        traces = [
            make_trace("spatial", seed=31, length=5_000),
            make_trace("cloud", seed=32, length=5_000),
            make_trace("streaming", seed=33, length=5_000),
            make_trace("graph", seed=34, length=5_000),
        ]
        config = default_system_config(4)
        baseline = simulate_mix(traces, None, config, 12_000)
        out = {}
        for name in ("gaze", "pmp", "vberti"):
            result = simulate_mix(
                traces, lambda n=name: create_prefetcher(n), config, 12_000
            )
            out[name] = result.geomean_speedup(baseline)
        return out

    def test_gaze_best_in_four_core_mix(self, four_core_results):
        assert four_core_results["gaze"] >= four_core_results["pmp"]
        assert four_core_results["gaze"] >= four_core_results["vberti"] - 0.02

    def test_pmp_hurt_by_contention(self, four_core_results):
        assert four_core_results["pmp"] < 1.05


class TestStorageClaims:
    """Table I / §III-E."""

    def test_gaze_storage_4_46_kb(self):
        assert create_prefetcher("gaze").storage_kib() == pytest.approx(4.46, abs=0.02)

    def test_gaze_vs_bingo_storage_ratio(self):
        ratio = (create_prefetcher("bingo").storage_kib()
                 / create_prefetcher("gaze").storage_kib())
        assert ratio > 20

    def test_gaze_smaller_than_pmp(self):
        assert (create_prefetcher("gaze").storage_kib()
                < create_prefetcher("pmp").storage_kib())
