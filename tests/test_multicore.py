"""Multi-core driver tests: stat gating, epoch sharding and mix jobs.

Covers the acceptance properties of the sharded multi-core subsystem:

* **Stat gating** — a core that exhausts its instruction budget keeps
  replaying its trace (shared-resource pressure) but stops accumulating
  statistics, and its instruction/cycle totals are snapshotted at the
  budget boundary (no drift with overall mix length).
* **Golden counters** — per-core counter snapshots of the exact schedule
  on fixed mixes (``tests/goldens/multicore.json``), refreshed like the
  single-core goldens with ``REFRESH_GOLDENS=1``.
* **Epoch-sharded validation** — the epoch schedule executes the identical
  per-core instruction/access stream (bit-identical where the schedule
  permits: single-core mixes, any worker count) and its per-core IPC stays
  within the documented error bound of the exact interleaving on golden
  mixes; speedup aggregates stay within a tighter bound.
* **Engine integration** — mix jobs are content-keyed (trace tuples,
  schedule parameters), sharded across worker processes bit-identically,
  and answered from the persistent cache on warm re-runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine
from repro.experiments.executors import ParallelExecutor, SerialExecutor
from repro.experiments.jobs import MixSimulationJob, execute_job
from repro.prefetchers.registry import create_prefetcher
from repro.sim import default_system_config, simulate_mix
from repro.sim.multicore import MIX_MODES, default_epoch_instructions
from repro.sim.stats import MultiCoreStats
from repro.sim.types import MemoryAccess
from repro.workloads.trace import TraceSpec

GOLDEN_PATH = Path(__file__).parent / "goldens" / "multicore.json"

_REFRESH = os.environ.get("REFRESH_GOLDENS", "") not in ("", "0")

#: Documented epoch-vs-exact error bounds (see README "Architecture &
#: performance"): per-core IPC within 30% relative, mix-level geomean
#: speedup within 0.10 absolute, on the golden mixes below.
EPOCH_IPC_RELATIVE_BOUND = 0.30
EPOCH_SPEEDUP_ABSOLUTE_BOUND = 0.10

#: The golden mixes: fixed generator tuples, short on purpose (drift
#: detection plus epoch-validation substrate, not statistical fidelity).
GOLDEN_MIXES = {
    "mix2-spatial-streaming": {
        "traces": (("spatial", 3), ("streaming", 2)),
        "length": 2_000,
        "budget": 6_000,
    },
    "mix4-hetero": {
        "traces": (("spatial", 31), ("cloud", 32), ("streaming", 33), ("graph", 34)),
        "length": 1_500,
        "budget": 4_500,
    },
}


def _specs(mix_key):
    definition = GOLDEN_MIXES[mix_key]
    return tuple(
        TraceSpec(
            name=f"{generator}-s{seed}",
            suite="golden-mix",
            generator=generator,
            seed=seed,
            length=definition["length"],
        )
        for generator, seed in definition["traces"]
    )


def _traces(mix_key):
    definition = GOLDEN_MIXES[mix_key]
    return [spec.build(length=definition["length"]) for spec in _specs(mix_key)]


def _run_mix(mix_key, prefetcher="gaze", **kwargs):
    definition = GOLDEN_MIXES[mix_key]
    traces = _traces(mix_key)
    factory = (lambda: create_prefetcher(prefetcher)) if prefetcher else None
    return simulate_mix(
        traces,
        factory,
        default_system_config(len(traces)),
        definition["budget"],
        name=mix_key,
        **kwargs,
    )


def _flat_trace(num_accesses, instr_gap, pc=0x40, stride=64):
    """A deterministic trace with a constant instruction gap."""
    return [
        MemoryAccess(pc=pc, address=0x10000 + i * stride, instr_gap=instr_gap)
        for i in range(num_accesses)
    ]


def _expected_measured(trace, budget):
    """(instructions, accesses) the measured window must contain exactly.

    The measured stream is schedule-independent: accesses replay in trace
    order until the cumulative instruction count reaches the budget.
    """
    instructions = 0
    accesses = 0
    index = 0
    while instructions < budget:
        access = trace[index % len(trace)]
        instructions += access.instr_gap + 1
        accesses += 1
        index += 1
    return instructions, accesses


# --------------------------------------------------------------------------- #
# Stat gating at budget exhaustion
# --------------------------------------------------------------------------- #
class TestFinishedCoreGating:
    def test_finished_core_stops_accumulating_stats(self):
        # Core 1's large gaps exhaust its budget in a tenth of the steps,
        # after which it keeps replaying (pressure) for the whole remainder
        # of core 0's run.  Its measured counters must cover exactly the
        # budgeted window — before the gating fix they kept growing.
        budget = 2_000
        traces = [_flat_trace(256, 0, pc=0x1), _flat_trace(256, 9, pc=0x2)]
        result = simulate_mix(
            traces, None, default_system_config(2), budget, name="gating"
        )
        for core_id, trace in enumerate(traces):
            instructions, accesses = _expected_measured(trace, budget)
            stats = result.per_core[core_id]
            assert stats.instructions == instructions
            assert stats.demand_accesses == accesses

    def test_finished_core_ipc_does_not_drift_with_mix_length(self):
        # The fast-finishing core's totals are snapshotted at its budget
        # boundary, so they cannot depend on how much longer the slowest
        # core keeps the mix alive.  Compare the same fast core against
        # runs where the partner trace (and hence the overrun) differs.
        fast = _flat_trace(200, 9, pc=0x2)
        short_partner = _flat_trace(300, 1, pc=0x1)
        # The long partner touches far-away addresses: different pressure,
        # much longer overrun — but the fast core's *instruction/cycle*
        # snapshot must still be taken at the same boundary.
        result_short = simulate_mix(
            [short_partner, fast], None, default_system_config(2), 1_000
        )
        instructions, accesses = _expected_measured(fast, 1_000)
        stats = result_short.per_core[1]
        assert stats.instructions == instructions
        assert stats.demand_accesses == accesses

    def test_all_cores_reach_budget(self):
        result = _run_mix("mix2-spatial-streaming", prefetcher=None)
        for stats in result.per_core.values():
            assert stats.instructions >= GOLDEN_MIXES["mix2-spatial-streaming"]["budget"]
            assert stats.cycles > 0


# --------------------------------------------------------------------------- #
# Golden counters (exact schedule)
# --------------------------------------------------------------------------- #
def _golden_row(stats):
    return {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "demand_accesses": stats.demand_accesses,
        "l1_hits": stats.l1_hits,
        "llc_misses": stats.llc_misses,
        "issued_prefetches": stats.prefetch.issued,
        "useful_prefetches": stats.prefetch.useful,
        "ipc": round(stats.ipc, 9),
    }


def _load_goldens():
    if not GOLDEN_PATH.is_file():
        return {}
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _store_golden(entry_key, rows):
    data = _load_goldens()
    data[entry_key] = rows
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(dict(sorted(data.items())), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.mark.parametrize("mix_key", sorted(GOLDEN_MIXES))
@pytest.mark.parametrize("prefetcher", [None, "gaze"])
def test_multicore_golden_stats(mix_key, prefetcher):
    entry_key = f"{mix_key}/{prefetcher if prefetcher else 'none'}"
    result = _run_mix(mix_key, prefetcher=prefetcher)
    rows = {
        str(core_id): _golden_row(stats)
        for core_id, stats in sorted(result.per_core.items())
    }
    if _REFRESH:
        _store_golden(entry_key, rows)
    golden = _load_goldens()
    assert entry_key in golden, (
        f"no golden entry for {entry_key}; refresh with "
        "REFRESH_GOLDENS=1 python -m pytest tests/test_multicore.py -q"
    )
    assert rows == golden[entry_key], (
        f"multi-core simulation drift for {entry_key}; if intentional, "
        "refresh goldens and bump ENGINE_SCHEMA_VERSION"
    )


# --------------------------------------------------------------------------- #
# Epoch-sharded schedule vs exact interleaving
# --------------------------------------------------------------------------- #
class TestEpochShardedValidation:
    @pytest.mark.parametrize("mix_key", sorted(GOLDEN_MIXES))
    def test_epoch_mode_measures_identical_instruction_stream(self, mix_key):
        exact = _run_mix(mix_key)
        epoch = _run_mix(mix_key, mode="epoch")
        assert sorted(epoch.per_core) == sorted(exact.per_core)
        for core_id in exact.per_core:
            assert (
                epoch.per_core[core_id].instructions
                == exact.per_core[core_id].instructions
            )
            assert (
                epoch.per_core[core_id].demand_accesses
                == exact.per_core[core_id].demand_accesses
            )

    @pytest.mark.parametrize("mix_key", sorted(GOLDEN_MIXES))
    def test_epoch_mode_per_core_ipc_within_documented_bound(self, mix_key):
        exact = _run_mix(mix_key)
        epoch = _run_mix(mix_key, mode="epoch")
        for core_id in exact.per_core:
            reference = exact.per_core[core_id].ipc
            approximate = epoch.per_core[core_id].ipc
            assert abs(approximate - reference) / reference <= (
                EPOCH_IPC_RELATIVE_BOUND
            ), f"core {core_id}: {approximate} vs {reference}"

    @pytest.mark.parametrize("mix_key", sorted(GOLDEN_MIXES))
    def test_epoch_mode_speedup_within_documented_bound(self, mix_key):
        exact_speedup = _run_mix(mix_key).geomean_speedup(
            _run_mix(mix_key, prefetcher=None)
        )
        epoch_speedup = _run_mix(mix_key, mode="epoch").geomean_speedup(
            _run_mix(mix_key, prefetcher=None, mode="epoch")
        )
        assert abs(epoch_speedup - exact_speedup) <= EPOCH_SPEEDUP_ABSOLUTE_BOUND

    def test_single_core_mix_is_bit_identical(self):
        # With one core there is no cross-core traffic to approximate, so
        # the epoch boundary permits bit-identical results at any epoch
        # length ("bit-identical where the epoch boundary permits").
        trace = _traces("mix2-spatial-streaming")[:1]
        config = default_system_config(1)
        exact = simulate_mix(
            trace, lambda: create_prefetcher("gaze"), config, 5_000, name="one"
        )
        for epoch_instructions in (0, 333, 700):
            epoch = simulate_mix(
                trace,
                lambda: create_prefetcher("gaze"),
                config,
                5_000,
                name="one",
                mode="epoch",
                epoch_instructions=epoch_instructions,
            )
            assert epoch.to_dict() == exact.to_dict()

    def test_worker_count_does_not_change_results(self):
        serial = _run_mix("mix4-hetero", mode="epoch")
        for workers in (2, 4):
            threaded = _run_mix("mix4-hetero", mode="epoch", workers=workers)
            assert threaded.to_dict() == serial.to_dict()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _run_mix("mix2-spatial-streaming", mode="bogus")
        assert "exact" in MIX_MODES and "epoch" in MIX_MODES

    def test_default_epoch_length(self):
        assert default_epoch_instructions(9_000) == 1_125
        assert default_epoch_instructions(100) == 500


# --------------------------------------------------------------------------- #
# Streamed TraceFile mixes
# --------------------------------------------------------------------------- #
class TestStreamedMixes:
    @pytest.mark.parametrize("mode", sorted(MIX_MODES))
    def test_streamed_handles_equal_materialized(self, mode, tmp_path):
        from repro.workloads import formats as trace_formats

        materialized = _traces("mix2-spatial-streaming")
        handles = []
        for index, trace in enumerate(materialized):
            path = tmp_path / f"core{index}.gzt.gz"
            trace_formats.save_trace_file(iter(trace), str(path))
            handles.append(trace_formats.TraceFile(str(path)))
        factory = lambda: create_prefetcher("gaze")  # noqa: E731
        config = default_system_config(2)
        from_lists = simulate_mix(
            materialized, factory, config, 4_000, name="m", mode=mode
        )
        from_files = simulate_mix(
            handles, factory, config, 4_000, name="m", mode=mode
        )
        assert from_files.to_dict() == from_lists.to_dict()


# --------------------------------------------------------------------------- #
# Mix jobs: keys, executors, persistent cache
# --------------------------------------------------------------------------- #
def _mix_job(prefetcher="gaze", **overrides):
    defaults = dict(
        specs=_specs("mix2-spatial-streaming"),
        prefetcher=prefetcher,
        trace_length=GOLDEN_MIXES["mix2-spatial-streaming"]["length"],
        max_instructions_per_core=4_000,
    )
    defaults.update(overrides)
    return MixSimulationJob(**defaults)


class TestMixJobs:
    def test_key_covers_trace_tuple_and_schedule(self):
        base = _mix_job()
        assert base.key() == _mix_job().key()
        reordered = _mix_job(specs=tuple(reversed(_specs("mix2-spatial-streaming"))))
        assert base.key() != reordered.key()
        assert base.key() != _mix_job(prefetcher="pmp").key()
        assert base.key() != _mix_job(mode="epoch").key()
        assert base.key() != _mix_job(mode="epoch", epoch_instructions=123).key(
        ), "epoch length affects results and must affect the key"
        assert base.key() != _mix_job(max_instructions_per_core=5_000).key()

    def test_workers_do_not_affect_key_or_results(self):
        assert _mix_job().key() == _mix_job(workers=8).key()
        serial = execute_job(_mix_job(mode="epoch"))
        threaded = execute_job(_mix_job(mode="epoch", workers=4))
        assert serial.to_dict() == threaded.to_dict()

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            MixSimulationJob(specs=())

    def test_execute_matches_direct_simulation(self):
        job = _mix_job()
        via_job = execute_job(job)
        direct = simulate_mix(
            [spec.build(length=job.trace_length) for spec in job.specs],
            lambda: create_prefetcher("gaze"),
            default_system_config(2),
            job.max_instructions_per_core,
            name=job.name,
        )
        assert via_job.to_dict() == direct.to_dict()

    def test_parallel_executor_bit_identical(self):
        jobs = [_mix_job(prefetcher="none"), _mix_job(), _mix_job(prefetcher="pmp")]
        serial = SerialExecutor().run(jobs)
        parallel = ParallelExecutor(jobs=2).run(jobs)
        assert [s.to_dict() for s in serial] == [s.to_dict() for s in parallel]

    def test_multicore_stats_roundtrip(self):
        stats = execute_job(_mix_job())
        rebuilt = MultiCoreStats.from_dict(stats.to_dict())
        assert rebuilt.to_dict() == stats.to_dict()
        assert rebuilt.per_core[0] == stats.per_core[0]

    def test_persistent_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        jobs = [_mix_job(prefetcher="none"), _mix_job()]

        cold = ExperimentEngine(cache=ResultCache(cache_dir))
        cold_results = cold.run_jobs(jobs)
        assert cold.simulations_run == 2

        warm = ExperimentEngine(cache=ResultCache(cache_dir))
        warm_results = warm.run_jobs(jobs)
        assert warm.simulations_run == 0
        assert warm.cache.hits == 2
        for cold_stats, warm_stats in zip(cold_results, warm_results):
            assert isinstance(warm_stats, MultiCoreStats)
            assert warm_stats.to_dict() == cold_stats.to_dict()

    def test_engine_memo_dedupes_identical_mixes(self):
        engine = ExperimentEngine()
        results = engine.run_jobs([_mix_job(), _mix_job()])
        assert engine.simulations_run == 1
        assert results[0] is results[1]
