"""Unit tests for Gaze's hardware structures (FT, AT, PHT, DPCT/DC, PB)."""

import pytest

from repro.core.accumulation_table import GazeAccumulationTable, GazeRegionEntry
from repro.core.dense_tracker import (
    DenseCounter,
    DensePCTable,
    StreamingConfidence,
    StreamingModule,
    hash_pc,
)
from repro.core.filter_table import GazeFilterTable
from repro.core.pattern_history import GazePatternHistoryTable
from repro.core.prefetch_buffer import BlockPrefetchState, GazePrefetchBuffer
from repro.sim.types import PrefetchHint


class TestFilterTable:
    def test_insert_lookup_remove(self):
        ft = GazeFilterTable(entries=4)
        ft.insert(region=10, trigger_pc=0x400, trigger_offset=7)
        entry = ft.lookup(10)
        assert entry.trigger_pc == 0x400
        assert entry.trigger_offset == 7
        assert ft.remove(10).region == 10
        assert ft.lookup(10) is None

    def test_capacity_lru(self):
        ft = GazeFilterTable(entries=2)
        ft.insert(1, 0, 0)
        ft.insert(2, 0, 0)
        ft.lookup(1)
        ft.insert(3, 0, 0)
        assert 1 in ft
        assert 2 not in ft

    def test_storage_matches_table1(self):
        ft = GazeFilterTable()
        assert ft.storage_bits() / 8 == 456

    def test_reset(self):
        ft = GazeFilterTable()
        ft.insert(1, 2, 3)
        ft.reset()
        assert len(ft) == 0


class TestAccumulationTable:
    def test_insert_records_first_two_offsets(self):
        at = GazeAccumulationTable(entries=4)
        entry, evicted = at.insert(5, trigger_pc=1, trigger_offset=3, second_offset=9)
        assert evicted is None
        assert entry.footprint == (1 << 3) | (1 << 9)
        assert entry.access_count == 2
        assert entry.last_offset == 9
        assert entry.penultimate_offset == 3

    def test_eviction_returns_victim(self):
        at = GazeAccumulationTable(entries=1)
        at.insert(1, 0, 0, 1)
        _, evicted = at.insert(2, 0, 0, 1)
        assert evicted is not None
        assert evicted.region == 1

    def test_record_duplicate_offset_keeps_stride_state(self):
        entry = GazeRegionEntry(region=0, trigger_pc=0, trigger_offset=0, second_offset=1)
        entry.record(0)
        entry.record(1)
        entry.record(1)  # repeated block
        assert entry.last_offset == 1
        assert entry.penultimate_offset == 0

    def test_strides_with(self):
        entry = GazeRegionEntry(region=0, trigger_pc=0, trigger_offset=0, second_offset=1)
        entry.record(0)
        entry.record(1)
        assert entry.strides_with(2) == (1, 1)
        assert entry.strides_with(5) == (1, 4)
        assert entry.strides_with(1) is None  # repeated block

    def test_strides_need_two_prior_offsets(self):
        entry = GazeRegionEntry(region=0, trigger_pc=0, trigger_offset=0, second_offset=1)
        entry.record(0)
        assert entry.strides_with(3) is None

    def test_fully_dense(self):
        entry = GazeRegionEntry(region=0, trigger_pc=0, trigger_offset=0, second_offset=1)
        for offset in range(64):
            entry.record(offset)
        assert entry.is_fully_dense(64)
        assert not entry.is_fully_dense(128)

    def test_storage_matches_table1(self):
        at = GazeAccumulationTable()
        assert at.storage_bits() / 8 == 1128

    def test_drain(self):
        at = GazeAccumulationTable(entries=4)
        at.insert(1, 0, 0, 1)
        at.insert(2, 0, 2, 3)
        drained = at.drain()
        assert len(drained) == 2
        assert len(at) == 0


class TestPatternHistoryTable:
    def test_strict_match_required(self):
        pht = GazePatternHistoryTable()
        pht.learn(trigger_offset=4, second_offset=9, footprint=0b1011)
        assert pht.predict(4, 9) == 0b1011
        assert pht.predict(4, 10) is None     # same index, wrong tag
        assert pht.predict(9, 4) is None      # swapped order must not match
        assert pht.predict(5, 9) is None      # wrong index

    def test_learn_overwrites(self):
        pht = GazePatternHistoryTable()
        pht.learn(1, 2, 0b1)
        pht.learn(1, 2, 0b1000)
        assert pht.predict(1, 2) == 0b1000

    def test_associativity_eviction(self):
        pht = GazePatternHistoryTable(entries=256, ways=4)
        # Five different tags mapping to the same set (index = trigger % 64).
        for tag in range(5):
            pht.learn(trigger_offset=0, second_offset=tag, footprint=1 << tag)
        # The least recently used tag (0) must have been evicted.
        assert pht.predict(0, 0) is None
        assert pht.predict(0, 4) == 1 << 4

    def test_hit_rate_tracking(self):
        pht = GazePatternHistoryTable()
        pht.learn(0, 1, 0b11)
        pht.predict(0, 1)
        pht.predict(0, 2)
        assert pht.hit_rate == pytest.approx(0.5)

    def test_storage_matches_table1(self):
        pht = GazePatternHistoryTable()
        assert pht.storage_bits() / 8 == 2304

    def test_entries_must_divide_ways(self):
        with pytest.raises(ValueError):
            GazePatternHistoryTable(entries=255, ways=4)

    def test_reset(self):
        pht = GazePatternHistoryTable()
        pht.learn(0, 1, 1)
        pht.reset()
        assert pht.predict(0, 1) is None
        assert pht.lookups == 1  # the post-reset lookup


class TestDenseTracker:
    def test_hash_pc_within_bits(self):
        for pc in (0, 0x400000, 0xFFFFFFFF, 123456789):
            assert 0 <= hash_pc(pc) < (1 << 12)

    def test_dpct_records_and_matches(self):
        dpct = DensePCTable(entries=8)
        dpct.record(0x400100)
        assert dpct.contains(0x400100)
        assert not dpct.contains(0x400104)

    def test_dpct_lru_capacity(self):
        dpct = DensePCTable(entries=2)
        dpct.record(1)
        dpct.record(2)
        dpct.record(3)
        assert len(dpct) == 2

    def test_dpct_storage(self):
        assert DensePCTable().storage_bits() / 8 == 15

    def test_dense_counter_saturates(self):
        dc = DenseCounter(bits=3)
        for _ in range(20):
            dc.increment()
        assert dc.value == 7
        assert dc.is_saturated

    def test_dense_counter_fast_decay(self):
        dc = DenseCounter(bits=3)
        for _ in range(7):
            dc.increment()
        dc.decay()
        assert dc.value == 3  # halved (7 // 2)

    def test_dense_counter_slow_decay(self):
        dc = DenseCounter(bits=3)
        dc.increment()
        dc.increment()
        dc.decay()
        assert dc.value == 1  # -1 below the half threshold

    def test_dense_counter_floor_zero(self):
        dc = DenseCounter()
        dc.decay()
        assert dc.value == 0

    def test_streaming_module_confidence_levels(self):
        module = StreamingModule()
        assert module.confidence(0x1) is StreamingConfidence.NONE
        # Learning dense regions raises confidence.
        for _ in range(3):
            module.learn(0x1, fully_dense=True)
        assert module.confidence(0x1) is StreamingConfidence.HIGH  # dense PC hit
        assert module.confidence(0x999) is StreamingConfidence.MODERATE  # DC = 3 > 2
        for _ in range(5):
            module.learn(0x2, fully_dense=True)
        assert module.confidence(0x999) is StreamingConfidence.HIGH  # DC saturated

    def test_streaming_module_non_dense_decays(self):
        module = StreamingModule()
        for _ in range(7):
            module.learn(0x1, fully_dense=True)
        for _ in range(6):
            module.learn(0x2, fully_dense=False)
        assert module.dc.value == 0


class TestPrefetchBuffer:
    def test_add_and_pop_ordered(self):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=5, offsets_to_l1=[9, 3], offsets_to_l2=[20])
        requests = pb.pop_requests(region=5, region_size=4096)
        offsets = [(r.address % 4096) // 64 for r in requests]
        assert offsets == [3, 9, 20]
        hints = [r.hint for r in requests]
        assert hints == [PrefetchHint.L1, PrefetchHint.L1, PrefetchHint.L2]

    def test_exclude_offsets(self):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=1, offsets_to_l1=[0, 1, 2], exclude_offsets=(0, 1))
        requests = pb.pop_requests(1, 4096)
        assert len(requests) == 1

    def test_no_duplicate_issue(self):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=1, offsets_to_l1=[4])
        assert len(pb.pop_requests(1, 4096)) == 1
        assert len(pb.pop_requests(1, 4096)) == 0
        pb.add_pattern(region=1, offsets_to_l1=[4])
        assert len(pb.pop_requests(1, 4096)) == 0

    def test_l1_priority_preserved_on_merge(self):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=1, offsets_to_l1=[4], offsets_to_l2=[4])
        requests = pb.pop_requests(1, 4096)
        assert requests[0].hint is PrefetchHint.L1

    def test_promotion_reissues_l2_blocks(self):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=1, offsets_to_l1=[], offsets_to_l2=[10, 11])
        pb.pop_requests(1, 4096)
        needs = pb.promote(1, [10, 11, 12])
        assert set(needs) == {10, 11, 12}
        requests = pb.pop_requests(1, 4096)
        assert all(r.hint is PrefetchHint.L1 for r in requests)

    def test_promotion_skips_l1_issued(self):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=1, offsets_to_l1=[10])
        pb.pop_requests(1, 4096)
        assert pb.promote(1, [10]) == []

    def test_pop_limit(self):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=1, offsets_to_l1=list(range(20)))
        first = pb.pop_requests(1, 4096, limit=8)
        second = pb.pop_requests(1, 4096, limit=8)
        third = pb.pop_requests(1, 4096, limit=8)
        assert [len(first), len(second), len(third)] == [8, 8, 4]

    def test_out_of_range_offsets_ignored(self):
        pb = GazePrefetchBuffer(blocks_per_region=64)
        pb.add_pattern(region=1, offsets_to_l1=[70, -1, 5])
        assert len(pb.pop_requests(1, 4096)) == 1

    def test_capacity_lru(self):
        pb = GazePrefetchBuffer(entries=2)
        pb.add_pattern(1, [1])
        pb.add_pattern(2, [1])
        pb.add_pattern(3, [1])
        assert pb.lookup(1) is None
        assert pb.lookup(3) is not None

    def test_storage_matches_table1(self):
        assert GazePrefetchBuffer().storage_bits() / 8 == 668
