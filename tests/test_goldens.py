"""Golden-stats regression tests.

Snapshots key :class:`~repro.sim.stats.SimulationStats` fields (IPC,
accuracy, coverage plus the raw counters that drive them) for a small fixed
grid of (trace, prefetcher) pairs into ``tests/goldens/*.json``.  Any
behaviour change in the simulator, a prefetcher or a workload generator
fails these tests loudly — figures can then be refreshed deliberately
instead of drifting silently.

When a change is *intentional*, refresh the snapshots (and bump
``ENGINE_SCHEMA_VERSION`` in ``repro/experiments/jobs.py`` so stale cache
entries are invalidated too)::

    REFRESH_GOLDENS=1 python -m pytest tests/test_goldens.py -q

then commit the updated ``tests/goldens/*.json`` files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.prefetchers import available_prefetchers, create_prefetcher
from repro.sim.simulator import simulate_trace
from repro.workloads.trace import TraceSpec

GOLDEN_DIR = Path(__file__).parent / "goldens"

_REFRESH = os.environ.get("REFRESH_GOLDENS", "") not in ("", "0")

#: Fixed traces snapshotted by the golden grid.  Short on purpose: the
#: point is drift detection, not statistical fidelity.
TRACE_SPECS = {
    "spatial-s3": TraceSpec(
        name="spatial-s3", suite="golden", generator="spatial", seed=3,
        length=2_000,
    ),
    "streaming-s2": TraceSpec(
        name="streaming-s2", suite="golden", generator="streaming", seed=2,
        length=2_000,
    ),
    "cloud-s6": TraceSpec(
        name="cloud-s6", suite="golden", generator="cloud", seed=6,
        length=2_000,
    ),
    # Recurring pointer chase sized so the working set exceeds the L1 but
    # the trace still makes 3+ passes: both temporal designs train and
    # issue at this scale (slightly longer than the other goldens because
    # Triangel's sampled confidence needs a couple of recurrences first).
    "temporal-s5": TraceSpec(
        name="temporal-s5", suite="golden", generator="temporal-pointer",
        seed=5, length=3_000,
        params={"num_nodes": 900, "noise_fraction": 0.02},
    ),
}

#: The paper's headline designs, snapshotted on every golden trace.
MAIN_PREFETCHERS = (
    "ip-stride", "bop", "sms", "bingo", "dspatch", "pmp", "spp-ppf",
    "vberti", "ipcp", "gaze",
)

#: Designs snapshotted on the temporal-reuse trace: both temporal designs
#: plus spatial representatives (whose near-silence there is itself a
#: behaviour worth pinning).
TEMPORAL_PREFETCHERS = ("triangel", "ghb", "gaze", "pmp", "vberti", "ip-stride")


def _grid():
    """(trace_key, prefetcher) pairs: every registered prefetcher on the
    spatial trace, the main designs on the other traces, the temporal
    designs plus spatial representatives on the temporal trace."""
    pairs = [("spatial-s3", name) for name in available_prefetchers()]
    for trace_key in ("streaming-s2", "cloud-s6"):
        pairs.extend((trace_key, name) for name in MAIN_PREFETCHERS)
    pairs.extend(("temporal-s5", name) for name in TEMPORAL_PREFETCHERS)
    return pairs


GRID = _grid()

_trace_cache = {}
_baseline_cache = {}


def _trace(trace_key):
    if trace_key not in _trace_cache:
        _trace_cache[trace_key] = TRACE_SPECS[trace_key].build()
    return _trace_cache[trace_key]


def _baseline(trace_key):
    if trace_key not in _baseline_cache:
        _baseline_cache[trace_key] = simulate_trace(_trace(trace_key))
    return _baseline_cache[trace_key]


def _compute_row(trace_key, prefetcher_name):
    """The snapshotted fields for one grid cell.

    Counters are exact integers; derived floats are rounded to 9 decimal
    places (IEEE-754 division is deterministic, rounding just keeps the
    JSON readable).
    """
    stats = simulate_trace(
        _trace(trace_key), prefetcher=create_prefetcher(prefetcher_name)
    )
    baseline = _baseline(trace_key)
    return {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "l1_hits": stats.l1_hits,
        "llc_misses": stats.llc_misses,
        "issued_prefetches": stats.prefetch.issued,
        "useful_prefetches": stats.prefetch.useful,
        "late_prefetches": stats.prefetch.late,
        "ipc": round(stats.ipc, 9),
        "accuracy": round(stats.prefetch.accuracy, 9),
        "coverage": round(stats.coverage(baseline), 9),
    }


def _golden_path(trace_key) -> Path:
    return GOLDEN_DIR / f"{trace_key}.json"


def _load_golden(trace_key) -> dict:
    path = _golden_path(trace_key)
    if not path.is_file():
        return {}
    return json.loads(path.read_text(encoding="utf-8"))


def _store_golden(trace_key, prefetcher_name, row) -> None:
    data = _load_golden(trace_key)
    data[prefetcher_name] = row
    path = _golden_path(trace_key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(dict(sorted(data.items())), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.mark.parametrize(
    "trace_key,prefetcher_name", GRID, ids=[f"{t}/{p}" for t, p in GRID]
)
def test_golden_stats(trace_key, prefetcher_name):
    row = _compute_row(trace_key, prefetcher_name)
    if _REFRESH:
        _store_golden(trace_key, prefetcher_name, row)
    golden = _load_golden(trace_key)
    assert prefetcher_name in golden, (
        f"no golden entry for {trace_key}/{prefetcher_name}; refresh with "
        "REFRESH_GOLDENS=1 python -m pytest tests/test_goldens.py -q"
    )
    expected = golden[prefetcher_name]
    assert row == expected, (
        f"simulation drift for {trace_key}/{prefetcher_name}:\n"
        + "\n".join(
            f"  {field}: golden {expected.get(field)!r} -> now {row.get(field)!r}"
            for field in sorted(set(expected) | set(row))
            if expected.get(field) != row.get(field)
        )
        + "\nIf intentional, refresh goldens (see tests/test_goldens.py "
        "docstring) and bump ENGINE_SCHEMA_VERSION."
    )


#: Subset of the grid re-checked under the scalar kernel: the committed
#: golden rows are produced by the default batched kernel, so matching them
#: with ``batch="off"`` proves both kernels byte-identical on every
#: snapshotted counter without doubling the whole grid's runtime.  The
#: temporal designs are checked on the temporal trace, where their tables
#: actually train and the batched path's demand-hit runs engage.
SCALAR_CHECK_CASES = (
    ("spatial-s3", "gaze"),
    ("spatial-s3", "pmp"),
    ("spatial-s3", "vberti"),
    ("spatial-s3", "bingo"),
    ("temporal-s5", "triangel"),
    ("temporal-s5", "ghb"),
)


@pytest.mark.parametrize(
    "trace_key,prefetcher_name", SCALAR_CHECK_CASES,
    ids=[f"{t}/{p}" for t, p in SCALAR_CHECK_CASES],
)
def test_golden_stats_scalar_kernel(trace_key, prefetcher_name):
    stats = simulate_trace(
        _trace(trace_key),
        prefetcher=create_prefetcher(prefetcher_name),
        batch="off",
    )
    baseline = _baseline(trace_key)
    row = {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "l1_hits": stats.l1_hits,
        "llc_misses": stats.llc_misses,
        "issued_prefetches": stats.prefetch.issued,
        "useful_prefetches": stats.prefetch.useful,
        "late_prefetches": stats.prefetch.late,
        "ipc": round(stats.ipc, 9),
        "accuracy": round(stats.prefetch.accuracy, 9),
        "coverage": round(stats.coverage(baseline), 9),
    }
    golden = _load_golden(trace_key)
    assert prefetcher_name in golden
    assert row == golden[prefetcher_name], (
        f"scalar kernel diverged from the committed golden for "
        f"{trace_key}/{prefetcher_name} (the batched kernel matches it)"
    )


#: Every registered prefetcher re-checked under ``kernel="compiled"``
#: against the committed golden rows.  Where the extension is built (the
#: ``compiled-kernel`` CI lane), this proves the C kernels bit-identical
#: to the committed behaviour on every snapshotted counter; where it is
#: not, it proves the documented silent fallback leaves results untouched
#: — both are release requirements, so the test runs unconditionally.
@pytest.mark.parametrize("prefetcher_name", sorted(available_prefetchers()))
def test_golden_stats_compiled_kernel(prefetcher_name):
    trace_key = "spatial-s3"
    stats = simulate_trace(
        _trace(trace_key),
        prefetcher=create_prefetcher(prefetcher_name),
        kernel="compiled",
    )
    baseline = _baseline(trace_key)
    row = {
        "instructions": stats.instructions,
        "cycles": stats.cycles,
        "l1_hits": stats.l1_hits,
        "llc_misses": stats.llc_misses,
        "issued_prefetches": stats.prefetch.issued,
        "useful_prefetches": stats.prefetch.useful,
        "late_prefetches": stats.prefetch.late,
        "ipc": round(stats.ipc, 9),
        "accuracy": round(stats.prefetch.accuracy, 9),
        "coverage": round(stats.coverage(baseline), 9),
    }
    golden = _load_golden(trace_key)
    assert prefetcher_name in golden
    assert row == golden[prefetcher_name], (
        f"compiled tier diverged from the committed golden for "
        f"{trace_key}/{prefetcher_name} (the batched kernel matches it)"
    )


def test_golden_files_have_no_orphan_entries():
    """Every snapshotted entry corresponds to a current grid cell."""
    grid_by_trace = {}
    for trace_key, prefetcher_name in GRID:
        grid_by_trace.setdefault(trace_key, set()).add(prefetcher_name)
    for trace_key in TRACE_SPECS:
        stored = set(_load_golden(trace_key))
        expected = grid_by_trace[trace_key]
        assert stored <= expected, (
            f"{_golden_path(trace_key).name} has entries for removed grid "
            f"cells: {sorted(stored - expected)}"
        )
