"""Unit tests for the baseline prefetchers (IP-stride, BOP, SMS, Bingo,
DSPatch, PMP, IPCP, SPP-PPF, Berti) and the registry/multi-level wrapper."""

import pytest

from repro.prefetchers import (
    BertiPrefetcher,
    BestOffsetPrefetcher,
    BingoPrefetcher,
    DSPatchPrefetcher,
    IPCPPrefetcher,
    IPStridePrefetcher,
    MultiLevelPrefetcher,
    NextLinePrefetcher,
    NoPrefetcher,
    PMPPrefetcher,
    SMSPrefetcher,
    SPPPrefetcher,
    available_prefetchers,
    create_prefetcher,
    register_prefetcher,
)
from repro.sim.types import AccessResult, PrefetchHint, address_from_region_offset


def blocks_of(requests):
    return sorted({r.address >> 6 for r in requests})


def feed_region(prefetcher, region, offsets, pc=0x400100, region_size=4096):
    requests = []
    for index, offset in enumerate(offsets):
        address = address_from_region_offset(region, offset, region_size)
        requests.extend(prefetcher.train(pc, address, index * 20))
    return requests


class TestNoAndNextLine:
    def test_no_prefetcher_returns_nothing(self):
        assert NoPrefetcher().train(1, 2, 3) == []

    def test_next_line_degree(self):
        prefetcher = NextLinePrefetcher(degree=3)
        requests = prefetcher.train(pc=1, address=0, cycle=0)
        assert blocks_of(requests) == [1, 2, 3]

    def test_next_line_invalid_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(degree=0)


class TestIPStride:
    def test_learns_constant_stride(self):
        prefetcher = IPStridePrefetcher(degree=2)
        requests = []
        for i in range(6):
            requests = prefetcher.train(pc=0x10, address=i * 3 * 64, cycle=i)
        assert blocks_of(requests) == [18, 21]

    def test_different_pcs_tracked_separately(self):
        prefetcher = IPStridePrefetcher()
        for i in range(6):
            prefetcher.train(pc=0x10, address=i * 64, cycle=i)
            prefetcher.train(pc=0x20, address=i * 5 * 64, cycle=i)
        up = prefetcher.train(pc=0x10, address=6 * 64, cycle=10)
        assert (7 * 64) in [r.address for r in up]

    def test_no_prefetch_before_confidence(self):
        prefetcher = IPStridePrefetcher(confidence_threshold=2)
        assert prefetcher.train(0x10, 0, 0) == []
        assert prefetcher.train(0x10, 64, 1) == []

    def test_reset(self):
        prefetcher = IPStridePrefetcher()
        for i in range(6):
            prefetcher.train(0x10, i * 64, i)
        prefetcher.reset()
        assert prefetcher.train(0x10, 640, 10) == []

    def test_storage_positive(self):
        assert IPStridePrefetcher().storage_bits() > 0


class TestBOP:
    def test_learns_best_offset(self):
        prefetcher = BestOffsetPrefetcher(candidates=(1, 4), score_max=4, round_max=10)
        for i in range(200):
            prefetcher.train(pc=1, address=i * 4 * 64, cycle=i)
        assert prefetcher.best_offset == 4

    def test_prefetches_with_learned_offset(self):
        prefetcher = BestOffsetPrefetcher()
        requests = prefetcher.train(pc=1, address=0, cycle=0)
        assert blocks_of(requests) == [prefetcher.best_offset]

    def test_reset_restores_defaults(self):
        prefetcher = BestOffsetPrefetcher()
        for i in range(100):
            prefetcher.train(1, i * 2 * 64, i)
        prefetcher.reset()
        assert prefetcher.best_offset == 1


class TestSMS:
    def test_learns_and_replays_per_pc_offset(self):
        sms = SMSPrefetcher(region_size=2048)
        feed_region(sms, 100, [3, 7, 12], pc=0xAA, region_size=2048)
        sms.on_cache_eviction((100 * 2048) // 64)
        requests = feed_region(sms, 200, [3], pc=0xAA, region_size=2048)
        offsets = sorted({(r.address % 2048) // 64 for r in requests})
        assert offsets == [7, 12]

    def test_different_trigger_offset_is_different_event(self):
        sms = SMSPrefetcher(region_size=2048)
        feed_region(sms, 100, [3, 7], pc=0xAA, region_size=2048)
        sms.on_cache_eviction((100 * 2048) // 64)
        # SMS's event is PC+Offset: the same PC triggering at a different
        # offset is a different event and must not match.
        assert feed_region(sms, 200, [10], pc=0xAA, region_size=2048) == []

    def test_different_pc_no_match(self):
        sms = SMSPrefetcher(region_size=2048)
        feed_region(sms, 100, [3, 7], pc=0xAA, region_size=2048)
        sms.on_cache_eviction((100 * 2048) // 64)
        assert feed_region(sms, 200, [3], pc=0xBB, region_size=2048) == []

    def test_storage_is_large(self):
        assert SMSPrefetcher().storage_kib() > 50


class TestBingo:
    def test_long_event_exact_match(self):
        bingo = BingoPrefetcher(region_size=2048)
        feed_region(bingo, 100, [3, 7], pc=0xAA, region_size=2048)
        bingo.on_cache_eviction((100 * 2048) // 64)
        feed_region(bingo, 100, [3], pc=0xAA, region_size=2048)
        assert bingo.long_hits == 1

    def test_short_event_fallback(self):
        bingo = BingoPrefetcher(region_size=2048)
        feed_region(bingo, 100, [3, 7], pc=0xAA, region_size=2048)
        bingo.on_cache_eviction((100 * 2048) // 64)
        requests = feed_region(bingo, 500, [3], pc=0xAA, region_size=2048)
        assert bingo.short_hits == 1
        assert requests

    def test_no_match_for_unknown_pc(self):
        bingo = BingoPrefetcher(region_size=2048)
        feed_region(bingo, 100, [3, 7], pc=0xAA, region_size=2048)
        bingo.on_cache_eviction((100 * 2048) // 64)
        assert feed_region(bingo, 500, [3], pc=0xCC, region_size=2048) == []


class TestDSPatch:
    def test_coverage_pattern_is_union(self):
        dspatch = DSPatchPrefetcher(region_size=2048)
        feed_region(dspatch, 100, [0, 2], pc=0xAA, region_size=2048)
        dspatch.on_cache_eviction((100 * 2048) // 64)
        feed_region(dspatch, 101, [0, 4], pc=0xAA, region_size=2048)
        dspatch.on_cache_eviction((101 * 2048) // 64)
        requests = feed_region(dspatch, 200, [0], pc=0xAA, region_size=2048)
        offsets = sorted({(r.address % 2048) // 64 for r in requests})
        assert offsets == [2, 4]  # OR of both footprints (bandwidth ample)

    def test_accuracy_pattern_under_pressure(self):
        dspatch = DSPatchPrefetcher(region_size=2048, latency_threshold=0.0)
        dspatch._latency_ema = 1000.0  # force the bandwidth-constrained path
        feed_region(dspatch, 100, [0, 2], pc=0xAA, region_size=2048)
        dspatch.on_cache_eviction((100 * 2048) // 64)
        feed_region(dspatch, 101, [0, 2, 4], pc=0xAA, region_size=2048)
        dspatch.on_cache_eviction((101 * 2048) // 64)
        dspatch._latency_ema = 1000.0
        requests = feed_region(dspatch, 200, [0], pc=0xAA, region_size=2048)
        offsets = sorted({(r.address % 2048) // 64 for r in requests})
        assert offsets == [2]  # AND of the footprints


class TestPMP:
    def test_merged_counters_above_threshold_prefetched(self):
        pmp = PMPPrefetcher()
        for region in range(100, 104):
            feed_region(pmp, region, [5, 9, 12])
            pmp.on_cache_eviction(region * 64)
        requests = feed_region(pmp, 500, [5])
        offsets = sorted({(r.address % 4096) // 64 for r in requests})
        assert offsets == [9, 12]

    def test_low_confidence_goes_to_l2(self):
        pmp = PMPPrefetcher(l1_threshold=0.9, l2_threshold=0.2)
        # Two conflicting patterns sharing the trigger offset: each block has
        # 50% confidence, below the L1 threshold but above the L2 threshold.
        feed_region(pmp, 100, [5, 9])
        pmp.on_cache_eviction(100 * 64)
        feed_region(pmp, 101, [5, 20])
        pmp.on_cache_eviction(101 * 64)
        requests = feed_region(pmp, 500, [5])
        assert requests
        assert all(r.hint is PrefetchHint.L2 for r in requests)

    def test_trigger_offset_collision_mixes_patterns(self):
        pmp = PMPPrefetcher(l2_threshold=0.1)
        feed_region(pmp, 100, [5, 9, 12])
        pmp.on_cache_eviction(100 * 64)
        feed_region(pmp, 101, [5, 30, 40])
        pmp.on_cache_eviction(101 * 64)
        requests = feed_region(pmp, 500, [5])
        offsets = sorted({(r.address % 4096) // 64 for r in requests})
        # Both patterns leak through: the characterization cannot separate them.
        assert set(offsets) >= {9, 30}

    def test_storage_about_5kb(self):
        assert PMPPrefetcher().storage_kib() == pytest.approx(5.0, abs=0.6)


class TestIPCP:
    def test_constant_stride_class(self):
        ipcp = IPCPPrefetcher(cs_degree=2)
        requests = []
        for i in range(6):
            requests = ipcp.train(pc=0x30, address=i * 2 * 64, cycle=i)
        assert blocks_of(requests) == [12, 14]

    def test_global_stream_class(self):
        ipcp = IPCPPrefetcher(gs_degree=4)
        requests = []
        for offset in range(8):
            requests = ipcp.train(pc=0x30, address=0x100000 + offset * 64, cycle=offset)
        assert len(requests) == 4
        assert requests[0].metadata == "gs"

    def test_reset(self):
        ipcp = IPCPPrefetcher()
        for i in range(6):
            ipcp.train(0x30, i * 64, i)
        ipcp.reset()
        assert ipcp.train(0x30, 64 * 10, 20) == []


class TestSPP:
    def test_learns_recurring_delta_path(self):
        spp = SPPPrefetcher(use_perceptron=False)
        requests = []
        page = 77
        for i in range(40):
            offset = (i * 3) % 64
            address = page * 4096 + offset * 64
            requests = spp.train(pc=1, address=address, cycle=i)
            if offset + 3 >= 64:
                page += 1
        assert requests  # steady-state lookahead produces candidates

    def test_lookahead_stays_in_page(self):
        spp = SPPPrefetcher(use_perceptron=False)
        for i in range(30):
            spp.train(pc=1, address=i * 5 * 64, cycle=i)
        requests = spp.train(pc=1, address=60 * 64, cycle=100)
        for request in requests:
            assert request.address // 4096 == (60 * 64) // 4096

    def test_perceptron_filter_learns_negative(self):
        from repro.prefetchers.spp import _PerceptronFilter

        ppf = _PerceptronFilter(table_size=64)
        # Issue and never see demand -> trained negative on eviction pressure.
        for block in range(300):
            ppf.record_issue(block, signature=1, delta=2, offset=3)
        assert ppf.score(1, 2, 3) < 0

    def test_perceptron_filter_learns_positive(self):
        from repro.prefetchers.spp import _PerceptronFilter

        ppf = _PerceptronFilter(table_size=64)
        for block in range(50):
            ppf.record_issue(block, signature=1, delta=2, offset=3)
            ppf.record_demand(block)
        assert ppf.score(1, 2, 3) > 0


class TestBerti:
    def test_learns_recurring_delta(self):
        berti = BertiPrefetcher()
        requests = []
        for i in range(30):
            requests = berti.train(pc=0x40, address=i * 2 * 64, cycle=i * 300)
        assert requests
        assert (2 * 64) == requests[0].address - (29 * 2 * 64)

    def test_timely_deltas_go_to_l1(self):
        berti = BertiPrefetcher()
        result = AccessResult(latency=100, hit_level="DRAM")
        requests = []
        for i in range(30):
            requests = berti.train(pc=0x40, address=i * 64, cycle=i * 1000, result=result)
        assert any(r.hint is PrefetchHint.L1 for r in requests)

    def test_untimely_deltas_demoted_to_l2(self):
        berti = BertiPrefetcher()
        result = AccessResult(latency=10_000, hit_level="DRAM")
        requests = []
        for i in range(30):
            requests = berti.train(pc=0x40, address=i * 64, cycle=i * 10, result=result)
        assert requests
        assert all(r.hint is PrefetchHint.L2 for r in requests)

    def test_window_limits_delta_range(self):
        berti = BertiPrefetcher(page_window=1)
        for i in range(20):
            berti.train(pc=0x40, address=i * 200 * 64, cycle=i * 100)
        # Deltas of 200 blocks exceed a 1-page window (64 blocks): no requests.
        assert berti.train(pc=0x40, address=21 * 200 * 64, cycle=5000) == []


class TestRegistryAndMultilevel:
    def test_all_registered_names_instantiate(self):
        for name in available_prefetchers():
            prefetcher = create_prefetcher(name)
            assert prefetcher.train(0x1, 0x1000, 0) is not None

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            create_prefetcher("definitely-not-a-prefetcher")

    def test_composite_name_builds_multilevel(self):
        combo = create_prefetcher("gaze+bingo")
        assert isinstance(combo, MultiLevelPrefetcher)
        assert combo.name == "gaze+bingo"

    def test_register_custom(self):
        register_prefetcher("custom-test", NoPrefetcher)
        assert isinstance(create_prefetcher("custom-test"), NoPrefetcher)

    def test_multilevel_l2_requests_demoted(self):
        combo = MultiLevelPrefetcher(NoPrefetcher(), NextLinePrefetcher(degree=2))
        miss = AccessResult(latency=200, hit_level="DRAM")
        requests = combo.train(0x1, 0, 0, miss)
        assert requests
        assert all(r.hint is PrefetchHint.L2 for r in requests)

    def test_multilevel_l2_not_trained_on_l1_hits(self):
        combo = MultiLevelPrefetcher(NoPrefetcher(), NextLinePrefetcher(degree=2))
        hit = AccessResult(latency=5, hit_level="L1D")
        assert combo.train(0x1, 0, 0, hit) == []

    def test_multilevel_storage_sums(self):
        a, b = create_prefetcher("gaze"), create_prefetcher("pmp")
        combo = MultiLevelPrefetcher(a, b)
        assert combo.storage_bits() == a.storage_bits() + b.storage_bits()

    def test_storage_ordering_matches_table4(self):
        """Fine-grained schemes cost orders of magnitude more than Gaze."""
        gaze = create_prefetcher("gaze").storage_kib()
        assert create_prefetcher("bingo").storage_kib() > 20 * gaze
        assert create_prefetcher("sms").storage_kib() > 20 * gaze
        assert create_prefetcher("pmp").storage_kib() == pytest.approx(gaze, rel=0.4)
