"""Tests for the Gaze ablation variants and characterization strawmen."""

import pytest

from repro.core.variants import (
    ContextCharacterizationPrefetcher,
    GazePHTOnly,
    NInitialAccessGaze,
    OffsetOnlyPrefetcher,
    PCAddressPrefetcher,
    PCOnlyPrefetcher,
    StreamingOnlyGaze,
    VirtualGaze,
)
from repro.sim.types import address_from_region_offset


def feed(prefetcher, region, offsets, pc=0x400100, region_size=4096):
    requests = []
    for index, offset in enumerate(offsets):
        address = address_from_region_offset(region, offset, region_size)
        requests.extend(prefetcher.train(pc, address, index * 10))
    return requests


def req_offsets(requests, region_size=4096):
    return sorted({(r.address % region_size) // 64 for r in requests})


class TestContextCharacterization:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            ContextCharacterizationPrefetcher(scheme="magic")

    def test_offset_scheme_predicts_at_trigger(self):
        prefetcher = OffsetOnlyPrefetcher()
        feed(prefetcher, 100, [5, 9, 12])
        prefetcher.on_cache_eviction(100 * 64)
        requests = feed(prefetcher, 200, [5])
        assert req_offsets(requests) == [9, 12]

    def test_offset_scheme_confuses_shared_triggers(self):
        """Two different footprints with the same trigger offset collide."""
        prefetcher = OffsetOnlyPrefetcher()
        feed(prefetcher, 100, [5, 9, 12])
        prefetcher.on_cache_eviction(100 * 64)
        feed(prefetcher, 101, [5, 30, 40])
        prefetcher.on_cache_eviction(101 * 64)
        requests = feed(prefetcher, 200, [5])
        # Only the most recent pattern survives; the older is overwritten.
        assert req_offsets(requests) == [30, 40]

    def test_pc_scheme_keyed_by_pc(self):
        prefetcher = PCOnlyPrefetcher()
        feed(prefetcher, 100, [5, 9], pc=0xAAA)
        prefetcher.on_cache_eviction(100 * 64)
        assert feed(prefetcher, 200, [7], pc=0xBBB) == []
        requests = feed(prefetcher, 201, [7], pc=0xAAA)
        assert req_offsets(requests) == [5, 9]

    def test_pc_addr_requires_same_region(self):
        prefetcher = PCAddressPrefetcher()
        feed(prefetcher, 100, [5, 9], pc=0xAAA)
        prefetcher.on_cache_eviction(100 * 64)
        # Same PC and offset but a different region: the long event misses.
        assert feed(prefetcher, 200, [5], pc=0xAAA) == []
        # Revisiting the same region hits.
        requests = feed(prefetcher, 100, [5], pc=0xAAA)
        assert req_offsets(requests) == [9]

    def test_storage_ordering(self):
        assert (OffsetOnlyPrefetcher().storage_bits()
                < PCAddressPrefetcher().storage_bits())


class TestGazePHTOnly:
    def test_name_and_config(self):
        variant = GazePHTOnly()
        assert variant.name == "gaze-pht"
        assert not variant.config.enable_streaming_module
        assert not variant.config.enable_stride_backup

    def test_no_stride_backup_requests(self):
        variant = GazePHTOnly()
        assert feed(variant, 300, [4, 6, 8, 10]) == []


class TestVirtualGaze:
    def test_region_size_in_name(self):
        assert VirtualGaze(region_size=32 * 1024).name == "vgaze-32kb"

    def test_large_region_pattern(self):
        vgaze = VirtualGaze(region_size=8192)
        feed(vgaze, 50, [2, 3, 90], region_size=8192)
        vgaze.on_cache_eviction((50 * 8192) // 64)
        requests = feed(vgaze, 60, [2, 3], region_size=8192)
        assert req_offsets(requests, region_size=8192) == [90]


class TestStreamingOnlyVariants:
    def _train_dense(self, prefetcher, count, pc=0x500000, start=1000):
        for i in range(count):
            region = start + i
            feed(prefetcher, region, list(range(64)), pc=pc)
            prefetcher.on_cache_eviction(region * 64)

    def test_names(self):
        assert StreamingOnlyGaze(use_streaming_module=True).name == "sm4ss"
        assert StreamingOnlyGaze(use_streaming_module=False).name == "pht4ss"

    def test_non_streaming_regions_never_prefetched(self):
        for use_module in (True, False):
            variant = StreamingOnlyGaze(use_streaming_module=use_module)
            feed(variant, 100, [5, 9, 12])
            variant.on_cache_eviction(100 * 64)
            assert feed(variant, 200, [5, 9]) == []

    def test_pht4ss_replays_dense_pattern_blindly(self):
        variant = StreamingOnlyGaze(use_streaming_module=False)
        self._train_dense(variant, count=1, pc=0x500000)
        # A region triggered by a *different* PC with the same (0, 1) start
        # still receives the dense pattern: no PC double check.
        requests = feed(variant, 3000, [0, 1], pc=0x999999)
        assert len(requests) > 0

    def test_sm4ss_uses_dense_pc_double_check(self):
        variant = StreamingOnlyGaze(use_streaming_module=True)
        self._train_dense(variant, count=2, pc=0x500000)
        known = feed(variant, 3000, [0, 1], pc=0x500000)
        unknown = feed(variant, 3001, [0, 1], pc=0x999999)
        assert len(known) > 0
        # The unknown PC only gets the moderate (L2-only) treatment at most.
        from repro.sim.types import PrefetchHint
        assert all(r.hint is PrefetchHint.L2 for r in unknown)


class TestNInitialAccessVariants:
    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NInitialAccessGaze(n=0)

    def test_n1_behaves_like_offset(self):
        variant = NInitialAccessGaze(n=1)
        feed(variant, 100, [5, 9, 12])
        variant.on_cache_eviction(100 * 64)
        requests = feed(variant, 200, [5])
        assert req_offsets(requests) == [9, 12]

    def test_n2_requires_two_aligned_accesses(self):
        variant = NInitialAccessGaze(n=2)
        feed(variant, 100, [5, 9, 12])
        variant.on_cache_eviction(100 * 64)
        assert feed(variant, 200, [5]) == []
        requests = feed(variant, 201, [5, 9])
        assert req_offsets(requests) == [12]

    def test_n3_needs_three_and_excludes_them(self):
        variant = NInitialAccessGaze(n=3)
        feed(variant, 100, [5, 9, 12, 20])
        variant.on_cache_eviction(100 * 64)
        assert feed(variant, 200, [5, 9]) == []
        requests = feed(variant, 201, [5, 9, 12])
        assert req_offsets(requests) == [20]

    def test_wrong_order_does_not_match(self):
        variant = NInitialAccessGaze(n=2)
        feed(variant, 100, [5, 9, 12])
        variant.on_cache_eviction(100 * 64)
        assert feed(variant, 200, [9, 5]) == []

    def test_more_initial_accesses_cost_more_storage(self):
        assert (NInitialAccessGaze(n=4).storage_bits()
                > NInitialAccessGaze(n=1).storage_bits())

    def test_duplicate_accesses_do_not_advance_event(self):
        variant = NInitialAccessGaze(n=2)
        feed(variant, 100, [5, 5, 9, 12])
        variant.on_cache_eviction(100 * 64)
        requests = feed(variant, 200, [5, 9])
        assert req_offsets(requests) == [12]
