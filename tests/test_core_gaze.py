"""Behavioural unit tests for the Gaze prefetcher itself."""

import pytest

from repro.core.gaze import GazeConfig, GazePrefetcher
from repro.sim.types import PrefetchHint, address_from_region_offset


def feed_region(prefetcher, region, offsets, pc=0x400100, start_cycle=0):
    """Feed a sequence of offsets of one region to the prefetcher."""
    requests = []
    for index, offset in enumerate(offsets):
        address = address_from_region_offset(region, offset,
                                             prefetcher.config.region_size)
        requests.extend(prefetcher.train(pc, address, start_cycle + index * 10))
    return requests


def offsets_of(requests, region_size=4096):
    return sorted({(r.address % region_size) // 64 for r in requests})


class TestBasicFlow:
    def test_first_access_produces_nothing(self):
        gaze = GazePrefetcher()
        assert feed_region(gaze, 10, [5]) == []
        assert 10 in gaze.filter_table

    def test_second_access_activates_region(self):
        gaze = GazePrefetcher()
        feed_region(gaze, 10, [5, 9])
        assert 10 in gaze.accumulation_table
        assert 10 not in gaze.filter_table

    def test_repeated_trigger_block_stays_in_filter(self):
        gaze = GazePrefetcher()
        feed_region(gaze, 10, [5, 5, 5])
        assert 10 in gaze.filter_table
        assert 10 not in gaze.accumulation_table

    def test_cold_activation_no_prediction(self):
        gaze = GazePrefetcher()
        requests = feed_region(gaze, 10, [5, 9, 12])
        assert requests == []
        assert gaze.pht_predictions == 0


class TestPatternLearningAndPrediction:
    def test_learned_footprint_is_replayed(self):
        gaze = GazePrefetcher()
        pattern = [5, 9, 12, 20, 33]
        # Train: complete a region then force its deactivation via eviction.
        feed_region(gaze, 100, pattern)
        gaze.on_cache_eviction(100 * 64)  # any block of region 100
        # A new region with the same first two accesses must be predicted.
        requests = feed_region(gaze, 200, pattern[:2])
        assert gaze.pht_predictions == 1
        assert offsets_of(requests) == sorted(set(pattern) - {5, 9})
        assert all(r.hint is PrefetchHint.L1 for r in requests)

    def test_strict_matching_rejects_swapped_order(self):
        gaze = GazePrefetcher()
        feed_region(gaze, 100, [5, 9, 12, 20])
        gaze.on_cache_eviction(100 * 64)
        requests = feed_region(gaze, 200, [9, 5])  # swapped first two accesses
        assert gaze.pht_predictions == 0
        assert requests == []

    def test_strict_matching_rejects_different_second(self):
        gaze = GazePrefetcher()
        feed_region(gaze, 100, [5, 9, 12])
        gaze.on_cache_eviction(100 * 64)
        requests = feed_region(gaze, 200, [5, 10])
        assert gaze.pht_predictions == 0
        assert requests == []

    def test_two_classes_sharing_trigger_are_distinguished(self):
        gaze = GazePrefetcher()
        class_a = [5, 9, 12, 20]
        class_b = [5, 30, 40, 50]
        feed_region(gaze, 100, class_a)
        gaze.on_cache_eviction(100 * 64)
        feed_region(gaze, 101, class_b)
        gaze.on_cache_eviction(101 * 64)
        req_a = feed_region(gaze, 200, class_a[:2])
        req_b = feed_region(gaze, 201, class_b[:2])
        assert offsets_of(req_a) == [12, 20]
        assert offsets_of(req_b) == [40, 50]

    def test_at_lru_eviction_learns(self):
        gaze = GazePrefetcher(GazeConfig(accumulation_entries=2))
        feed_region(gaze, 100, [5, 9, 12])
        feed_region(gaze, 101, [6, 7])
        feed_region(gaze, 102, [8, 9])  # evicts region 100 -> learn
        requests = feed_region(gaze, 200, [5, 9])
        assert gaze.pht_predictions == 1
        assert offsets_of(requests) == [12]

    def test_drain_learns_all(self):
        gaze = GazePrefetcher()
        feed_region(gaze, 100, [5, 9, 12])
        gaze.drain()
        assert len(gaze.accumulation_table) == 0
        requests = feed_region(gaze, 200, [5, 9])
        assert gaze.pht_predictions == 1


class TestStreamingModule:
    def _train_dense_regions(self, gaze, count, pc=0x500000, start_region=1000):
        for i in range(count):
            region = start_region + i
            feed_region(gaze, region, list(range(64)), pc=pc)
            gaze.on_cache_eviction(region * 64)

    def test_cold_streaming_region_not_prefetched(self):
        gaze = GazePrefetcher()
        requests = feed_region(gaze, 10, [0, 1])
        assert requests == []
        assert gaze.accumulation_table.lookup(10).stride_flag

    def test_dense_training_enables_high_confidence(self):
        gaze = GazePrefetcher()
        self._train_dense_regions(gaze, count=3, pc=0x500000)
        requests = feed_region(gaze, 2000, [0, 1], pc=0x500000)
        assert gaze.streaming_predictions >= 1
        l1_offsets = offsets_of([r for r in requests if r.hint is PrefetchHint.L1])
        l2_offsets = offsets_of([r for r in requests if r.hint is PrefetchHint.L2])
        # Head of the region to the L1D, the rest (or at least some) to the L2C.
        assert l1_offsets and max(l1_offsets) < 16
        assert all(o >= 16 for o in l2_offsets)

    def test_unknown_pc_with_saturated_dc_still_high(self):
        gaze = GazePrefetcher()
        self._train_dense_regions(gaze, count=8, pc=0x500000)
        assert gaze.streaming.dc.is_saturated
        requests = feed_region(gaze, 3000, [0, 1], pc=0x999999)
        assert len(requests) > 0

    def test_half_confident_dc_only_l2(self):
        gaze = GazePrefetcher()
        self._train_dense_regions(gaze, count=3, pc=0x500000)
        assert 2 < gaze.streaming.dc.value < 7
        requests = feed_region(gaze, 3000, [0, 1], pc=0x777777)
        assert requests  # moderate confidence -> L2-only head
        assert all(r.hint is PrefetchHint.L2 for r in requests)

    def test_non_dense_streaming_candidates_decay_dc(self):
        gaze = GazePrefetcher()
        self._train_dense_regions(gaze, count=7, pc=0x500000)
        saturated = gaze.streaming.dc.value
        for i in range(6):
            region = 5000 + i
            feed_region(gaze, region, [0, 1, 2], pc=0x600000)
            gaze.on_cache_eviction(region * 64)
        assert gaze.streaming.dc.value < saturated

    def test_streaming_not_learned_into_pht(self):
        gaze = GazePrefetcher()
        self._train_dense_regions(gaze, count=2)
        assert gaze.pht.predict(0, 1) is None

    def test_disabled_streaming_module_uses_pht(self):
        gaze = GazePrefetcher(GazeConfig(enable_streaming_module=False,
                                         enable_stride_backup=False))
        feed_region(gaze, 100, list(range(64)))
        gaze.on_cache_eviction(100 * 64)
        # The PB smooths issuance: the first batch is capped per access, and
        # subsequent accesses release the rest of the 62-block pattern.
        requests = feed_region(gaze, 200, [0, 1])
        assert gaze.pht_predictions == 1
        assert len(requests) == gaze.config.pb_issue_per_access
        requests += feed_region(gaze, 200, [2, 3, 4, 5])
        assert len(offsets_of(requests)) >= 60


class TestStrideBackupAndPromotion:
    def test_stride_backup_promotes_ahead(self):
        gaze = GazePrefetcher()
        # Unmatched region (no PHT entry): stride flag set, then a constant
        # stride of +2 appears -> promote 4 blocks, skipping 2.
        requests = feed_region(gaze, 300, [4, 6, 8])
        promoted = offsets_of(requests)
        # After access at offset 8 with stride 2: skip 2 steps (10, 12),
        # prefetch the next 4 strided blocks 14, 16, 18, 20.
        assert promoted == [14, 16, 18, 20]
        assert gaze.promotions == 1

    def test_no_promotion_without_matching_strides(self):
        gaze = GazePrefetcher()
        requests = feed_region(gaze, 300, [4, 6, 7])
        assert requests == []

    def test_promotion_respects_region_bounds(self):
        gaze = GazePrefetcher()
        requests = feed_region(gaze, 300, [59, 60, 61])
        assert all(off < 64 for off in offsets_of(requests))

    def test_promotion_disabled_by_config(self):
        gaze = GazePrefetcher(GazeConfig(enable_stride_backup=False))
        requests = feed_region(gaze, 300, [4, 6, 8, 10])
        assert requests == []

    def test_promotion_not_repeated_for_same_blocks(self):
        gaze = GazePrefetcher()
        first = feed_region(gaze, 300, [4, 6, 8])
        again = feed_region(gaze, 300, [10])
        overlap = set(offsets_of(first)) & set(offsets_of(again))
        assert not overlap


class TestStorageAndReset:
    def test_total_storage_matches_table1(self):
        assert GazePrefetcher().storage_kib() == pytest.approx(4.46, abs=0.01)

    def test_reset_clears_everything(self):
        gaze = GazePrefetcher()
        feed_region(gaze, 100, [5, 9, 12])
        gaze.reset()
        assert len(gaze.filter_table) == 0
        assert len(gaze.accumulation_table) == 0
        assert gaze.pht_predictions == 0

    def test_larger_region_configuration(self):
        gaze = GazePrefetcher(GazeConfig(region_size=8192))
        assert gaze.config.blocks_per_region == 128
        feed_region(gaze, 100, [5, 9, 100])
        gaze.on_cache_eviction((100 * 8192) // 64)
        requests = feed_region(gaze, 200, [5, 9])
        assert offsets_of(requests, region_size=8192) == [100]

    def test_storage_grows_with_region_size(self):
        small = GazePrefetcher(GazeConfig(region_size=4096)).storage_bits()
        large = GazePrefetcher(GazeConfig(region_size=65536)).storage_bits()
        assert large > small
