"""Unit tests for repro.sim.config."""

import pytest

from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    SystemConfig,
    default_system_config,
)


class TestCoreConfig:
    def test_defaults_match_table2(self):
        core = CoreConfig()
        assert core.width == 4
        assert core.rob_size == 352
        assert core.load_queue_size == 128
        assert core.store_queue_size == 72

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(width=0)

    def test_invalid_rob_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_size=-1)

    def test_invalid_mshr_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(max_outstanding_misses=0)


class TestCacheConfig:
    def test_l1d_geometry(self):
        config = default_system_config(1).l1d
        assert config.size_bytes == 48 * 1024
        assert config.ways == 12
        assert config.sets == 64
        assert config.total_blocks == 768

    def test_l2c_geometry(self):
        config = default_system_config(1).l2c
        assert config.size_bytes == 512 * 1024
        assert config.sets == 1024

    def test_llc_geometry_single_core(self):
        config = default_system_config(1).llc
        assert config.size_bytes == 2 * 1024 * 1024
        assert config.ways == 16

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, ways=3, latency=1, mshrs=4)

    def test_non_power_of_two_sets_allowed(self):
        config = CacheConfig(name="odd", size_bytes=3 * 64 * 8, ways=8, latency=1, mshrs=4)
        assert config.sets == 3


class TestDRAMConfig:
    def test_latencies_positive(self):
        dram = DRAMConfig()
        assert dram.row_hit_latency_cycles > 0
        assert dram.row_miss_latency_cycles > dram.row_hit_latency_cycles

    def test_transfer_cycles_scale_with_rate(self):
        slow = DRAMConfig(transfer_rate_mtps=800)
        fast = DRAMConfig(transfer_rate_mtps=12800)
        assert slow.transfer_cycles_per_block > fast.transfer_cycles_per_block
        assert slow.transfer_cycles_per_block == pytest.approx(
            16 * fast.transfer_cycles_per_block
        )

    def test_ddr4_3200_transfer_time(self):
        dram = DRAMConfig()
        # 64 bytes over 25.6 GB/s at 4 GHz = 10 CPU cycles.
        assert dram.transfer_cycles_per_block == pytest.approx(10.0, rel=0.01)

    def test_total_banks(self):
        dram = DRAMConfig(channels=2, ranks_per_channel=2, banks_per_rank=8)
        assert dram.total_banks == 32


class TestSystemScaling:
    def test_single_core_default(self):
        config = default_system_config(1)
        assert config.num_cores == 1
        assert config.dram.channels == 1

    def test_llc_scales_with_cores(self):
        for cores in (1, 2, 4, 8):
            config = default_system_config(cores)
            assert config.llc.size_bytes == 2 * 1024 * 1024 * cores

    def test_dram_channels_scale_with_cores(self):
        assert default_system_config(2).dram.channels == 2
        assert default_system_config(4).dram.channels == 2
        assert default_system_config(4).dram.ranks_per_channel == 2
        assert default_system_config(8).dram.channels == 4

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            SystemConfig().scaled_for_cores(0)

    def test_scaling_is_pure(self):
        base = SystemConfig()
        scaled = base.scaled_for_cores(8)
        assert base.llc.size_bytes == 2 * 1024 * 1024
        assert scaled.llc.size_bytes == 16 * 1024 * 1024
