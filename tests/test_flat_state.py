"""Flat prefetcher state: table semantics and cross-tier equality.

The array-backed prefetcher tier (:mod:`repro.prefetchers.arrays`) and the
optional compiled tier (:mod:`repro.prefetchers.compiled`, built from
``src/repro/_kernels.c``) must be *bit-identical* to the object-table
implementations for every statistic of every registered prefetcher.  These
tests pin:

* the :class:`FlatSetAssociativeTable` replacement semantics against an
  ``OrderedDict`` reference model — per-set LRU eviction, invalid-slot
  preference, tag aliasing across sets, and stamp-clock wraparound with a
  tiny ``stamp_limit``;
* :class:`FlatLRUTable` eviction order and slot reuse;
* whole-simulation equality across every tier combination — scalar vs
  batched kernel x ``state`` knob (object vs flat tables) x ``kernel``
  knob (pure Python vs the compiled extension, when built);
* the compiled-twin substitution rules (:func:`compiled_twin`) and the
  graceful fallback when a configuration the C kernels cannot represent
  is requested;
* chunked streaming (:class:`repro.sim.batch.ChunkedTraceStream`) against
  the scalar streamed path, including replayed instruction budgets and
  warm-up boundaries with deliberately tiny chunk sizes.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.core.gaze import GazeConfig
from repro.prefetchers import available_prefetchers, create_prefetcher
from repro.prefetchers.arrays import (
    FlatBertiPrefetcher,
    FlatGazePrefetcher,
    FlatLRUTable,
    FlatSetAssociativeTable,
)
from repro.prefetchers.compiled import compiled_available, compiled_twin
from repro.sim.batch import ChunkedTraceStream
from repro.sim.simulator import KERNEL_MODES, resolve_kernel, simulate_trace
from repro.workloads import formats as trace_formats
from repro.workloads.trace import TraceSpec

requires_compiled = pytest.mark.skipif(
    not compiled_available(),
    reason="compiled kernel extension not built "
    "(`python setup.py build_ext --inplace`)",
)


def _stats_dict(stats):
    data = stats.to_dict()
    data.pop("extra", None)
    return data


def _assert_identical(reference, candidate, label):
    assert _stats_dict(reference) == _stats_dict(candidate), (
        f"prefetcher tiers diverged ({label})"
    )


def _trace(generator="cloud", seed=5, length=1_500):
    return TraceSpec(
        name=f"{generator}-s{seed}", suite="test", generator=generator,
        seed=seed, length=length,
    ).build()


# --------------------------------------------------------------------------- #
# FlatSetAssociativeTable against an OrderedDict reference model
# --------------------------------------------------------------------------- #
class _SetAssocModel:
    """Per-set ``OrderedDict`` LRU model (mirrors the object-table tier)."""

    def __init__(self, sets, ways):
        self.ways = ways
        self.sets = [OrderedDict() for _ in range(sets)]

    def lookup(self, set_index, tag, touch=True):
        lru = self.sets[set_index]
        if tag not in lru:
            return False
        if touch:
            lru.move_to_end(tag)
        return True

    def insert(self, set_index, tag):
        """Returns the evicted tag or None, as the flat table does."""
        lru = self.sets[set_index]
        if tag in lru:
            lru.move_to_end(tag)
            return None
        evicted = None
        if len(lru) >= self.ways:
            evicted, _ = lru.popitem(last=False)
        lru[tag] = True
        return evicted

    def remove(self, set_index, tag):
        self.sets[set_index].pop(tag, None)

    def lru_tag(self, set_index):
        lru = self.sets[set_index]
        return next(iter(lru)) if lru else None


class TestFlatSetAssociativeTable:
    def test_lru_eviction_order_matches_reference_model(self):
        table = FlatSetAssociativeTable(sets=4, ways=4)
        model = _SetAssocModel(sets=4, ways=4)
        import random

        rng = random.Random(42)
        for _ in range(3_000):
            set_index = rng.randrange(4)
            tag = rng.randrange(12)
            op = rng.randrange(4)
            if op == 0:
                hit = table.lookup(set_index, tag) >= 0
                assert hit == model.lookup(set_index, tag)
            elif op == 1:
                hit = table.lookup(set_index, tag, touch=False) >= 0
                assert hit == model.lookup(set_index, tag, touch=False)
            elif op == 2:
                _, evicted = table.insert(set_index, tag)
                assert evicted == model.insert(set_index, tag)
            else:
                table.remove(set_index, tag)
                model.remove(set_index, tag)
            assert table.lru_tag(set_index) == model.lru_tag(set_index)

    def test_wraparound_stamps_preserve_lru_order(self):
        # A stamp limit small enough that renormalisation fires hundreds of
        # times; replacement decisions must stay identical to the model.
        table = FlatSetAssociativeTable(sets=2, ways=4, stamp_limit=8)
        model = _SetAssocModel(sets=2, ways=4)
        import random

        rng = random.Random(7)
        renorms = 0
        for step in range(2_000):
            set_index = step & 1
            tag = rng.randrange(9)
            before = table._clock
            _, evicted = table.insert(set_index, tag)
            if table._clock <= before:
                renorms += 1
            assert evicted == model.insert(set_index, tag)
            assert table.lru_tag(set_index) == model.lru_tag(set_index)
        assert renorms > 100  # the tiny limit really was exercised

    def test_invalid_slots_claimed_before_any_eviction(self):
        table = FlatSetAssociativeTable(sets=1, ways=3)
        slots = [table.insert(0, tag)[0] for tag in (10, 11, 12)]
        assert sorted(slots) == [0, 1, 2]
        freed = table.remove(0, 11)
        slot, evicted = table.insert(0, 13)
        assert slot == freed and evicted is None  # reuse, not eviction
        assert table.evictions == 0

    def test_same_tag_aliases_across_sets(self):
        table = FlatSetAssociativeTable(sets=4, ways=2)
        column = table.add_column("payload")
        for set_index in range(4):
            slot, _ = table.insert(set_index, tag=99)
            column[slot] = set_index * 100
        for set_index in range(4):
            slot = table.lookup(set_index, 99)
            assert slot >= 0 and column[slot] == set_index * 100

    def test_eviction_exposes_victim_payload_before_overwrite(self):
        table = FlatSetAssociativeTable(sets=1, ways=2)
        column = table.add_column("payload", fill=-1)
        slot_a, _ = table.insert(0, 1)
        column[slot_a] = 111
        slot_b, _ = table.insert(0, 2)
        column[slot_b] = 222
        slot, evicted = table.insert(0, 3)
        assert evicted == 1 and column[slot] == 111  # victim payload intact
        assert table.evictions == 1

    def test_reinsert_refreshes_without_eviction(self):
        table = FlatSetAssociativeTable(sets=1, ways=2)
        table.insert(0, 1)
        table.insert(0, 2)
        slot, evicted = table.insert(0, 1)  # refresh: now 2 is LRU
        assert evicted is None
        assert table.lru_tag(0) == 2
        _, evicted = table.insert(0, 3)
        assert evicted == 2

    def test_clear_resets_occupancy_and_clock(self):
        table = FlatSetAssociativeTable(sets=2, ways=2)
        for tag in range(4):
            table.insert(tag & 1, tag)
        table.clear()
        assert len(table) == 0
        assert table.lru_tag(0) is None
        assert all(table.lookup(s, t) < 0 for s in range(2) for t in range(4))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            FlatSetAssociativeTable(sets=0, ways=4)
        with pytest.raises(ValueError):
            FlatSetAssociativeTable(sets=4, ways=0)


class TestFlatLRUTable:
    def test_eviction_order_matches_ordered_dict(self):
        # insert() is new-keys-only by contract (hot paths check membership
        # first); existing keys are refreshed via lookup().
        table = FlatLRUTable(capacity=4)
        model = OrderedDict()
        import random

        rng = random.Random(3)
        for _ in range(2_000):
            key = rng.randrange(10)
            if key in model or rng.randrange(3) == 0:
                hit = table.lookup(key) >= 0
                assert hit == (key in model)
                if key in model:
                    model.move_to_end(key)
            else:
                _, evicted = table.insert(key)
                expected = None
                if len(model) >= 4:
                    expected, _ = model.popitem(last=False)
                model[key] = True
                assert evicted == expected
            assert table.keys_lru_to_mru() == list(model)

    def test_removed_slot_is_reused(self):
        table = FlatLRUTable(capacity=3)
        slots = {key: table.insert(key)[0] for key in (1, 2, 3)}
        freed = table.remove(2)
        assert freed == slots[2]
        slot, evicted = table.insert(4)
        assert slot == freed and evicted is None


# --------------------------------------------------------------------------- #
# Whole-simulation equality across every tier
# --------------------------------------------------------------------------- #
ALL_PREFETCHERS = sorted(available_prefetchers())


class TestAllTierEquality:
    """scalar/batched x python/compiled must be bit-identical everywhere.

    ``kernel="compiled"`` cases run even when the extension is absent
    (they then exercise the documented silent fallback); the
    ``requires_compiled`` twin tests below assert the extension really
    was engaged.
    """

    @pytest.mark.parametrize("prefetcher_name", ALL_PREFETCHERS)
    def test_every_registered_prefetcher_every_kernel(self, prefetcher_name):
        trace = _trace(length=1_200)
        reference = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name),
            batch="off", kernel="python",
        )
        for batch in ("off", "auto"):
            for kernel in KERNEL_MODES:
                candidate = simulate_trace(
                    trace, prefetcher=create_prefetcher(prefetcher_name),
                    batch=batch, kernel=kernel,
                )
                _assert_identical(
                    reference, candidate,
                    f"{prefetcher_name}, batch={batch}, kernel={kernel}",
                )

    @pytest.mark.parametrize("prefetcher_name", ["gaze", "vberti"])
    def test_state_knob_object_vs_flat(self, prefetcher_name):
        trace = _trace(generator="graph", seed=11, length=1_500)
        object_tier = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name, state="object"),
            batch="off",
        )
        flat_tier = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name, state="flat"),
            batch="off",
        )
        _assert_identical(object_tier, flat_tier, f"{prefetcher_name} state knob")

    def test_budget_and_warmup_boundaries_across_kernels(self):
        trace = _trace(generator="strided", seed=2, length=1_000)
        for kwargs in (
            {"max_instructions": 2_500},       # replayed budget
            {"warmup_instructions": 333},      # warm-up boundary
            {"max_instructions": 5_000, "warmup_instructions": 1_111},
        ):
            reference = simulate_trace(
                trace, prefetcher=create_prefetcher("gaze"),
                batch="off", kernel="python", **kwargs,
            )
            for kernel in ("auto", "compiled"):
                candidate = simulate_trace(
                    trace, prefetcher=create_prefetcher("gaze"),
                    batch="auto", kernel=kernel, **kwargs,
                )
                _assert_identical(reference, candidate, f"{kwargs}, {kernel}")

    def test_unknown_kernel_mode_rejected(self):
        with pytest.raises(ValueError):
            simulate_trace(_trace(length=64), kernel="jit")
        with pytest.raises(ValueError):
            resolve_kernel(create_prefetcher("gaze"), "jit")


# --------------------------------------------------------------------------- #
# Compiled-twin substitution rules
# --------------------------------------------------------------------------- #
class TestCompiledTwin:
    def test_non_flat_prefetchers_have_no_twin(self):
        assert compiled_twin(create_prefetcher("gaze", state="object")) is None
        assert compiled_twin(create_prefetcher("bop")) is None
        assert compiled_twin(None) is None

    @requires_compiled
    def test_flat_prefetchers_get_compiled_twins(self):
        from repro.prefetchers.compiled import (
            CompiledBertiPrefetcher,
            CompiledGazePrefetcher,
        )

        gaze_twin = compiled_twin(FlatGazePrefetcher())
        berti_twin = compiled_twin(FlatBertiPrefetcher())
        assert isinstance(gaze_twin, CompiledGazePrefetcher)
        assert isinstance(berti_twin, CompiledBertiPrefetcher)
        # Already-compiled instances pass through untouched.
        assert compiled_twin(gaze_twin) is gaze_twin

    @requires_compiled
    def test_unrepresentable_configs_fall_back(self):
        # 128 blocks per region exceeds the C kernels' 64-bit footprint
        # masks; the twin must decline rather than truncate.
        wide = FlatGazePrefetcher(GazeConfig(region_size=128 * 64))
        assert compiled_twin(wide) is None
        deep = FlatBertiPrefetcher(history_per_pc=80)
        assert compiled_twin(deep) is None

    @requires_compiled
    def test_resolve_kernel_swaps_in_the_twin(self):
        from repro.prefetchers.compiled import CompiledGazePrefetcher

        flat = FlatGazePrefetcher()
        assert isinstance(resolve_kernel(flat, "compiled"), CompiledGazePrefetcher)
        assert resolve_kernel(flat, "python") is flat
        assert resolve_kernel(flat, "auto") is flat
        assert resolve_kernel(None, "compiled") is None

    @requires_compiled
    def test_compiled_gaze_counters_match_python(self):
        trace = _trace(generator="mixed", seed=8, length=2_000)
        flat = create_prefetcher("gaze", state="flat")
        comp = compiled_twin(flat)
        simulate_trace(trace, prefetcher=flat)
        simulate_trace(trace, prefetcher=comp)
        # The C-side counters sync onto the instance at the documented
        # points: drain() and pht_hit_rate access.
        assert flat.pht_hit_rate == comp.pht_hit_rate
        for attr in (
            "pht_lookups", "pht_hits", "pht_updates", "pht_predictions",
            "streaming_predictions", "backup_activations", "promotions",
        ):
            assert getattr(flat, attr) == getattr(comp, attr), attr

    @requires_compiled
    def test_compiled_reset_restores_initial_state(self):
        trace = _trace(length=800)
        fresh = compiled_twin(create_prefetcher("gaze", state="flat"))
        used = compiled_twin(create_prefetcher("gaze", state="flat"))
        first = simulate_trace(trace, prefetcher=used)
        used.reset()
        again = simulate_trace(trace, prefetcher=used)
        baseline = simulate_trace(trace, prefetcher=fresh)
        _assert_identical(first, again, "reset round-trip")
        _assert_identical(baseline, again, "reset vs fresh instance")


# --------------------------------------------------------------------------- #
# Chunked streaming against the scalar streamed path
# --------------------------------------------------------------------------- #
class TestChunkedStreaming:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        accesses = _trace(generator="streaming", seed=6, length=1_800)
        path = tmp_path / "chunked.gzt.gz"
        trace_formats.save_trace_file(iter(accesses), str(path))
        return trace_formats.TraceFile(str(path))

    def test_chunk_sizes_are_bounded_and_complete(self, trace_file):
        chunks = list(trace_file.decode_batched_chunks(chunk_accesses=300))
        assert all(len(chunk) <= 300 for chunk in chunks)
        assert sum(len(chunk) for chunk in chunks) == 1_800
        whole = trace_file.decode_batched()
        flattened = [access for chunk in chunks for access in chunk]
        assert flattened == list(whole)

    def test_stream_signals_end_of_pass_once_then_reopens(self, trace_file):
        stream = ChunkedTraceStream(trace_file, chunk_accesses=700)
        first_pass = 0
        while stream.next_chunk() is not None:
            first_pass += 1
        assert first_pass == 3  # 700 + 700 + 400
        assert stream.next_chunk() is not None  # re-opened, not exhausted

    def test_empty_source_yields_none(self):
        stream = ChunkedTraceStream([])
        assert stream.next_chunk() is None
        assert stream.next_chunk() is None

    def test_nonpositive_chunk_size_rejected(self, trace_file):
        with pytest.raises(ValueError):
            ChunkedTraceStream(trace_file, chunk_accesses=0)

    @pytest.mark.parametrize("prefetcher_name", ["none", "gaze", "vberti"])
    def test_streamed_equality_tiny_chunks(self, trace_file, prefetcher_name):
        scalar = simulate_trace(
            trace_file, prefetcher=create_prefetcher(prefetcher_name),
            batch="off",
        )
        for chunk_accesses in (64, 509):
            chunked = simulate_trace(
                ChunkedTraceStream(trace_file, chunk_accesses=chunk_accesses),
                prefetcher=create_prefetcher(prefetcher_name),
            )
            _assert_identical(
                scalar, chunked, f"{prefetcher_name}, chunk={chunk_accesses}"
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_instructions": 9_000},  # budget beyond one pass: replay
            {"warmup_instructions": 1_234},
            {"max_instructions": 6_000, "warmup_instructions": 2_000},
        ],
    )
    def test_budgets_and_warmup_across_pass_boundaries(self, trace_file, kwargs):
        scalar = simulate_trace(
            trace_file, prefetcher=create_prefetcher("gaze"),
            batch="off", **kwargs,
        )
        chunked = simulate_trace(
            ChunkedTraceStream(trace_file, chunk_accesses=450),
            prefetcher=create_prefetcher("gaze"), **kwargs,
        )
        _assert_identical(scalar, chunked, f"chunked stream, {kwargs}")

    def test_file_trace_auto_batch_takes_chunked_path(self, trace_file):
        # batch="auto" over a re-openable file source must now match the
        # materialized batched kernel bit-for-bit (it used to run scalar).
        materialized = simulate_trace(
            list(iter(trace_file)), prefetcher=create_prefetcher("gaze"),
            batch="on",
        )
        streamed = simulate_trace(
            trace_file, prefetcher=create_prefetcher("gaze"), batch="auto"
        )
        _assert_identical(materialized, streamed, "file trace, batch=auto")
