"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.config import default_system_config
from repro.sim.types import AccessType, MemoryAccess
from repro.workloads import make_trace


def sequential_trace(num_blocks: int = 256, pc: int = 0x400100, gap: int = 4):
    """A simple fully-sequential trace touching ``num_blocks`` blocks once."""
    return [
        MemoryAccess(pc=pc, address=block * 64, access_type=AccessType.LOAD,
                     instr_gap=gap)
        for block in range(0x10000, 0x10000 + num_blocks)
    ]


@pytest.fixture(scope="session")
def small_system():
    """Single-core system configuration used across tests."""
    return default_system_config(1)


@pytest.fixture(scope="session")
def spatial_trace():
    """A small spatial-recurrence trace (shared to keep the suite fast)."""
    return make_trace("spatial", seed=1, length=6_000)


@pytest.fixture(scope="session")
def streaming_trace():
    """A small streaming trace."""
    return make_trace("streaming", seed=2, length=6_000)


@pytest.fixture(scope="session")
def cloud_trace():
    """A small cloud-like trace."""
    return make_trace("cloud", seed=3, length=6_000)


@pytest.fixture(scope="session")
def seq_trace():
    """Deterministic sequential trace of 256 blocks."""
    return sequential_trace()
