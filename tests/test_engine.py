"""Tests for the job-based experiment engine.

Covers the acceptance properties of the engine refactor:

* job keys are deterministic, schema-salted and parameter-sensitive;
* the parallel executor is bit-identical to the serial one;
* the persistent cache round-trips results exactly and its hit counters
  make warm runs observable;
* cache invalidation on salt / parameter changes.
"""

from __future__ import annotations

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, build_engine
from repro.experiments.executors import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from repro.experiments.jobs import SimulationJob, execute_job
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.prefetchers.registry import create_prefetcher
from repro.sim.config import SystemConfig, default_system_config
from repro.sim.stats import PrefetchStats, SimulationStats
from repro.workloads.suites import trace_specs_for_suite
from repro.workloads.trace import TraceSpec

SCALE = RunScale(trace_length=1_000, traces_per_suite=1)


def _specs(n=2):
    return trace_specs_for_suite("spec17")[:n]


def _job(spec=None, prefetcher="ip-stride", **overrides) -> SimulationJob:
    spec = spec if spec is not None else _specs(1)[0]
    defaults = dict(
        spec=spec,
        prefetcher=prefetcher,
        system=default_system_config(1),
        trace_length=1_000,
    )
    defaults.update(overrides)
    return SimulationJob(**defaults)


class TestJobKeys:
    def test_key_is_deterministic(self):
        assert _job().key() == _job().key()

    def test_key_covers_prefetcher(self):
        assert _job(prefetcher="ip-stride").key() != _job(prefetcher="gaze").key()

    def test_key_covers_trace_length(self):
        assert _job().key() != _job(trace_length=2_000).key()

    def test_key_covers_prefetcher_params(self):
        plain = _job(prefetcher="gaze")
        tuned = _job(prefetcher="gaze", prefetcher_params=(("region_size", 512),))
        assert plain.key() != tuned.key()

    def test_key_covers_salt(self):
        assert _job().key("a") != _job().key("b")

    def test_key_covers_full_system_config(self):
        # The old ExperimentRunner._system_key hashed only six fields, so
        # systems differing in MSHRs or latencies collided.  Content keys
        # must distinguish them.
        base = default_system_config(1)
        from dataclasses import replace

        more_mshrs = replace(base, l2c=replace(base.l2c, mshrs=64))
        slower = replace(base, llc=replace(base.llc, latency=30))
        keys = {
            _job(system=base).key(),
            _job(system=more_mshrs).key(),
            _job(system=slower).key(),
        }
        assert len(keys) == 3

    def test_system_config_roundtrip(self):
        config = default_system_config(4)
        rebuilt = SystemConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.content_key() == config.content_key()

    def test_trace_spec_roundtrip(self):
        spec = TraceSpec(
            name="t", suite="s", generator="streaming",
            params={"num_arrays": 2}, seed=7, length=123,
        )
        rebuilt = TraceSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.content_key() == spec.content_key()


class TestStatsRoundTrip:
    def test_simulation_stats_roundtrip_exact(self):
        stats = execute_job(_job(prefetcher="gaze"))
        rebuilt = SimulationStats.from_dict(stats.to_dict())
        assert rebuilt == stats
        assert rebuilt.ipc == stats.ipc

    def test_prefetch_stats_roundtrip(self):
        stats = PrefetchStats(generated=5, issued=4, useful_l1=2, late=1)
        assert PrefetchStats.from_dict(stats.to_dict()) == stats


class TestSerialParallelDeterminism:
    def test_fig11_style_grid_identical_rows(self):
        """The acceptance property: parallel rows == serial rows, exactly."""
        specs = _specs(2)
        prefetchers = ("vberti", "pmp", "gaze")

        serial = ExperimentRunner(SCALE, use_cache=False)
        parallel = ExperimentRunner(SCALE, jobs=2, use_cache=False)

        serial_rows = [r.row() for r in serial.run_grid(specs, prefetchers)]
        parallel_rows = [r.row() for r in parallel.run_grid(specs, prefetchers)]
        assert serial_rows == parallel_rows
        # Both actually simulated (no cache involved).
        assert serial.engine.simulations_run == len(specs) * (len(prefetchers) + 1)
        assert parallel.engine.simulations_run == serial.engine.simulations_run

    def test_executors_agree_on_job_batch(self):
        jobs = [_job(spec, "ip-stride") for spec in _specs(2)]
        serial_stats = SerialExecutor().run(jobs)
        parallel_stats = ParallelExecutor(jobs=2).run(jobs)
        assert [s.to_dict() for s in serial_stats] == [
            s.to_dict() for s in parallel_stats
        ]

    def test_make_executor_selection(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        executor = make_executor(3)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 3


class TestPersistentCache:
    def test_cache_round_trip_skips_simulation(self, tmp_path):
        specs = _specs(2)
        prefetchers = ("ip-stride", "gaze")
        cache_dir = str(tmp_path / "cache")

        cold = ExperimentRunner(SCALE, cache_dir=cache_dir, use_cache=True)
        cold_rows = [r.row() for r in cold.run_grid(specs, prefetchers)]
        expected_jobs = len(specs) * (len(prefetchers) + 1)
        assert cold.engine.simulations_run == expected_jobs
        assert cold.engine.cache.stores == expected_jobs

        warm = ExperimentRunner(SCALE, cache_dir=cache_dir, use_cache=True)
        warm_rows = [r.row() for r in warm.run_grid(specs, prefetchers)]
        assert warm.engine.simulations_run == 0
        assert warm.engine.cache.hits == expected_jobs
        assert warm_rows == cold_rows

    def test_in_process_memo_dedupes_repeated_grids(self, tmp_path):
        runner = ExperimentRunner(SCALE, cache_dir=str(tmp_path), use_cache=True)
        specs = _specs(1)
        runner.run_grid(specs, ("ip-stride",))
        first = runner.engine.simulations_run
        runner.run_grid(specs, ("ip-stride",))  # fig6/7/8 share grids like this
        assert runner.engine.simulations_run == first
        assert runner.engine.memo_hits > 0

    def test_salt_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        engine = ExperimentEngine(cache=cache, salt="v1")
        job = _job()
        engine.run_job(job)
        assert engine.simulations_run == 1

        stale = ExperimentEngine(cache=ResultCache(tmp_path / "c"), salt="v2")
        stale.run_job(job)
        assert stale.simulations_run == 1  # salted key missed the v1 entry

        fresh = ExperimentEngine(cache=ResultCache(tmp_path / "c"), salt="v1")
        fresh.run_job(job)
        assert fresh.simulations_run == 0

    def test_parameter_change_invalidates(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "c"))
        engine.run_job(_job(trace_length=1_000))
        engine.run_job(_job(trace_length=1_200))
        assert engine.simulations_run == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        job = _job()
        key = job.key()
        ExperimentEngine(cache=cache).run_job(job)
        path = cache.path_for(key)
        path.write_text("{ not json", encoding="utf-8")

        engine = ExperimentEngine(cache=ResultCache(tmp_path / "c"))
        engine.run_job(job)
        assert engine.simulations_run == 1  # corrupt entry re-simulated
        assert not path.read_text(encoding="utf-8").startswith("{ not")

    def test_cache_info_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        ExperimentEngine(cache=cache).run_job(_job())
        info = cache.info()
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert cache.clear() == 1
        assert cache.info()["entries"] == 0

    def test_disabled_cache_runs_without_disk(self):
        engine = build_engine(use_cache=False)
        assert engine.cache is None
        engine.run_job(_job())
        assert engine.simulations_run == 1


class TestEngineBatching:
    def test_batch_results_align_with_jobs(self):
        engine = build_engine(use_cache=False)
        specs = _specs(2)
        jobs = [_job(specs[0], "none"), _job(specs[1], "none"),
                _job(specs[0], "none")]  # duplicate on purpose
        results = engine.run_jobs(jobs)
        assert len(results) == 3
        assert results[0] is results[2]  # duplicate answered from memo
        assert engine.simulations_run == 2
        assert engine.memo_hits == 1  # the intra-batch duplicate is counted

    def test_run_one_none_returns_baseline_object(self):
        runner = ExperimentRunner(SCALE, use_cache=False)
        result = runner.run_one(_specs(1)[0], "none")
        assert result.stats is result.baseline
        assert result.speedup == pytest.approx(1.0)


class TestConfiguredPrefetcherCreation:
    def test_create_prefetcher_with_params(self):
        gaze = create_prefetcher("gaze", region_size=512)
        assert gaze.config.region_size == 512

    def test_create_prefetcher_without_params_unchanged(self):
        gaze = create_prefetcher("gaze")
        assert gaze.config.region_size == 4096

    def test_composite_rejects_params(self):
        with pytest.raises(ValueError):
            create_prefetcher("ip-stride+gaze", region_size=512)

    def test_engine_runs_configured_gaze(self):
        engine = build_engine(use_cache=False)
        stats = engine.run_job(
            _job(prefetcher="gaze", prefetcher_params=(("region_size", 512),))
        )
        assert stats.instructions > 0
