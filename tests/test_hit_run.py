"""Hit-run retirement regression suite, driven by temporal-reuse traces.

The batched kernel retires dense L1-hit runs through two fused paths:
:meth:`repro.sim.cache.Cache.demand_hit_run` (residency scan + batched LRU
touches) and :meth:`repro.sim.cpu.CoreTimingModel.advance_hit_run` (the
aggregate timing advance).  The temporal-reuse generators are what actually
produce such runs — ring traffic re-touches a small slot window and a
resident pointer cycle replays its node blocks — so this suite uses them
to pin three things:

* ``advance_hit_run`` against its own documented reference semantics (the
  scalar ``advance_non_memory`` / ``begin_memory_access`` /
  ``complete_memory_access`` loop), including runs that start with
  long-latency completions still outstanding;
* batched == scalar == streamed bit-identity at run lengths straddling the
  chunk boundary (``DEFAULT_CHUNK_ACCESSES``), with instruction budgets and
  warm-up cuts landing mid-run;
* that the temporal traces *engage* the fast path at all — asserted via an
  instrumented ``Cache.demand_hit_run``, not assumed — and that the
  engaged runs retire a substantial share of the trace.
"""

from __future__ import annotations

import pytest

from repro.prefetchers import create_prefetcher
from repro.sim.batch import DEFAULT_CHUNK_ACCESSES
from repro.sim.cache import Cache
from repro.sim.cpu import CoreTimingModel
from repro.sim.config import default_system_config
from repro.sim.simulator import simulate_trace
from repro.workloads import formats as trace_formats
from repro.workloads.trace import TraceSpec

CHUNK = DEFAULT_CHUNK_ACCESSES


def _trace(generator, seed=11, length=4_000, **params):
    return TraceSpec(
        name=f"{generator}-s{seed}", suite="test", generator=generator,
        seed=seed, length=length, params=params,
    ).build()


def _stats_dict(stats):
    data = stats.to_dict()
    data.pop("extra", None)
    return data


def _assert_identical(reference, candidate, label):
    assert _stats_dict(reference) == _stats_dict(candidate), (
        f"batched kernel diverged from the scalar kernel ({label})"
    )


def _core_model():
    return CoreTimingModel(default_system_config(1).core)


def _scalar_run(model, gaps, start, count, latency):
    """The documented reference semantics of ``advance_hit_run``."""
    for i in range(start, start + count):
        model.advance_non_memory(gaps[i])
        model.begin_memory_access()
        model.complete_memory_access(latency)


# --------------------------------------------------------------------------- #
# advance_hit_run vs its scalar reference semantics
# --------------------------------------------------------------------------- #
class TestAdvanceHitRunReference:
    GAPS = ([0, 1, 3, 0, 0, 7, 2, 0, 5, 1, 0, 0, 4, 9, 0, 2] * 40)

    @pytest.mark.parametrize("latency", [1, 4, 25, 180])
    def test_matches_scalar_loop(self, latency):
        # Latencies either side of the miss threshold: 1/4 never enter the
        # outstanding-miss queue, 25/180 do (and 180 stalls retirement).
        reference, aggregate = _core_model(), _core_model()
        _scalar_run(reference, self.GAPS, 0, len(self.GAPS), latency)
        aggregate.advance_hit_run(self.GAPS, 0, len(self.GAPS), latency)
        assert aggregate.snapshot() == reference.snapshot()
        assert aggregate.finalize() == reference.finalize()

    def test_start_and_count_select_a_slice(self):
        reference, aggregate = _core_model(), _core_model()
        _scalar_run(reference, self.GAPS, 37, 200, 4)
        aggregate.advance_hit_run(self.GAPS, 37, 200, 4)
        assert aggregate.finalize() == reference.finalize()

    def test_run_starting_with_outstanding_long_misses(self):
        # The constraint checks must stay inside the loop: a hit run can
        # begin while DRAM-latency completions are still in flight, and
        # those completions retire *during* the run.
        reference, aggregate = _core_model(), _core_model()
        for model in (reference, aggregate):
            for _ in range(12):
                model.advance_non_memory(2)
                model.begin_memory_access()
                model.complete_memory_access(250)
        _scalar_run(reference, self.GAPS, 0, 300, 1)
        aggregate.advance_hit_run(self.GAPS, 0, 300, 1)
        assert aggregate.snapshot() == reference.snapshot()
        assert aggregate.finalize() == reference.finalize()

    def test_back_to_back_runs_compose(self):
        # Two aggregate runs with an interleaved miss equal one scalar
        # history: the model state carried across run boundaries is
        # complete.
        reference, aggregate = _core_model(), _core_model()
        _scalar_run(reference, self.GAPS, 0, 150, 1)
        reference.advance_non_memory(3)
        reference.begin_memory_access()
        reference.complete_memory_access(195)
        _scalar_run(reference, self.GAPS, 151, 150, 1)
        aggregate.advance_hit_run(self.GAPS, 0, 150, 1)
        aggregate.advance_non_memory(3)
        aggregate.begin_memory_access()
        aggregate.complete_memory_access(195)
        aggregate.advance_hit_run(self.GAPS, 151, 150, 1)
        assert aggregate.finalize() == reference.finalize()

    def test_zero_count_is_a_no_op(self):
        model = _core_model()
        before = model.snapshot()
        model.advance_hit_run(self.GAPS, 0, 0, 1)
        assert model.snapshot() == before


# --------------------------------------------------------------------------- #
# Batched == scalar == streamed at chunk-boundary run lengths
# --------------------------------------------------------------------------- #
class TestChunkBoundaryEquality:
    @pytest.mark.parametrize(
        "length", [CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 17]
    )
    def test_ring_trace_identical_across_kernels(self, length):
        # Ring traffic produces hit runs dense enough that the chunk edge
        # lands inside one for every length here.
        trace = _trace("ring", length=length)
        scalar = simulate_trace(trace, batch="off")
        batched = simulate_trace(trace, batch="on")
        _assert_identical(scalar, batched, f"ring, length={length}")

    def test_resident_pointer_cycle_with_triangel(self):
        # A temporal prefetcher in the loop: prefetch side effects and hit
        # runs interleave across the chunk boundary.
        trace = _trace(
            "temporal-pointer", length=CHUNK + 1, num_nodes=256,
            noise_fraction=0.02,
        )
        scalar = simulate_trace(
            trace, prefetcher=create_prefetcher("triangel"), batch="off"
        )
        batched = simulate_trace(
            trace, prefetcher=create_prefetcher("triangel"), batch="on"
        )
        _assert_identical(scalar, batched, "temporal-pointer/triangel")

    @pytest.mark.parametrize("max_instructions", [10_007, 20_011])
    def test_budget_cut_lands_mid_run(self, max_instructions):
        # Odd budgets on a hit-dense trace: exhaustion lands inside a run,
        # so the batched kernel must retire a *partial* run identically.
        trace = _trace("ring", length=12_000)
        scalar = simulate_trace(
            trace, batch="off", max_instructions=max_instructions
        )
        batched = simulate_trace(
            trace, batch="on", max_instructions=max_instructions
        )
        _assert_identical(scalar, batched, f"budget={max_instructions}")
        assert scalar.instructions <= max_instructions + 64

    def test_warmup_cut_lands_mid_run(self):
        trace = _trace("ring", length=12_000)
        scalar = simulate_trace(
            trace, batch="off", warmup_instructions=5_003
        )
        batched = simulate_trace(
            trace, batch="on", warmup_instructions=5_003
        )
        _assert_identical(scalar, batched, "warmup=5003")

    def test_warmup_and_budget_together(self):
        trace = _trace("temporal-pointer", length=12_000, num_nodes=256)
        scalar = simulate_trace(
            trace, batch="off", warmup_instructions=5_003,
            max_instructions=30_011,
        )
        batched = simulate_trace(
            trace, batch="on", warmup_instructions=5_003,
            max_instructions=30_011,
        )
        _assert_identical(scalar, batched, "warmup+budget")

    def test_streamed_shapes_identical(self, tmp_path):
        # The same trace through a file: replayed stream, decoded-batched
        # stream, and eager batched all match the materialized scalar run.
        length = CHUNK + 1
        trace = _trace("ring", length=length)
        path = tmp_path / "ring.gzt.gz"
        trace_formats.save_trace_file(iter(trace), str(path))
        spec = TraceSpec.from_file(
            str(path), name="ring-stream", suite="test", length=length
        )
        scalar = simulate_trace(trace, batch="off")
        _assert_identical(
            scalar, simulate_trace(spec.replayable(), batch="off"),
            "streamed scalar",
        )
        _assert_identical(
            scalar, simulate_trace(spec.batched()), "spec.batched()"
        )
        _assert_identical(
            scalar, simulate_trace(spec.replayable(), batch="on"),
            "batch=on over a stream",
        )


# --------------------------------------------------------------------------- #
# The fast path actually engages on temporal traces (asserted, not assumed)
# --------------------------------------------------------------------------- #
class TestDemandHitRunEngagement:
    def _spy(self, monkeypatch):
        counters = {"calls": 0, "retired": 0}
        original = Cache.demand_hit_run

        def spy(cache, blocks, kinds, gaps, start, stop, instruction_limit):
            run, instructions = original(
                cache, blocks, kinds, gaps, start, stop, instruction_limit
            )
            counters["calls"] += 1
            counters["retired"] += run
            return run, instructions

        monkeypatch.setattr(Cache, "demand_hit_run", spy)
        return counters

    def test_ring_trace_engages_the_fast_path(self, monkeypatch):
        counters = self._spy(monkeypatch)
        trace = _trace("ring", length=6_000)
        stats = simulate_trace(trace)  # batch="auto" must pick the kernel
        assert counters["calls"] > 0, (
            "the batched kernel never probed for a hit run on a ring trace"
        )
        # Ring reuse is dense (>0.8 within an L1-sized window): the fast
        # path must retire a substantial share of the trace, not a token
        # run or two.
        assert counters["retired"] > len(trace) // 4
        assert stats.l1_hits >= counters["retired"]

    def test_resident_pointer_cycle_engages_the_fast_path(self, monkeypatch):
        counters = self._spy(monkeypatch)
        trace = _trace("temporal-pointer", length=6_000, num_nodes=256)
        simulate_trace(trace)
        assert counters["calls"] > 0
        assert counters["retired"] > len(trace) // 8

    def test_instrumented_run_matches_the_scalar_kernel(self, monkeypatch):
        # Ties engagement to correctness: the very runs the spy observed
        # produce statistics bit-identical to the scalar kernel's.
        trace = _trace("ring", length=6_000)
        scalar = simulate_trace(trace, batch="off")
        counters = self._spy(monkeypatch)
        batched = simulate_trace(trace, batch="on")
        assert counters["calls"] > 0
        _assert_identical(scalar, batched, "instrumented ring run")
