"""Unit tests for the prefetch queue and the statistics containers."""

import pytest

from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.stats import MultiCoreStats, PrefetchStats, SimulationStats, geometric_mean
from repro.sim.types import PrefetchRequest


class TestPrefetchQueue:
    def test_fifo_order(self):
        queue = PrefetchQueue(capacity=8)
        for i in range(4):
            queue.push(PrefetchRequest(address=i * 64), cycle=i)
        drained = queue.drain(limit=4)
        assert [q.request.address for q in drained] == [0, 64, 128, 192]

    def test_capacity_drop(self):
        queue = PrefetchQueue(capacity=2)
        assert queue.push(PrefetchRequest(address=0), 0)
        assert queue.push(PrefetchRequest(address=64), 0)
        assert not queue.push(PrefetchRequest(address=128), 0)
        assert queue.dropped_full == 1

    def test_drain_limit_default(self):
        queue = PrefetchQueue(capacity=16, drain_per_access=3)
        for i in range(10):
            queue.push(PrefetchRequest(address=i * 64), 0)
        assert len(queue.drain()) == 3
        assert len(queue) == 7

    def test_drain_all(self):
        queue = PrefetchQueue(capacity=16)
        for i in range(5):
            queue.push(PrefetchRequest(address=i * 64), 0)
        assert len(queue.drain_all()) == 5
        assert len(queue) == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PrefetchQueue(capacity=0)
        with pytest.raises(ValueError):
            PrefetchQueue(capacity=4, drain_per_access=0)

    def test_is_full(self):
        queue = PrefetchQueue(capacity=1)
        assert not queue.is_full
        queue.push(PrefetchRequest(address=0), 0)
        assert queue.is_full

    def test_clear(self):
        queue = PrefetchQueue(capacity=4)
        queue.push(PrefetchRequest(address=0), 0)
        queue.clear()
        assert len(queue) == 0


class TestPrefetchStats:
    def test_accuracy_no_fills(self):
        stats = PrefetchStats()
        assert stats.accuracy == 0.0

    def test_accuracy_combines_levels(self):
        stats = PrefetchStats(filled_l1=4, filled_l2=4, useful_l1=3, useful_l2=1)
        assert stats.accuracy == pytest.approx(0.5)
        assert stats.useful == 4
        assert stats.filled == 8

    def test_accuracy_clamped_to_one(self):
        stats = PrefetchStats(filled_l1=1, useful_l1=2)
        assert stats.accuracy == 1.0

    def test_late_fraction(self):
        stats = PrefetchStats(filled_l1=10, useful_l1=5, late=1)
        assert stats.late_fraction == pytest.approx(0.2)
        assert PrefetchStats().late_fraction == 0.0


class TestSimulationStats:
    def test_ipc(self):
        stats = SimulationStats(instructions=1000, cycles=500)
        assert stats.ipc == 2.0
        assert SimulationStats().ipc == 0.0

    def test_mpki(self):
        stats = SimulationStats(instructions=10_000, llc_misses=50)
        assert stats.llc_mpki == pytest.approx(5.0)

    def test_speedup(self):
        base = SimulationStats(instructions=1000, cycles=1000)
        fast = SimulationStats(instructions=1000, cycles=500)
        assert fast.speedup(base) == pytest.approx(2.0)

    def test_coverage_with_baseline(self):
        base = SimulationStats(llc_misses=100)
        run = SimulationStats(llc_misses=40)
        assert run.coverage(base) == pytest.approx(0.6)

    def test_coverage_clamped(self):
        base = SimulationStats(llc_misses=10)
        worse = SimulationStats(llc_misses=20)
        assert worse.coverage(base) == 0.0

    def test_coverage_online_counter(self):
        run = SimulationStats(llc_misses=50)
        run.prefetch.covered_llc_misses = 50
        assert run.coverage() == pytest.approx(0.5)

    def test_summary_keys(self):
        summary = SimulationStats(instructions=10, cycles=10).summary()
        assert {"ipc", "accuracy", "coverage", "late_fraction"} <= set(summary)

    def test_average_demand_latency(self):
        stats = SimulationStats(demand_accesses=4, total_demand_latency=100)
        assert stats.average_demand_latency == 25.0


class TestMultiCoreStats:
    def test_geomean_speedup(self):
        base = MultiCoreStats(per_core={
            0: SimulationStats(instructions=100, cycles=100),
            1: SimulationStats(instructions=100, cycles=100),
        })
        run = MultiCoreStats(per_core={
            0: SimulationStats(instructions=100, cycles=50),
            1: SimulationStats(instructions=100, cycles=200),
        })
        assert run.geomean_speedup(base) == pytest.approx(1.0)

    def test_num_cores(self):
        stats = MultiCoreStats(per_core={0: SimulationStats(), 1: SimulationStats()})
        assert stats.num_cores == 2

    def test_geometric_mean_helper(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        assert geometric_mean([0.0, 4.0]) == pytest.approx(4.0)
