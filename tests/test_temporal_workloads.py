"""Property tests for the temporal-reuse workload generators.

Three properties per generator: seeded determinism (same spec, same
accesses; different seed, different accesses), measurable temporal reuse
where the spatial generators have none (the whole reason these exist),
and exact round-trips through every trace format x compression pair.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

from repro.workloads import formats as trace_formats
from repro.workloads.formats import COMPRESSIONS, FORMATS
from repro.workloads.trace import TraceSpec

TEMPORAL_GENERATORS = ("temporal-pointer", "ring", "hash-probe")

_COMPRESSION_SUFFIX = {"none": "", "gzip": ".gz", "xz": ".xz"}


def _build(generator, seed=9, length=1_500, **params):
    return TraceSpec(
        name=f"{generator}-s{seed}", suite="test", generator=generator,
        seed=seed, length=length, params=params,
    ).build()


def _fingerprint(trace):
    return [(a.pc, a.address, a.access_type, a.instr_gap) for a in trace]


def _window_reuse_fraction(trace, window=512):
    """Fraction of accesses whose block was touched within the last
    ``window`` distinct blocks — an LRU-stack proxy for L1-level temporal
    reuse."""
    recent: OrderedDict = OrderedDict()
    hits = 0
    for access in trace:
        block = access.address // 64
        if block in recent:
            hits += 1
            recent.move_to_end(block)
        else:
            recent[block] = True
            if len(recent) > window:
                recent.popitem(last=False)
    return hits / len(trace)


# --------------------------------------------------------------------------- #
# Determinism and the generator contract
# --------------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize("generator", TEMPORAL_GENERATORS)
    def test_same_seed_is_bit_identical(self, generator):
        assert _fingerprint(_build(generator)) == _fingerprint(_build(generator))

    @pytest.mark.parametrize("generator", TEMPORAL_GENERATORS)
    def test_different_seeds_differ(self, generator):
        first = _fingerprint(_build(generator, seed=9))
        second = _fingerprint(_build(generator, seed=10))
        assert first != second

    @pytest.mark.parametrize("generator", TEMPORAL_GENERATORS)
    @pytest.mark.parametrize("length", [1, 7, 503, 1_203])
    def test_exact_length(self, generator, length):
        assert len(_build(generator, length=length)) == length


# --------------------------------------------------------------------------- #
# Reuse-distance sanity: temporal traces reuse, spatial traces do not
# --------------------------------------------------------------------------- #
class TestTemporalReuse:
    def test_ring_reuses_within_l1_window(self):
        assert _window_reuse_fraction(_build("ring", length=2_000)) > 0.8

    def test_hash_probe_hot_keys_reuse(self):
        assert _window_reuse_fraction(_build("hash-probe", length=2_000)) > 0.4

    def test_small_pointer_cycle_reuses(self):
        trace = _build("temporal-pointer", length=2_000, num_nodes=256)
        assert _window_reuse_fraction(trace) > 0.7

    def test_default_pointer_cycle_exceeds_the_window_by_design(self):
        # The default working set is deliberately larger than the reuse
        # window: the *miss sequence* recurs (what temporal prefetchers
        # replay) even though no block is near-reused.
        trace = _build("temporal-pointer", length=2_000)
        assert _window_reuse_fraction(trace) < 0.1

    @pytest.mark.parametrize("generator", ["spatial", "strided"])
    def test_spatial_generators_have_no_temporal_reuse(self, generator):
        assert _window_reuse_fraction(_build(generator, length=2_000)) < 0.05

    def test_pointer_chase_reuses_less_than_every_temporal_generator(self):
        chase = _window_reuse_fraction(_build("pointer-chase", length=2_000))
        assert chase < 0.35

    def test_pointer_cycle_miss_sequence_recurs_exactly(self):
        # With noise off, the traversal replays the same block sequence
        # pass after pass — the address-pair correlation the temporal
        # prefetchers depend on.
        nodes = 400
        trace = _build(
            "temporal-pointer", length=3 * nodes, num_nodes=nodes,
            noise_fraction=0.0,
        )
        blocks = [a.address // 64 for a in trace]
        assert blocks[:nodes] == blocks[nodes:2 * nodes] == blocks[2 * nodes:]

    def test_ring_slot_addresses_recur_with_the_ring_period(self):
        trace = _build("ring", length=2_000, slots=64, burst=4, lag=16)
        loads_by_pc: dict = {}
        for access in trace:
            loads_by_pc.setdefault(access.pc, []).append(access.address // 64)
        # Some PC (a slot-access PC) must revisit the same block set more
        # than once: ring traffic is periodic, not streaming.
        assert any(
            len(set(blocks)) <= len(blocks) // 2
            for blocks in loads_by_pc.values()
            if len(blocks) > 64
        )


# --------------------------------------------------------------------------- #
# Format round-trips
# --------------------------------------------------------------------------- #
class TestFormatRoundTrips:
    @pytest.mark.parametrize("generator", TEMPORAL_GENERATORS)
    @pytest.mark.parametrize("format_name", sorted(FORMATS))
    @pytest.mark.parametrize("compression", COMPRESSIONS)
    def test_round_trip_exact(self, tmp_path, generator, format_name,
                              compression):
        trace = _build(generator, length=400)
        extension = FORMATS[format_name].suffixes[0]
        suffix = _COMPRESSION_SUFFIX[compression]
        path = tmp_path / f"trace{extension}{suffix}"
        trace_formats.save_trace_file(
            iter(trace), str(path), format=format_name,
            compression=compression,
        )
        loaded = trace_formats.load_trace_file(str(path))
        assert _fingerprint(loaded) == _fingerprint(trace)
