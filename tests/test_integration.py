"""End-to-end integration tests across the full stack."""

import pytest

from repro.prefetchers import available_prefetchers, create_prefetcher
from repro.sim import default_system_config, simulate_mix, simulate_trace
from repro.workloads import make_trace


MAIN_NAMES = (
    "ip-stride", "spp-ppf", "ipcp", "vberti", "sms", "bingo", "dspatch", "pmp", "gaze",
)


class TestEveryPrefetcherRuns:
    @pytest.mark.parametrize("name", sorted(available_prefetchers()))
    def test_runs_on_spatial_trace(self, name, spatial_trace):
        stats = simulate_trace(
            spatial_trace[:2000], prefetcher=create_prefetcher(name)
        )
        assert stats.cycles > 0
        assert stats.instructions > 0
        assert 0.0 <= stats.prefetch.accuracy <= 1.0
        assert stats.prefetch.filled >= stats.prefetch.useful

    @pytest.mark.parametrize("name", MAIN_NAMES)
    def test_runs_on_cloud_trace(self, name, cloud_trace):
        stats = simulate_trace(cloud_trace[:2000], prefetcher=create_prefetcher(name))
        assert stats.demand_accesses == 2000


class TestMetricConsistency:
    @pytest.mark.parametrize("name", ("gaze", "pmp", "bingo", "vberti"))
    def test_prefetch_accounting_consistent(self, name, spatial_trace):
        stats = simulate_trace(spatial_trace, prefetcher=create_prefetcher(name))
        prefetch = stats.prefetch
        assert prefetch.issued <= prefetch.generated
        assert prefetch.useful <= prefetch.filled + 1
        assert prefetch.late <= prefetch.useful
        assert prefetch.covered_llc_misses <= prefetch.useful
        assert (
            prefetch.generated
            == prefetch.issued
            + prefetch.dropped_queue_full
            + prefetch.redundant
            + prefetch.dropped_mshr_full
            or prefetch.generated >= prefetch.issued
        )

    def test_hit_counters_sum_to_accesses(self, spatial_trace):
        stats = simulate_trace(spatial_trace, prefetcher=create_prefetcher("gaze"))
        served = stats.l1_hits + stats.l2_hits + stats.llc_hits + stats.llc_misses
        assert served == stats.demand_accesses

    def test_prefetching_never_increases_llc_misses_much(self, streaming_trace):
        base = simulate_trace(streaming_trace, prefetcher=None)
        gaze = simulate_trace(streaming_trace, prefetcher=create_prefetcher("gaze"))
        assert gaze.llc_misses <= base.llc_misses * 1.05

    def test_determinism_with_prefetcher(self, cloud_trace):
        first = simulate_trace(cloud_trace[:3000], prefetcher=create_prefetcher("gaze"))
        second = simulate_trace(cloud_trace[:3000], prefetcher=create_prefetcher("gaze"))
        assert first.cycles == second.cycles
        assert first.prefetch.issued == second.prefetch.issued


class TestSystemSensitivityDirections:
    def test_more_bandwidth_helps_baseline(self, streaming_trace):
        from dataclasses import replace

        slow_cfg = default_system_config(1)
        slow_cfg = replace(slow_cfg, dram=replace(slow_cfg.dram, transfer_rate_mtps=800))
        fast_cfg = default_system_config(1)
        fast_cfg = replace(fast_cfg, dram=replace(fast_cfg.dram, transfer_rate_mtps=12800))
        slow = simulate_trace(streaming_trace, prefetcher=None, config=slow_cfg)
        fast = simulate_trace(streaming_trace, prefetcher=None, config=fast_cfg)
        assert fast.ipc >= slow.ipc

    def test_bigger_llc_reduces_misses(self, cloud_trace):
        from dataclasses import replace

        small_cfg = default_system_config(1)
        small_cfg = replace(
            small_cfg, llc=replace(small_cfg.llc, size_bytes=512 * 1024)
        )
        big_cfg = default_system_config(1)
        big_cfg = replace(big_cfg, llc=replace(big_cfg.llc, size_bytes=8 * 1024 * 1024))
        small = simulate_trace(cloud_trace, prefetcher=None, config=small_cfg)
        big = simulate_trace(cloud_trace, prefetcher=None, config=big_cfg)
        assert big.llc_misses <= small.llc_misses


class TestMultiCoreIntegration:
    def test_homogeneous_four_core_gaze(self):
        trace = make_trace("streaming", seed=9, length=4000)
        config = default_system_config(4)
        baseline = simulate_mix([trace] * 4, None, config, 10_000)
        gaze = simulate_mix(
            [trace] * 4, lambda: create_prefetcher("gaze"), config, 10_000
        )
        speedup = gaze.geomean_speedup(baseline)
        assert speedup > 0.9

    def test_heterogeneous_mix_all_cores_progress(self):
        traces = [
            make_trace("streaming", seed=1, length=3000),
            make_trace("cloud", seed=2, length=3000),
            make_trace("graph", seed=3, length=3000),
            make_trace("pointer-chase", seed=4, length=3000),
        ]
        run = simulate_mix(
            traces, lambda: create_prefetcher("gaze"), default_system_config(4), 8_000
        )
        for stats in run.per_core.values():
            assert stats.instructions >= 8_000
            assert stats.ipc > 0
