"""Compiled batched driver loop: equivalence, engagement, tier reporting.

Under ``kernel="compiled"`` the simulator hands whole batched chunks to the
C ``DriverKernel`` (:mod:`repro.sim.driver`) for the bare no-prefetcher run
and the four designs with full C twins (vberti, gaze, pmp, triangel);
everything else silently falls back to the Python driver.  Both paths must
be *bit-identical* for every statistic and for the complete hierarchy state
the driver syncs back on detach — caches (contents, flags and LRU order),
MSHR file, prefetch queue, DRAM bank/row/channel timing and the core model.

These tests pin that equivalence over every registered prefetcher, over
chunked file-backed streams with warmup/budget cuts landing mid-run and
MSHR fills straddling chunk boundaries, the tier bookkeeping that makes a
fallen-back "compiled" run visible, and the PMP/Triangel train twins the
driver dispatches to.

All equality assertions hold whether or not the extension is built (the
fallback is the identity); tests that require the C driver to *engage* are
skipped when it is absent.
"""

from __future__ import annotations

import pytest

from repro.experiments.bench import BENCH_SCHEMA, BenchCase
from repro.prefetchers import available_prefetchers, create_prefetcher
from repro.prefetchers.compiled import compiled_available, compiled_twin
from repro.sim.batch import ChunkedTraceStream
from repro.sim.driver import driver_available
from repro.sim.simulator import (
    SingleCoreSimulator,
    resolve_kernel,
    simulate_trace,
)
from repro.workloads import formats as trace_formats
from repro.workloads.trace import TraceSpec

requires_driver = pytest.mark.skipif(
    not driver_available(), reason="compiled driver kernel not built"
)
requires_compiled = pytest.mark.skipif(
    not compiled_available(), reason="compiled extension not built"
)

DRIVER_PREFETCHERS = ("none", "vberti", "gaze", "pmp", "triangel")


def _trace(generator="spatial", seed=11, length=1_200):
    return TraceSpec(
        name=f"{generator}-s{seed}", suite="test", generator=generator,
        seed=seed, length=length,
    ).build()


def _stats_dict(stats):
    data = stats.to_dict()
    data.pop("extra", None)
    return data


def _assert_identical(reference, candidate, label):
    assert _stats_dict(reference) == _stats_dict(candidate), (
        f"compiled driver diverged from the Python driver ({label})"
    )


def _prefetcher(name):
    return None if name == "none" else create_prefetcher(name)


def _run(trace, name, kernel, **kwargs):
    return simulate_trace(
        trace, prefetcher=_prefetcher(name), kernel=kernel, **kwargs
    )


# --------------------------------------------------------------------------- #
# Statistics equivalence
# --------------------------------------------------------------------------- #
class TestDriverEquivalence:
    @pytest.mark.parametrize("prefetcher_name", sorted(available_prefetchers()))
    def test_every_registered_prefetcher(self, prefetcher_name):
        trace = _trace(length=900)
        scalar = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name),
            kernel="python", batch="off",
        )
        python = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name),
            kernel="python",
        )
        compiled = simulate_trace(
            trace, prefetcher=create_prefetcher(prefetcher_name),
            kernel="compiled",
        )
        _assert_identical(scalar, python, f"{prefetcher_name}, python batched")
        _assert_identical(scalar, compiled, f"{prefetcher_name}, compiled")

    @pytest.mark.parametrize("generator", ["spatial", "streaming", "cloud"])
    def test_bare_none_fused_path(self, generator):
        trace = _trace(generator=generator, seed=3, length=1_500)
        scalar = simulate_trace(trace, batch="off")
        compiled = simulate_trace(trace, kernel="compiled")
        _assert_identical(scalar, compiled, f"{generator}, fused none")

    @pytest.mark.parametrize("name", DRIVER_PREFETCHERS)
    @pytest.mark.parametrize(
        "warmup,budget", [(0, 997), (250, None), (500, 1_503), (0, 100_000)]
    )
    def test_warmup_and_budget_cuts_mid_run(self, name, warmup, budget):
        # Budgets inside a pass, warmup boundaries mid-hit-run, and a
        # budget past one pass (replay wrap) must all cut at the exact
        # access the Python driver cuts at.
        trace = _trace(generator="streaming", seed=5, length=1_000)
        reference = _run(trace, name, "python",
                         warmup_instructions=warmup, max_instructions=budget)
        compiled = _run(trace, name, "compiled",
                        warmup_instructions=warmup, max_instructions=budget)
        _assert_identical(
            reference, compiled, f"{name}, warmup={warmup}, budget={budget}"
        )


# --------------------------------------------------------------------------- #
# Chunked / file-backed streams
# --------------------------------------------------------------------------- #
class TestChunkedDriver:
    @pytest.mark.parametrize("name", ["gaze", "pmp"])
    def test_small_chunks_with_straddling_fills(self, name):
        # chunk_accesses far below the trace length: prefetch fills issued
        # near the end of one chunk become ready inside the next, so the
        # driver's exported MSHR state must round-trip between run_batch
        # calls at exactly the scalar fill cycles.
        trace = _trace(generator="spatial", seed=7, length=2_000)
        scalar = _run(trace, name, "python", batch="off")
        chunked = simulate_trace(
            ChunkedTraceStream(trace, chunk_accesses=64),
            prefetcher=_prefetcher(name), kernel="compiled",
        )
        _assert_identical(scalar, chunked, f"{name}, 64-access chunks")
        assert scalar.prefetch.filled_l1 + scalar.prefetch.filled_l2 > 0

    @pytest.mark.parametrize(
        "warmup,budget", [(0, 777), (300, None), (150, 2_111)]
    )
    def test_chunked_budget_and_warmup_cuts(self, warmup, budget):
        trace = _trace(generator="cloud", seed=9, length=1_500)
        reference = simulate_trace(
            trace, prefetcher=_prefetcher("vberti"), kernel="python",
            warmup_instructions=warmup, max_instructions=budget,
        )
        chunked = simulate_trace(
            ChunkedTraceStream(trace, chunk_accesses=128),
            prefetcher=_prefetcher("vberti"), kernel="compiled",
            warmup_instructions=warmup, max_instructions=budget,
        )
        _assert_identical(
            reference, chunked, f"chunked, warmup={warmup}, budget={budget}"
        )

    def test_file_backed_stream(self, tmp_path):
        trace = _trace(generator="streaming", seed=13, length=900)
        path = tmp_path / "driver.gzt.gz"
        trace_formats.save_trace_file(iter(trace), str(path))
        spec = TraceSpec.from_file(str(path), name="driver", suite="test",
                                   length=900)
        scalar = _run(trace, "triangel", "python", batch="off")
        streamed = simulate_trace(
            spec.replayable(), prefetcher=_prefetcher("triangel"),
            kernel="compiled",
        )
        _assert_identical(scalar, streamed, "file-backed stream, triangel")


# --------------------------------------------------------------------------- #
# Hierarchy state after detach
# --------------------------------------------------------------------------- #
def _hierarchy_state(sim):
    def cache_state(cache):
        return [
            [
                (entry.block, entry.prefetched, entry.prefetch_useful,
                 entry.from_dram, entry.dirty, entry.useful_counted)
                for entry in cache_set.values()
            ]
            for cache_set in cache._sets
        ]

    h = sim.hierarchy
    return {
        "l1d": cache_state(h.l1d),
        "l2c": cache_state(h.l2c),
        "llc": cache_state(h.llc),
        "mshr": sorted(
            (e.block, e.ready_cycle, e.is_prefetch, e.from_dram)
            for e in h.l1_mshr._entries.values()
        ),
        "mshr_min_ready": h.l1_mshr._min_ready,
        "pq": [
            (request.address, request.hint, cycle)
            for request, cycle in h.prefetch_queue._queue
        ],
        "dram": (
            dict(h.dram._open_row),
            dict(h.dram._bank_busy_until),
            list(h.dram._channel_busy_until),
        ),
        "core": (
            sim.core._instr_count,
            sim.core._fetch_cycle,
            sim.core._last_retire_cycle,
            list(sim.core._outstanding),
            list(sim.core._outstanding_misses),
        ),
    }


class TestDriverStateSync:
    @requires_driver
    @pytest.mark.parametrize("name", DRIVER_PREFETCHERS)
    def test_detach_restores_exact_hierarchy_state(self, name):
        # Not just the counters: cache contents in LRU order with all five
        # flag bits, in-flight MSHR entries, queued prefetches, DRAM
        # bank/row/channel timing and the core model must match what the
        # Python driver leaves behind.
        trace = _trace(generator="spatial", seed=17, length=1_500)
        sims = {}
        for kernel in ("python", "compiled"):
            sim = SingleCoreSimulator(
                prefetcher=resolve_kernel(_prefetcher(name), kernel),
                kernel=kernel,
            )
            sim.run(trace)
            sims[kernel] = sim
        assert _hierarchy_state(sims["python"]) == _hierarchy_state(
            sims["compiled"]
        ), f"hierarchy state diverged after detach ({name})"

    @requires_driver
    def test_compiled_driver_actually_engaged(self):
        sim = SingleCoreSimulator(kernel="compiled")
        sim.run(_trace(length=400))
        assert sim.kernel_tier_used == "compiled-driver"
        assert sim.kernel_decline_reason is None


# --------------------------------------------------------------------------- #
# Tier recording
# --------------------------------------------------------------------------- #
class TestTierRecording:
    @requires_driver
    @pytest.mark.parametrize("name", DRIVER_PREFETCHERS)
    def test_driver_designs_record_compiled_driver(self, name):
        stats = _run(_trace(length=400), name, "compiled", record_tier=True)
        assert stats.extra["kernel_tier"] == "compiled-driver"
        assert "kernel_decline_reason" not in stats.extra

    def test_scalar_path_declines_with_reason(self):
        stats = simulate_trace(
            _trace(length=400), kernel="compiled", batch="off",
            record_tier=True,
        )
        assert stats.extra["kernel_tier"] != "compiled-driver"
        assert "scalar" in stats.extra["kernel_decline_reason"]

    @requires_driver
    def test_non_twin_design_declines_with_reason(self):
        stats = simulate_trace(
            _trace(length=400), prefetcher=create_prefetcher("ghb"),
            kernel="compiled", record_tier=True,
        )
        assert stats.extra["kernel_tier"] == "python"
        assert stats.extra["kernel_decline_reason"]

    @requires_driver
    def test_registry_none_object_declines(self):
        # Only a bare ``prefetcher=None`` runs the fused no-prefetcher
        # loop; the registry's NoPrefetcher *object* still trains through
        # the generic path and must decline honestly.
        stats = simulate_trace(
            _trace(length=400), prefetcher=create_prefetcher("none"),
            kernel="compiled", record_tier=True,
        )
        assert stats.extra["kernel_tier"] == "python"
        assert stats.extra["kernel_decline_reason"]

    def test_default_run_leaves_extra_untouched(self):
        stats = simulate_trace(_trace(length=400), kernel="compiled")
        assert "kernel_tier" not in stats.extra

    def test_python_kernel_records_python(self):
        stats = simulate_trace(
            _trace(length=400), kernel="python", record_tier=True
        )
        assert stats.extra["kernel_tier"] == "python"
        assert "kernel_decline_reason" not in stats.extra


# --------------------------------------------------------------------------- #
# Debug-assertion builds (REPRO_DEBUG_KERNELS=1)
# --------------------------------------------------------------------------- #
class TestDebugKernels:
    """The invariant-assertion tier of the extension.

    These tests run against whichever build is loaded: release builds
    export ``DEBUG_KERNELS == 0`` and skip the sweep entirely, debug
    builds run it at every Python boundary crossing.  The full
    equivalence suite above doubles as the bit-identity proof — the
    assertions are read-only, so a debug build must produce the exact
    statistics the release build (and the Python oracle) produce.
    """

    @requires_driver
    def test_debug_flag_exported(self):
        from repro import _kernels

        assert _kernels.DEBUG_KERNELS in (0, 1)

    @requires_driver
    def test_boundary_sweep_passes_on_real_runs(self):
        # Attach, chunked run, detach: every DRV_CHECK call site fires on
        # a debug build and must stay silent on healthy state.
        for name in DRIVER_PREFETCHERS:
            stats = _run(_trace(length=900), name, "compiled", record_tier=True)
            assert stats.extra["kernel_tier"] == "compiled-driver"

    @requires_driver
    def test_debug_build_rejects_corrupt_core_state(self):
        # The outstanding ring must be issue-position sorted; loading an
        # out-of-order ring is the one corruption reachable from Python
        # without poking C memory.  Release builds accept it silently
        # (the sweep is compiled out), debug builds refuse loudly.
        from repro import _kernels
        from repro.sim.driver import CompiledDriver

        sim = SingleCoreSimulator(kernel="compiled")
        driver, reason = CompiledDriver.try_attach(sim)
        assert driver is not None, reason
        unsorted_ring = [(10, 1.0), (5, 2.0)]
        if _kernels.DEBUG_KERNELS:
            with pytest.raises(AssertionError, match="not monotonic"):
                driver._kernel.load_core(0, 0.0, 0.0, 0.0, unsorted_ring, [])
        else:
            driver._kernel.load_core(0, 0.0, 0.0, 0.0, unsorted_ring, [])


# --------------------------------------------------------------------------- #
# PMP / Triangel train twins
# --------------------------------------------------------------------------- #
def _pmp_pair_and_blocks():
    from repro.prefetchers.pmp import PMPPrefetcher

    # Two sweeps over 80 regions with a dense head footprint: sweep one
    # overflows the 64-entry accumulation table so regions deactivate and
    # merge into the offset pattern table, sweep two triggers predictions
    # from the merged counters.
    blocks = []
    for region in range(80):
        base = region * 64
        blocks.extend([base, base + 1, base + 2, base + 3])
    return PMPPrefetcher(), PMPPrefetcher(), blocks * 2


def _triangel_pair_and_blocks():
    from repro.prefetchers.temporal import TriangelPrefetcher

    # Eager parameters (as in the temporal unit suite) so a recurring
    # sequence trains reuse confidence and the Markov pairs within a few
    # passes and predictions actually issue.
    def build():
        return TriangelPrefetcher(
            sample_rate=1, train_threshold=1, predict_threshold=1,
            distance=4, degree=2,
        )

    return build(), build(), list(range(0x5000, 0x5000 + 48)) * 3


@requires_compiled
class TestTrainTwins:
    @pytest.mark.parametrize(
        "builder", [_pmp_pair_and_blocks, _triangel_pair_and_blocks],
        ids=["pmp", "triangel"],
    )
    def test_twin_issues_identical_requests(self, builder):
        reference, template, blocks = builder()
        twin = compiled_twin(template)
        assert twin is not None and twin.name == reference.name
        issued_ref, issued_twin = [], []
        for cycle, block in enumerate(blocks):
            pc = 0x400 + (block % 7)
            ref_requests = reference.train(pc, block * 64, cycle)
            twin_requests = twin.train(pc, block * 64, cycle)
            issued_ref.extend((r.address, r.hint) for r in ref_requests)
            issued_twin.extend((r.address, r.hint) for r in twin_requests)
        assert issued_ref == issued_twin
        assert issued_ref, (
            f"{reference.name} twin-equivalence trace never issued"
        )


# --------------------------------------------------------------------------- #
# Bench tier hygiene
# --------------------------------------------------------------------------- #
class TestBenchTierHygiene:
    def test_case_key_is_tier_independent(self):
        # A compiled-tier snapshot must carry the same case keys as a
        # pure-Python one so compare_bench lines the tiers up
        # case-by-case instead of reporting key churn.
        keys = {
            BenchCase(kind="kernel", generator="spatial", seed=11,
                      prefetcher="gaze", kernel=kernel).key(40_000)
            for kernel in ("auto", "python", "compiled")
        }
        assert len(keys) == 1

    def test_schema_carries_the_tier_section(self):
        assert BENCH_SCHEMA >= 5
