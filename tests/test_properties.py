"""Property-based tests (hypothesis) for core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accumulation_table import GazeRegionEntry
from repro.core.gaze import GazePrefetcher
from repro.core.pattern_history import GazePatternHistoryTable
from repro.core.prefetch_buffer import GazePrefetchBuffer
from repro.prefetchers.spatial_common import (
    RegionTracker,
    footprint_population,
    footprint_to_offsets,
    offsets_to_footprint,
    rotate_footprint,
)
from repro.prefetchers.tables import LRUTable, SetAssociativeTable
from repro.sim.cache import Cache
from repro.sim.config import CacheConfig, DRAMConfig
from repro.sim.dram import DRAMModel
from repro.sim.types import (
    address_from_region_offset,
    block_offset_in_region,
    region_number,
)

offsets_strategy = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=64
)


class TestFootprintProperties:
    @given(offsets=offsets_strategy)
    def test_offsets_footprint_round_trip(self, offsets):
        footprint = offsets_to_footprint(offsets)
        assert set(footprint_to_offsets(footprint)) == set(offsets)
        assert footprint_population(footprint) == len(set(offsets))

    @given(offsets=offsets_strategy, shift=st.integers(min_value=-256, max_value=256))
    def test_rotation_preserves_population(self, offsets, shift):
        footprint = offsets_to_footprint(offsets)
        rotated = rotate_footprint(footprint, shift)
        assert footprint_population(rotated) == footprint_population(footprint)

    @given(offsets=offsets_strategy, shift=st.integers(min_value=-128, max_value=128))
    def test_rotation_is_invertible(self, offsets, shift):
        footprint = offsets_to_footprint(offsets)
        assert rotate_footprint(rotate_footprint(footprint, shift), -shift) == footprint

    @given(
        region=st.integers(min_value=0, max_value=1 << 30),
        offset=st.integers(min_value=0, max_value=63),
    )
    def test_region_offset_address_round_trip(self, region, offset):
        address = address_from_region_offset(region, offset)
        assert region_number(address) == region
        assert block_offset_in_region(address) == offset


class TestTableProperties:
    @given(keys=st.lists(st.integers(min_value=0, max_value=100), max_size=200),
           capacity=st.integers(min_value=1, max_value=16))
    def test_lru_table_never_exceeds_capacity(self, keys, capacity):
        table = LRUTable(capacity=capacity)
        for key in keys:
            table.put(key, key * 2)
            assert len(table) <= capacity
        # Every resident value is consistent with its key.
        for key, value in table.items():
            assert value == key * 2

    @given(keys=st.lists(
        st.tuples(st.integers(min_value=0, max_value=31),
                  st.integers(min_value=0, max_value=63)),
        max_size=200,
    ))
    def test_set_associative_bounds(self, keys):
        table = SetAssociativeTable(sets=8, ways=4)
        for set_index, tag in keys:
            table.put(set_index, tag, tag)
        assert len(table) <= table.capacity
        for set_index in range(8):
            assert len(table.entries_in_set(set_index)) <= 4

    @given(
        entries=st.lists(
            st.tuples(st.integers(min_value=0, max_value=63),
                      st.integers(min_value=0, max_value=63),
                      st.integers(min_value=0, max_value=(1 << 64) - 1)),
            max_size=100,
        )
    )
    def test_pht_prediction_only_after_learning(self, entries):
        pht = GazePatternHistoryTable()
        learned = {}
        for trigger, second, footprint in entries:
            pht.learn(trigger, second, footprint)
            learned[(trigger, second)] = footprint
        for (trigger, second), footprint in learned.items():
            prediction = pht.predict(trigger, second)
            # Either evicted (None) or exactly what was last learned.
            assert prediction is None or prediction == footprint


class TestCacheProperties:
    @given(blocks=st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                           max_size=300))
    @settings(max_examples=50)
    def test_cache_capacity_and_hit_consistency(self, blocks):
        cache = Cache(CacheConfig(name="P", size_bytes=16 * 64 * 2, ways=2,
                                  latency=1, mshrs=4))
        for block in blocks:
            hit, _ = cache.access(block)
            if not hit:
                cache.fill(block)
            assert len(cache) <= cache.config.total_blocks
            # A block just accessed/filled must be resident.
            assert cache.contains(block)

    @given(blocks=st.lists(st.integers(min_value=0, max_value=2000), min_size=1,
                           max_size=200),
           cycles=st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                           max_size=200))
    @settings(max_examples=30)
    def test_dram_latency_never_negative_and_busy_monotone(self, blocks, cycles):
        dram = DRAMModel(DRAMConfig())
        now = 0
        for block, gap in zip(blocks, cycles):
            now += gap
            latency = dram.access(block, now)
            assert latency >= 0
        assert dram.stats.requests == min(len(blocks), len(cycles))
        assert dram.stats.row_hits + dram.stats.row_misses == dram.stats.requests


class TestRegionTrackerProperties:
    @given(accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=63)),
        min_size=1, max_size=300,
    ))
    @settings(max_examples=50)
    def test_footprint_always_contains_initial_offsets(self, accesses):
        tracker = RegionTracker(accumulation_entries=4)
        collected = []
        for region, offset in accesses:
            _, _, deactivations, _ = tracker.observe(
                pc=1, address=region * 4096 + offset * 64
            )
            collected.extend(deactivations)
        collected.extend(tracker.drain())
        for event in collected:
            assert event.footprint & (1 << event.trigger_offset)
            assert event.footprint & (1 << event.second_offset)
            assert event.trigger_offset != event.second_offset
            assert footprint_population(event.footprint) >= 2


class TestGazeProperties:
    @given(accesses=st.lists(
        st.tuples(st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=63)),
        min_size=1, max_size=300,
    ))
    @settings(max_examples=30, deadline=None)
    def test_gaze_never_prefetches_demanded_initial_blocks(self, accesses):
        """Requests are always block-aligned, inside the region, and never for
        the trigger/second blocks the region was activated with."""
        gaze = GazePrefetcher()
        activations = {}
        for index, (region, offset) in enumerate(accesses):
            address = region * 4096 + offset * 64
            at_before = gaze.accumulation_table.lookup(region) is None
            requests = gaze.train(0x400, address, index * 10)
            entry = gaze.accumulation_table.lookup(region)
            if at_before and entry is not None:
                activations[region] = (entry.trigger_offset, entry.second_offset)
            for request in requests:
                assert request.address % 64 == 0
                req_region = request.address // 4096
                req_offset = (request.address % 4096) // 64
                assert 0 <= req_offset < 64
                if req_region in activations:
                    trigger, second = activations[req_region]
                    assert req_offset not in (trigger, second)

    @given(offsets=st.lists(st.integers(min_value=0, max_value=63), min_size=2,
                            max_size=80))
    @settings(max_examples=50)
    def test_region_entry_footprint_superset_of_accesses(self, offsets):
        entry = GazeRegionEntry(region=0, trigger_pc=0,
                                trigger_offset=offsets[0], second_offset=offsets[1])
        for offset in offsets:
            entry.record(offset)
        footprint_offsets = set(footprint_to_offsets(entry.footprint))
        assert footprint_offsets == set(offsets)


class TestPrefetchBufferProperties:
    @given(
        l1=st.lists(st.integers(min_value=0, max_value=63), max_size=64),
        l2=st.lists(st.integers(min_value=0, max_value=63), max_size=64),
    )
    @settings(max_examples=60)
    def test_no_offset_issued_twice(self, l1, l2):
        pb = GazePrefetchBuffer()
        pb.add_pattern(region=3, offsets_to_l1=l1, offsets_to_l2=l2)
        issued = []
        while True:
            batch = pb.pop_requests(3, 4096, limit=7)
            if not batch:
                break
            issued.extend((r.address % 4096) // 64 for r in batch)
        assert len(issued) == len(set(issued))
        assert set(issued) == set(l1) | set(l2)
