"""Unit tests for the DRAM timing/bandwidth model."""

import pytest

from repro.sim.config import DRAMConfig
from repro.sim.dram import DRAMModel


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        dram = DRAMModel(DRAMConfig())
        dram.access(block=0, cycle=0)
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 0

    def test_same_row_hits(self):
        dram = DRAMModel(DRAMConfig())
        dram.access(block=0, cycle=0)
        dram.access(block=8, cycle=1000)  # same bank, same row, far in time
        assert dram.stats.row_hits == 1

    def test_row_conflict_misses(self):
        dram = DRAMModel(DRAMConfig())
        config = DRAMConfig()
        blocks_per_row = config.row_buffer_bytes // 64
        dram.access(block=0, cycle=0)
        dram.access(block=blocks_per_row * 8, cycle=1000)  # same bank, new row
        assert dram.stats.row_misses == 2

    def test_row_hit_is_faster(self):
        dram = DRAMModel(DRAMConfig())
        miss_latency = dram.access(block=0, cycle=0)
        hit_latency = dram.access(block=8, cycle=10_000)
        assert hit_latency < miss_latency


class TestBandwidthContention:
    def test_burst_queues_on_channel(self):
        dram = DRAMModel(DRAMConfig())
        latencies = [dram.access(block=b, cycle=0) for b in range(64)]
        # The last request of a same-cycle burst must wait for the bus.
        assert latencies[-1] > latencies[0]
        assert dram.stats.total_queue_wait > 0

    def test_spread_requests_do_not_queue(self):
        dram = DRAMModel(DRAMConfig())
        latencies = [
            dram.access(block=b, cycle=b * 1000) for b in range(16)
        ]
        assert dram.stats.average_queue_wait == pytest.approx(0.0)
        assert max(latencies) <= DRAMConfig().row_miss_latency_cycles + 11

    def test_more_channels_less_contention(self):
        single = DRAMModel(DRAMConfig(channels=1))
        quad = DRAMModel(DRAMConfig(channels=4))
        single_last = [single.access(b, 0) for b in range(64)][-1]
        quad_last = [quad.access(b, 0) for b in range(64)][-1]
        assert quad_last < single_last

    def test_higher_transfer_rate_faster_burst(self):
        slow = DRAMModel(DRAMConfig(transfer_rate_mtps=800))
        fast = DRAMModel(DRAMConfig(transfer_rate_mtps=12800))
        slow_last = [slow.access(b, 0) for b in range(32)][-1]
        fast_last = [fast.access(b, 0) for b in range(32)][-1]
        assert fast_last < slow_last

    def test_latency_never_negative_and_time_monotone(self):
        dram = DRAMModel(DRAMConfig())
        busy_before = 0.0
        for index in range(100):
            latency = dram.access(block=index * 7, cycle=index * 3)
            assert latency >= 0
            busy_now = max(dram._channel_busy_until)
            assert busy_now >= busy_before
            busy_before = busy_now


class TestAccounting:
    def test_prefetch_vs_demand_counters(self):
        dram = DRAMModel(DRAMConfig())
        dram.access(0, 0, is_prefetch=True)
        dram.access(1, 0, is_prefetch=False)
        assert dram.stats.prefetch_requests == 1
        assert dram.stats.demand_requests == 1
        assert dram.stats.requests == 2

    def test_row_hit_rate(self):
        dram = DRAMModel(DRAMConfig())
        dram.access(0, 0)
        dram.access(8, 500)
        assert dram.stats.row_hit_rate == pytest.approx(0.5)

    def test_reset_clears_state(self):
        dram = DRAMModel(DRAMConfig())
        dram.access(0, 0)
        dram.reset()
        assert dram.stats.requests == 0
        assert max(dram._channel_busy_until) == 0.0

    def test_channel_mapping_is_interleaved(self):
        dram = DRAMModel(DRAMConfig(channels=2))
        assert dram.channel_of(0) == 0
        assert dram.channel_of(1) == 1
        assert dram.channel_of(2) == 0
