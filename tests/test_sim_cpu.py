"""Unit tests for the analytic core timing model."""

import pytest

from repro.sim.config import CoreConfig
from repro.sim.cpu import CoreTimingModel


def run_loads(core: CoreTimingModel, count: int, latency: int, gap: int = 0):
    for _ in range(count):
        core.advance_non_memory(gap)
        core.begin_memory_access()
        core.complete_memory_access(latency)
    return core.finalize()


class TestFrontEndBound:
    def test_all_hits_is_fetch_bound(self):
        core = CoreTimingModel(CoreConfig(width=4))
        instructions, cycles = run_loads(core, count=1000, latency=5, gap=3)
        ipc = instructions / cycles
        assert 3.0 <= ipc <= 4.0

    def test_width_scales_throughput(self):
        narrow = CoreTimingModel(CoreConfig(width=1))
        wide = CoreTimingModel(CoreConfig(width=8))
        n_instr, n_cycles = run_loads(narrow, 500, latency=5, gap=3)
        w_instr, w_cycles = run_loads(wide, 500, latency=5, gap=3)
        assert n_instr == w_instr
        assert w_cycles < n_cycles

    def test_non_memory_instructions_counted(self):
        core = CoreTimingModel(CoreConfig())
        core.advance_non_memory(100)
        core.begin_memory_access()
        core.complete_memory_access(1)
        instructions, _ = core.finalize()
        assert instructions == 101


class TestMemoryBound:
    def test_long_latency_reduces_ipc(self):
        fast = CoreTimingModel(CoreConfig())
        slow = CoreTimingModel(CoreConfig())
        _, fast_cycles = run_loads(fast, 500, latency=5, gap=2)
        _, slow_cycles = run_loads(slow, 500, latency=200, gap=2)
        assert slow_cycles > fast_cycles

    def test_mlp_limited_by_mshrs(self):
        few = CoreTimingModel(CoreConfig(max_outstanding_misses=2))
        many = CoreTimingModel(CoreConfig(max_outstanding_misses=64))
        _, few_cycles = run_loads(few, 300, latency=200, gap=2)
        _, many_cycles = run_loads(many, 300, latency=200, gap=2)
        assert many_cycles < few_cycles

    def test_mshr_bound_throughput(self):
        """With K MSHRs and latency L, miss throughput is at most K per L cycles."""
        config = CoreConfig(max_outstanding_misses=4)
        core = CoreTimingModel(config)
        count, latency = 400, 100
        _, cycles = run_loads(core, count, latency=latency, gap=0)
        minimum_cycles = (count / config.max_outstanding_misses) * latency
        assert cycles >= 0.9 * minimum_cycles

    def test_rob_limits_overlap(self):
        small = CoreTimingModel(CoreConfig(rob_size=8, max_outstanding_misses=64))
        large = CoreTimingModel(CoreConfig(rob_size=512, max_outstanding_misses=64))
        _, small_cycles = run_loads(small, 300, latency=150, gap=4)
        _, large_cycles = run_loads(large, 300, latency=150, gap=4)
        assert large_cycles < small_cycles

    def test_short_latency_does_not_occupy_mshr(self):
        core = CoreTimingModel(CoreConfig(max_outstanding_misses=1))
        _, cycles = run_loads(core, 400, latency=5, gap=3)
        ipc = 400 * 4 / cycles  # 3 gap + 1 load per iteration
        assert ipc > 2.0


class TestModelInvariants:
    def test_issue_cycles_monotonic(self):
        core = CoreTimingModel(CoreConfig())
        previous = -1
        for index in range(200):
            core.advance_non_memory(2)
            issue = core.begin_memory_access()
            assert issue >= previous
            previous = issue
            core.complete_memory_access(50 if index % 3 else 300)

    def test_finalize_waits_for_outstanding_loads(self):
        core = CoreTimingModel(CoreConfig())
        core.begin_memory_access()
        core.complete_memory_access(10_000)
        _, cycles = core.finalize()
        assert cycles >= 10_000

    def test_cycles_at_least_instructions_over_width(self):
        core = CoreTimingModel(CoreConfig(width=4))
        instructions, cycles = run_loads(core, 200, latency=5, gap=7)
        assert cycles >= instructions / 4 - 1

    def test_snapshot_progress(self):
        core = CoreTimingModel(CoreConfig())
        run_args = (core, 10, 5)
        for _ in range(10):
            core.begin_memory_access()
            core.complete_memory_access(5)
        snap = core.snapshot()
        assert snap.instructions == 10
        assert snap.cycles > 0

    def test_zero_gap_allowed(self):
        core = CoreTimingModel(CoreConfig())
        core.advance_non_memory(0)
        instructions, cycles = run_loads(core, 10, latency=5)
        assert instructions == 10
        assert cycles >= 1
