"""Fig. 13: multi-level (L1 + L2) prefetching combinations."""

from repro.experiments.figures import fig13_multilevel
from repro.experiments.reporting import format_rows
from repro.experiments.runner import ExperimentRunner, RunScale

from benchmarks.conftest import BENCH_TRACE_LENGTH, run_once


def test_fig13_multilevel(benchmark, tmp_path):
    # Slightly smaller scale: this figure simulates 13 prefetcher combinations.
    # A fresh cache dir keeps the recorded timing a simulation measurement.
    runner = ExperimentRunner(RunScale(trace_length=BENCH_TRACE_LENGTH,
                                       traces_per_suite=1),
                              cache_dir=str(tmp_path / "cache"))
    rows = run_once(benchmark, fig13_multilevel, runner)
    print("\nFig. 13: multi-level prefetching combinations")
    print(format_rows(rows))
    by_combo = {row["combination"]: row["speedup"] for row in rows}
    gaze_alone = by_combo["gaze(L1 only)"]
    # Gaze-based combinations sit among the best pairs, and no combination
    # pulls far ahead of Gaze alone (the paper's conclusion: multi-level
    # prefetching brings no considerable benefit over Gaze at L1).
    group1 = {k: v for k, v in by_combo.items()
              if k not in ("gaze(L1 only)",) and not k.startswith("ip-stride")}
    ranked = sorted(group1.values(), reverse=True)
    assert group1["gaze+bingo"] >= ranked[min(3, len(ranked) - 1)]
    assert abs(group1["gaze+bingo"] - gaze_alone) < 0.2
    # With a commercial IP-stride at L1, adding Gaze at L2 remains competitive.
    assert by_combo["ip-stride+gaze"] >= by_combo["ip-stride+spp-ppf"] - 0.05
