"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale (shorter traces, fewer traces per suite) so the whole harness completes
in minutes on a laptop.  Benchmarks print the rows/series they produce --
the printed output is the reproduction artefact; the timing measured by
pytest-benchmark documents the cost of regenerating it.

Scale can be increased with the ``REPRO_BENCH_TRACE_LENGTH`` and
``REPRO_BENCH_TRACES_PER_SUITE`` environment variables.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import ExperimentRunner, RunScale

BENCH_TRACE_LENGTH = int(os.environ.get("REPRO_BENCH_TRACE_LENGTH", "3000"))
BENCH_TRACES_PER_SUITE = int(os.environ.get("REPRO_BENCH_TRACES_PER_SUITE", "2"))


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Mark every benchmark in this directory as ``slow``.

    The figure/table reproductions dominate suite wall-time (~40s of the
    cold run), so the default run deselects them (``-m "not slow"`` in
    ``pyproject.toml``); CI runs them in a dedicated lane and locally they
    are a ``python -m pytest -m slow`` away.  The hook receives the whole
    session's items, so membership is filtered by path.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.slow)


def bench_scale() -> RunScale:
    """The RunScale used by all benchmarks."""
    return RunScale(
        trace_length=BENCH_TRACE_LENGTH,
        traces_per_suite=BENCH_TRACES_PER_SUITE,
    )


@pytest.fixture(scope="session")
def runner(tmp_path_factory) -> ExperimentRunner:
    """A session-wide runner so traces/baselines are shared across benches.

    Results are shared *within* the session (figures 6/7/8 reuse one grid via
    the engine memo and a session-local cache), but the persistent cache
    lives in a fresh temp directory so recorded timings always measure
    simulation, never stale JSON loads from an earlier invocation.
    """
    cache_dir = str(tmp_path_factory.mktemp("bench-cache"))
    return ExperimentRunner(bench_scale(), cache_dir=cache_dir)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
