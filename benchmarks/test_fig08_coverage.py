"""Fig. 8: LLC miss coverage and timeliness (late fraction) per suite."""

from repro.experiments.figures import fig8_coverage_timeliness
from repro.experiments.reporting import format_matrix

from benchmarks.conftest import run_once


def test_fig8_coverage_timeliness(benchmark, runner):
    result = run_once(benchmark, fig8_coverage_timeliness, runner)
    coverage, late = result["coverage"], result["late_fraction"]
    print("\nFig. 8: LLC miss coverage per suite")
    print(format_matrix(coverage))
    print("\nFig. 8 (lower bars): late-prefetch fraction per suite")
    print(format_matrix(late))
    # Gaze reaches a moderate-to-high coverage, at the level of (or above)
    # the accurate-but-narrow vBerti and in the same league as Bingo/PMP.
    assert coverage["gaze"]["avg"] >= coverage["vberti"]["avg"] - 0.05
    assert coverage["gaze"]["avg"] >= 0.5 * coverage["bingo"]["avg"]
    # On the cloud suite, Gaze covers clearly more misses than vBerti (§IV-B1).
    assert coverage["gaze"]["cloud"] >= coverage["vberti"]["cloud"]
    # Timeliness: waiting for the second access does not blow up lateness.
    assert late["gaze"]["avg"] <= 0.9
