"""Fig. 16: sensitivity to DRAM bandwidth, LLC size and L2C size."""

from repro.experiments.engine import build_engine
from repro.experiments.runner import RunScale
from repro.experiments.sweeps import sweep_dram_bandwidth, sweep_l2c_size, sweep_llc_size

from benchmarks.conftest import BENCH_TRACE_LENGTH, run_once

SWEEP_SCALE = RunScale(trace_length=BENCH_TRACE_LENGTH, traces_per_suite=1)
SWEEP_PREFETCHERS = ("vberti", "pmp", "gaze")
SWEEP_SUITES = ("spec17", "cloud", "ligra")


def _sweep_engine(tmp_path):
    # A fresh cache dir per test keeps the recorded timing a simulation
    # measurement instead of a warm-cache JSON load.
    return build_engine(cache_dir=str(tmp_path / "cache"))


def _print(title, results):
    print(f"\n{title}")
    for point, by_prefetcher in results.items():
        series = ", ".join(f"{k}={v:.3f}" for k, v in by_prefetcher.items())
        print(f"  {point}: {series}")


def test_fig16a_dram_bandwidth(benchmark, tmp_path):
    results = run_once(
        benchmark, sweep_dram_bandwidth,
        points=(800, 3200, 12800), prefetchers=SWEEP_PREFETCHERS,
        scale=SWEEP_SCALE, suites=SWEEP_SUITES, engine=_sweep_engine(tmp_path),
    )
    _print("Fig. 16a: speedup vs DRAM transfer rate (MT/s)", results)
    # Gaze adapts to both ends of the bandwidth range; the over-aggressive
    # PMP is the one that collapses when bandwidth shrinks.
    assert results[800]["gaze"] >= results[800]["pmp"]
    assert results[12800]["gaze"] >= results[12800]["pmp"] - 0.02
    assert results[12800]["gaze"] >= 1.0


def test_fig16b_llc_size(benchmark, tmp_path):
    results = run_once(
        benchmark, sweep_llc_size,
        points_mb=(0.5, 2, 8), prefetchers=SWEEP_PREFETCHERS,
        scale=SWEEP_SCALE, suites=SWEEP_SUITES, engine=_sweep_engine(tmp_path),
    )
    _print("Fig. 16b: speedup vs LLC size per core (MB)", results)
    for point in (0.5, 2, 8):
        assert results[point]["gaze"] >= results[point]["pmp"] - 0.02


def test_fig16c_l2c_size(benchmark, tmp_path):
    results = run_once(
        benchmark, sweep_l2c_size,
        points_kb=(128, 512, 1024), prefetchers=SWEEP_PREFETCHERS,
        scale=SWEEP_SCALE, suites=SWEEP_SUITES, engine=_sweep_engine(tmp_path),
    )
    _print("Fig. 16c: speedup vs L2C size (KB)", results)
    for point in (128, 512, 1024):
        assert results[point]["gaze"] >= results[point]["pmp"] - 0.02
