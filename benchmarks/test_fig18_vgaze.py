"""Fig. 18: vGaze with larger (virtual) region sizes."""

from repro.experiments.figures import fig18_vgaze
from repro.experiments.reporting import format_rows

from benchmarks.conftest import run_once


def test_fig18_vgaze(benchmark, runner):
    rows = run_once(
        benchmark, fig18_vgaze, runner,
        region_sizes_kb=(4, 16, 64),
        trace_names=("bwaves_s-like", "gcc_s-like", "xalancbmk_s-like",
                     "PageRank-like", "streamcluster-like"),
    )
    print("\nFig. 18: vGaze speedup normalised to the 4 KB configuration")
    print(format_rows(rows))
    # The paper's conclusion: naively enlarging the region is not a win --
    # most workloads see no benefit (only streaming-dominated traces can
    # profit), so the average normalised speedup stays close to or below 1.
    for size in ("16KB", "64KB"):
        average = sum(row[size] for row in rows) / len(rows)
        assert average < 1.15
    assert all(row["4KB"] == 1.0 for row in rows)
