"""Fig. 6: single-core speedup of the nine evaluated prefetchers per suite."""

from repro.experiments.figures import fig6_single_core_speedup
from repro.experiments.reporting import format_matrix

from benchmarks.conftest import run_once


def test_fig6_single_core_speedup(benchmark, runner):
    matrix = run_once(benchmark, fig6_single_core_speedup, runner)
    print("\nFig. 6: single-core speedup per suite (geometric mean)")
    print(format_matrix(matrix))
    # Shape checks mirroring the paper's headline results:
    # Gaze achieves the highest (or tied-highest) average speedup ...
    best = max(matrix, key=lambda name: matrix[name]["avg"])
    assert matrix["gaze"]["avg"] >= matrix[best]["avg"] - 0.03
    # ... outperforms the two most recent low-cost designs on average ...
    assert matrix["gaze"]["avg"] > matrix["pmp"]["avg"]
    assert matrix["gaze"]["avg"] > matrix["vberti"]["avg"]
    # ... and is one of the few designs that improves the cloud suite.
    assert matrix["gaze"]["cloud"] > 1.0
    assert matrix["pmp"]["cloud"] < 1.02
