"""Table V: qualitative comparison (hardware cost / simple / complex patterns)."""

from repro.experiments.reporting import format_rows
from repro.experiments.tables import table5_comparison

from benchmarks.conftest import run_once


def test_table5_comparison(benchmark, runner):
    rows = run_once(benchmark, table5_comparison, runner=runner)
    print("\nTable V: qualitative comparison (derived from measured results)")
    print(format_rows(rows))
    by_name = {row["prefetcher"]: row for row in rows}
    # Gaze: low cost, handles simple and complex patterns.
    assert by_name["gaze"]["low_hardware_cost"]
    assert by_name["gaze"]["simple_pattern_ok"]
    assert by_name["gaze"]["complex_pattern_ok"]
    # Bingo handles both but is not low-cost.
    assert not by_name["bingo"]["low_hardware_cost"]
    # PMP struggles with complex (cloud) patterns.
    assert not by_name["pmp"]["complex_pattern_ok"]
