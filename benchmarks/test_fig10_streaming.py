"""Fig. 10: effect of the streaming module (PHT4SS vs SM4SS vs full Gaze)."""

from repro.experiments.figures import fig10_streaming_module
from repro.experiments.reporting import format_rows

from benchmarks.conftest import run_once


def test_fig10_streaming_module(benchmark, runner):
    rows = run_once(benchmark, fig10_streaming_module, runner)
    print("\nFig. 10: streaming-module ablation on representative traces")
    print(format_rows(rows))
    by_trace = {row["trace"]: row for row in rows}
    # Initial-phase (pure streaming) traces: every setting captures the
    # stream (the paper finds them nearly identical; at benchmark scale the
    # learning warm-up leaves a modest gap).
    init = by_trace["PageRank-init-like"]
    assert init["sm4ss"] >= 1.0 and init["gaze"] >= 1.0
    assert abs(init["sm4ss"] - init["pht4ss"]) < 0.5
    # Full Gaze is at least as good as the streaming-only settings on average.
    avg = {name: sum(row[name] for row in rows) / len(rows)
           for name in ("pht4ss", "sm4ss", "gaze")}
    print(f"  averages: { {k: round(v, 3) for k, v in avg.items()} }")
    assert avg["gaze"] >= avg["pht4ss"] - 0.02
    assert avg["sm4ss"] >= avg["pht4ss"] - 0.05
