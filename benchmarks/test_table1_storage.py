"""Table I: Gaze's storage breakdown (4.46 KB total)."""

from repro.experiments.reporting import format_rows
from repro.experiments.tables import table1_gaze_storage

from benchmarks.conftest import run_once


def test_table1_gaze_storage(benchmark):
    rows = run_once(benchmark, table1_gaze_storage)
    print("\nTable I: Gaze storage breakdown (bytes)")
    print(format_rows(rows))
    total = next(r for r in rows if r["structure"] == "Total")
    assert abs(total["measured_bytes"] - total["paper_bytes"]) < 100
