"""Fig. 1: speedup of characterization schemes on Cloud vs SPEC17 + storage."""

from repro.experiments.figures import fig1_characterization
from repro.experiments.reporting import format_rows

from benchmarks.conftest import run_once


def test_fig1_characterization(benchmark, runner):
    rows = run_once(benchmark, fig1_characterization, runner)
    print("\nFig. 1: characterization schemes (speedup on cloud / spec17, storage)")
    print(format_rows(rows))
    by_scheme = {row["prefetcher"]: row for row in rows}
    # Shape checks from the paper's scatter plot:
    # coarse schemes (Offset/PMP) fall below 1.0 on cloud ...
    assert by_scheme["offset"]["cloud_speedup"] < 1.0
    assert by_scheme["pmp"]["cloud_speedup"] < 1.02
    # ... fine-grained schemes and Gaze improve cloud ...
    assert by_scheme["bingo"]["cloud_speedup"] > 1.0
    assert by_scheme["gaze"]["cloud_speedup"] > 1.0
    # ... and Gaze does it at ~4.5 KB while Bingo needs >100 KB.
    assert by_scheme["gaze"]["storage_kib"] < 6
    assert by_scheme["bingo"]["storage_kib"] > 100
