"""Fig. 12: GAP and QMM benchmark suites (vBerti / PMP / Gaze)."""

from repro.experiments.figures import fig12_gap_qmm
from repro.experiments.reporting import format_matrix

from benchmarks.conftest import run_once


def test_fig12_gap_qmm(benchmark, runner):
    matrix = run_once(benchmark, fig12_gap_qmm, runner)
    print("\nFig. 12: GAP and QMM speedups")
    print(format_matrix(matrix))
    # GAP (graph analytics): Gaze and vBerti improve; Gaze beats PMP.
    assert matrix["gaze"]["gap"] >= matrix["pmp"]["gap"]
    # QMM server workloads are instruction-miss bound: data prefetching gives
    # little to no improvement and the aggressive PMP is the most harmful.
    assert matrix["gaze"]["qmm-server"] >= matrix["pmp"]["qmm-server"]
    assert matrix["pmp"]["qmm-server"] < 1.05
    # QMM client workloads behave like SPEC-style compute: spatial prefetching pays off.
    assert matrix["gaze"]["qmm-client"] > 1.0
