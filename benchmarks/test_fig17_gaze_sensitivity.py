"""Fig. 17: sensitivity of Gaze to the region size and the PHT size."""

from repro.experiments.figures import fig17_gaze_sensitivity
from repro.experiments.reporting import format_rows

from benchmarks.conftest import run_once


def test_fig17_gaze_sensitivity(benchmark, runner):
    result = run_once(
        benchmark, fig17_gaze_sensitivity, runner,
        region_sizes=(1024, 2048, 4096),
        pht_sizes=(128, 256, 512),
        trace_names=("bwaves_s-like", "gcc_s-like", "PageRank-like",
                     "streamcluster-like"),
    )
    print("\nFig. 17a: speedup normalised to the 4 KB region baseline")
    print(format_rows(result["region_size"]))
    print("\nFig. 17b: speedup normalised to the 256-entry PHT baseline")
    print(format_rows(result["pht_size"]))
    # Smaller regions lose prefetch opportunities on average (paper: -9.1%,
    # -4.4% and -1.6% for 0.5/1/2 KB regions).
    region_rows = result["region_size"]
    avg_1kb = sum(row["1KB"] for row in region_rows) / len(region_rows)
    avg_4kb = sum(row["4KB"] for row in region_rows) / len(region_rows)
    assert avg_1kb <= avg_4kb + 0.02
    # The 256-entry PHT is within a couple of percent of larger tables.
    pht_rows = result["pht_size"]
    avg_512 = sum(row["512"] for row in pht_rows) / len(pht_rows)
    assert abs(avg_512 - 1.0) < 0.1
