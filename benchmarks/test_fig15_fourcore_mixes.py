"""Fig. 15 (+ Table VI): selected four-core heterogeneous mixes."""

from repro.experiments.figures import FOUR_CORE_MIXES, fig15_four_core_mixes
from repro.experiments.reporting import format_rows
from repro.experiments.tables import table6_four_core_mixes

from benchmarks.conftest import run_once


def test_fig15_four_core_mixes(benchmark, runner):
    print("\nTable VI: selected four-core mixes")
    print(format_rows(table6_four_core_mixes()))
    # Run a subset of the mixes at benchmark scale.
    mixes = {name: FOUR_CORE_MIXES[name] for name in ("mix1", "mix4", "mix5")}
    rows = run_once(
        benchmark,
        fig15_four_core_mixes,
        runner,
        prefetchers=("vberti", "pmp", "gaze"),
        trace_length=2500,
        max_instructions_per_core=9000,
        mixes=mixes,
    )
    print("\nFig. 15: per-core and average speedups on four-core mixes")
    print(format_rows(rows))
    by_key = {(row["mix"], row["prefetcher"]): row for row in rows}
    for mix in mixes:
        assert by_key[(mix, "gaze")]["avg"] >= by_key[(mix, "pmp")]["avg"] - 0.03
    # The cloud-only mix (mix5) is where the coarse-grained PMP suffers most.
    assert by_key[("mix5", "gaze")]["avg"] > by_key[("mix5", "pmp")]["avg"]
