"""Fig. 4: effect of the number of aligned initial accesses (1-4)."""

from repro.experiments.figures import fig4_initial_accesses
from repro.experiments.reporting import format_rows

from benchmarks.conftest import run_once


def test_fig4_initial_accesses(benchmark, runner):
    rows = run_once(benchmark, fig4_initial_accesses, runner)
    print("\nFig. 4: number of aligned initial accesses vs IPC/accuracy/coverage")
    print(format_rows(rows))
    by_n = {row["initial_accesses"]: row for row in rows}
    # Accuracy increases with the number of required aligned accesses ...
    assert by_n[2]["accuracy"] >= by_n[1]["accuracy"] - 0.02
    assert by_n[4]["accuracy"] >= by_n[1]["accuracy"]
    # ... while coverage (and eventually IPC) pays for waiting too long.
    assert by_n[4]["coverage"] <= by_n[2]["coverage"] + 0.05
