"""Perf smoke benchmark: cold vs. warm engine throughput on a fig11 grid.

Records the wall-clock of a standard fig11-style (trace x prefetcher) grid
run cold (every job simulated, results stored) and warm (every job answered
from the persistent cache), so future PRs have a trajectory to measure
orchestration overhead and cache effectiveness against.
"""

from __future__ import annotations

import time

from repro.experiments.reporting import print_rows
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.workloads.suites import trace_specs_for_suite

from benchmarks.conftest import BENCH_TRACE_LENGTH

GRID_PREFETCHERS = ("vberti", "pmp", "gaze")
GRID_TRACES = 4


def _grid_specs():
    return trace_specs_for_suite("spec17")[:GRID_TRACES]


def test_engine_cold_vs_warm_throughput(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("engine-cache"))
    scale = RunScale(trace_length=BENCH_TRACE_LENGTH, traces_per_suite=None)
    specs = _grid_specs()
    grid_jobs = len(specs) * (len(GRID_PREFETCHERS) + 1)

    cold_runner = ExperimentRunner(scale, cache_dir=cache_dir, use_cache=True)
    start = time.perf_counter()
    cold_results = cold_runner.run_grid(specs, GRID_PREFETCHERS)
    cold_seconds = time.perf_counter() - start
    assert cold_runner.engine.simulations_run == grid_jobs

    warm_runner = ExperimentRunner(scale, cache_dir=cache_dir, use_cache=True)
    start = time.perf_counter()
    warm_results = warm_runner.run_grid(specs, GRID_PREFETCHERS)
    warm_seconds = time.perf_counter() - start
    assert warm_runner.engine.simulations_run == 0
    assert warm_runner.engine.cache.hits == grid_jobs
    assert [r.row() for r in warm_results] == [r.row() for r in cold_results]

    print_rows(
        [
            {
                "grid": f"{len(specs)} traces x {len(GRID_PREFETCHERS)} prefetchers",
                "jobs": grid_jobs,
                "cold_s": cold_seconds,
                "warm_s": warm_seconds,
                "speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
                "sims_per_s_cold": grid_jobs / cold_seconds if cold_seconds else 0.0,
            }
        ],
        title="Engine throughput: cold vs warm cache (fig11-style grid)",
        precision=2,
    )
