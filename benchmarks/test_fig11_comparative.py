"""Fig. 11: per-trace speedup of vBerti, PMP and Gaze on representative traces."""

from repro.experiments.figures import fig11_comparative
from repro.experiments.metrics import geomean
from repro.experiments.reporting import format_rows

from benchmarks.conftest import run_once


def test_fig11_comparative(benchmark, runner):
    rows = run_once(benchmark, fig11_comparative, runner)
    print("\nFig. 11: vBerti vs PMP vs Gaze on representative traces")
    print(format_rows(rows))
    averages = {
        name: geomean(row[name] for row in rows) for name in ("vberti", "pmp", "gaze")
    }
    print(f"  geomean: { {k: round(v, 3) for k, v in averages.items()} }")
    # Gaze leads the three latest spatial prefetchers overall.
    assert averages["gaze"] >= averages["pmp"]
    assert averages["gaze"] >= averages["vberti"] - 0.01
    # PMP's worst-case degradation is deeper than Gaze's (paper: -27% vs -7%).
    worst_pmp = min(row["pmp"] for row in rows)
    worst_gaze = min(row["gaze"] for row in rows)
    assert worst_gaze >= worst_pmp
