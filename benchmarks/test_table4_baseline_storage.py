"""Table IV: configuration and storage overhead of the evaluated prefetchers."""

from repro.experiments.reporting import format_rows
from repro.experiments.tables import table4_baseline_storage

from benchmarks.conftest import run_once


def test_table4_baseline_storage(benchmark):
    rows = run_once(benchmark, table4_baseline_storage)
    print("\nTable IV: prefetcher storage overheads (KiB, measured vs paper)")
    print(format_rows(rows))
    by_name = {row["prefetcher"]: row for row in rows}
    # Shape: the fine-grained schemes are orders of magnitude larger than Gaze.
    assert by_name["bingo"]["measured_kib"] > 20 * by_name["gaze"]["measured_kib"]
    assert by_name["sms"]["measured_kib"] > 20 * by_name["gaze"]["measured_kib"]
    assert abs(by_name["gaze"]["measured_kib"] - 4.46) < 0.05
