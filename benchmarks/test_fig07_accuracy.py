"""Fig. 7: overall prefetch accuracy of the evaluated prefetchers per suite."""

from repro.experiments.figures import fig7_accuracy
from repro.experiments.reporting import format_matrix

from benchmarks.conftest import run_once


def test_fig7_accuracy(benchmark, runner):
    matrix = run_once(benchmark, fig7_accuracy, runner)
    print("\nFig. 7: prefetch accuracy per suite")
    print(format_matrix(matrix))
    # Gaze is among the most accurate designs, clearly above the coarse ones.
    assert matrix["gaze"]["avg"] > matrix["pmp"]["avg"]
    assert matrix["gaze"]["avg"] > matrix["dspatch"]["avg"]
    assert matrix["gaze"]["avg"] > matrix["spp-ppf"]["avg"]
    # vBerti serves the highest (or near-highest) accuracy.
    assert matrix["vberti"]["avg"] >= matrix["pmp"]["avg"]
