"""Fig. 14: multi-core performance (homogeneous and heterogeneous mixes)."""

from repro.experiments.figures import fig14_multicore

from benchmarks.conftest import run_once


def test_fig14_multicore(benchmark, runner):
    results = run_once(
        benchmark,
        fig14_multicore,
        runner,
        core_counts=(1, 2, 4),
        prefetchers=("vberti", "pmp", "gaze"),
        trace_length=2500,
        max_instructions_per_core=9000,
    )
    print("\nFig. 14: multi-core speedups (homogeneous / heterogeneous)")
    for kind, per_prefetcher in results.items():
        print(f"  {kind}:")
        for name, by_cores in per_prefetcher.items():
            series = ", ".join(f"{c}c={v:.3f}" for c, v in sorted(by_cores.items()))
            print(f"    {name:8s} {series}")
    homo = results["homogeneous"]
    hetero = results["heterogeneous"]
    # Gaze stays ahead of (or tied with) PMP at every core count as
    # bandwidth contention grows.
    for cores in (1, 2, 4):
        assert homo["gaze"][cores] >= homo["pmp"][cores] - 0.02
        assert hetero["gaze"][cores] >= hetero["pmp"][cores] - 0.02
    # Gaze keeps a positive gain in the four-core heterogeneous mix.
    assert hetero["gaze"][4] > 0.97
