"""Fig. 9: Offset vs Gaze-PHT vs full Gaze across all traces (S-curve)."""

from repro.experiments.figures import fig9_characterization_effect

from benchmarks.conftest import run_once


def test_fig9_characterization_effect(benchmark, runner):
    result = run_once(benchmark, fig9_characterization_effect, runner)
    averages = result["averages"]
    series = result["series"]
    print("\nFig. 9: per-trace speedup series (sorted) and geomean averages")
    for name, values in series.items():
        preview = ", ".join(f"{v:.2f}" for v in values)
        print(f"  {name:9s}: {preview}")
    print(f"  averages: { {k: round(v, 3) for k, v in averages.items()} }")
    # Paper ordering: Offset < Gaze-PHT <= full Gaze on average.
    assert averages["gaze-pht"] > averages["offset"]
    assert averages["gaze"] >= averages["gaze-pht"] - 0.02
