/* Compiled kernel tier: C twins of the flat prefetcher train loops.
 *
 * This module re-hosts the state machines of
 * ``repro.prefetchers.arrays.FlatBertiPrefetcher`` and
 * ``FlatGazePrefetcher`` in C.  It is an *optional* accelerator: the
 * Python flat implementations remain the bit-exact oracle, and
 * ``repro.prefetchers.compiled`` falls back to them when this extension
 * has not been built (``python setup.py build_ext --inplace``).
 *
 * Bit-exactness contract
 * ----------------------
 * Every LRU touch point, eviction order, tie-break and threshold
 * comparison of the flat Python implementations is replicated operation
 * for operation.  All float thresholds are precomputed on the Python
 * side (with the exact float comparisons the object implementations
 * perform) and passed in as integer tables, so this file is pure integer
 * code.  The all-tier equality suite (``tests/test_flat_state.py``) pins
 * the equivalence on every registered prefetcher.
 *
 * Geometry limits: the Gaze kernel requires ``blocks_per_region <= 64``
 * (region footprints are single uint64 masks); the wrapper falls back to
 * the Python flat implementation otherwise.  Table lookups are linear
 * scans over the capacity, sized for the paper's 32..64-entry tables.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <limits.h>
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Stamp ceiling of FlatSetAssociativeTable (arrays.DEFAULT_STAMP_LIMIT). */
#define STAMP_LIMIT (1LL << 60)

static inline uint64_t
mask_n(int n)
{
    return n >= 64 ? ~(uint64_t)0 : (((uint64_t)1 << n) - 1);
}

/* The train kernels are split into pure-C ``*_impl`` bodies writing packed
 * prefetches (``block << 1 | to_l1``) into a per-kernel ``out_buf`` and
 * returning a count (``-1`` maps to Python ``None``), so the compiled
 * driver loop can call them without any per-access Python objects.  This
 * helper rebuilds the exact Python-facing return value for the wrappers. */
static PyObject *
packed_result(const long long *buf, int n)
{
    if (n < 0)
        Py_RETURN_NONE;
    PyObject *out = PyList_New(n);
    if (!out)
        return NULL;
    for (int i = 0; i < n; i++) {
        PyObject *v = PyLong_FromLongLong(buf[i]);
        if (!v) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, i, v);
    }
    return out;
}

/* ------------------------------------------------------------------ */
/* Fully-associative LRU table: key -> slot, linked-list recency.      */
/* Mirrors arrays.FlatLRUTable: dict insertion order == LRU order,     */
/* victim is the list head.  Payload columns live in the caller.       */
/* ------------------------------------------------------------------ */
typedef struct {
    int cap;
    int size;
    long long *keys;
    unsigned char *used;
    int *prev;
    int *next;
    int head; /* LRU */
    int tail; /* MRU */
    int *free_slots;
    int free_count;
} FTable;

static int
ft_init(FTable *t, int cap)
{
    t->cap = cap;
    t->size = 0;
    t->keys = PyMem_Malloc(sizeof(long long) * cap);
    t->used = PyMem_Malloc(cap);
    t->prev = PyMem_Malloc(sizeof(int) * cap);
    t->next = PyMem_Malloc(sizeof(int) * cap);
    t->free_slots = PyMem_Malloc(sizeof(int) * cap);
    if (!t->keys || !t->used || !t->prev || !t->next || !t->free_slots)
        return -1;
    memset(t->used, 0, cap);
    t->head = t->tail = -1;
    /* Free slots popped highest-first, matching FlatLRUTable.free. */
    for (int i = 0; i < cap; i++)
        t->free_slots[i] = cap - 1 - i;
    t->free_count = cap;
    return 0;
}

static void
ft_dealloc(FTable *t)
{
    PyMem_Free(t->keys);
    PyMem_Free(t->used);
    PyMem_Free(t->prev);
    PyMem_Free(t->next);
    PyMem_Free(t->free_slots);
}

static void
ft_clear(FTable *t)
{
    memset(t->used, 0, t->cap);
    t->head = t->tail = -1;
    t->size = 0;
    for (int i = 0; i < t->cap; i++)
        t->free_slots[i] = t->cap - 1 - i;
    t->free_count = t->cap;
}

static inline int
ft_find(FTable *t, long long key)
{
    const long long *keys = t->keys;
    const unsigned char *used = t->used;
    for (int i = 0; i < t->cap; i++)
        if (used[i] && keys[i] == key)
            return i;
    return -1;
}

static inline void
ft_unlink(FTable *t, int s)
{
    int p = t->prev[s], n = t->next[s];
    if (p >= 0) t->next[p] = n; else t->head = n;
    if (n >= 0) t->prev[n] = p; else t->tail = p;
}

static inline void
ft_append(FTable *t, int s)
{
    t->prev[s] = t->tail;
    t->next[s] = -1;
    if (t->tail >= 0) t->next[t->tail] = s; else t->head = s;
    t->tail = s;
}

static inline void
ft_touch(FTable *t, int s)
{
    if (t->tail == s)
        return;
    ft_unlink(t, s);
    ft_append(t, s);
}

/* Claim a slot for a key known to be absent.  *evicted is set when the
 * LRU entry was displaced (its payload is still intact at the returned
 * slot so the caller can learn from / clear it). */
static inline int
ft_insert(FTable *t, long long key, int *evicted)
{
    int s;
    *evicted = 0;
    if (t->free_count > 0) {
        s = t->free_slots[--t->free_count];
    } else {
        s = t->head;
        ft_unlink(t, s);
        *evicted = 1;
        t->size--;
    }
    t->keys[s] = key;
    t->used[s] = 1;
    ft_append(t, s);
    t->size++;
    return s;
}

/* Drop a specific occupied slot (FT activation path; AT deactivation). */
static inline void
ft_drop_slot(FTable *t, int s)
{
    ft_unlink(t, s);
    t->used[s] = 0;
    t->free_slots[t->free_count++] = s;
    t->size--;
}

/* ================================================================== */
/* Debug invariant tier (compiled only under REPRO_DEBUG_KERNELS).     */
/*                                                                     */
/* ``REPRO_DEBUG_KERNELS=1 python setup.py build_ext --inplace``       */
/* builds this extension with internal invariant checks; a violated    */
/* invariant raises AssertionError at the Python boundary instead of   */
/* silently corrupting state.  The checks never mutate anything, so a  */
/* debug build must stay bit-identical to a release build.             */
/* ================================================================== */
#ifdef REPRO_DEBUG_KERNELS
static int
dk_fail(const char *where, const char *what)
{
    PyErr_Format(PyExc_AssertionError,
                 "repro._kernels debug invariant violated: %s: %s",
                 where, what);
    return -1;
}

#define DK_CHECK(cond, where, what)                                    \
    do {                                                               \
        if (!(cond))                                                   \
            return dk_fail((where), (what));                           \
    } while (0)

/* LRU chain integrity: head->tail visits exactly the occupied slots
 * with consistent back links, and the free list holds the rest. */
static int
ft_check(const FTable *t, const char *where)
{
    DK_CHECK(t->size >= 0 && t->size <= t->cap, where, "size out of range");
    DK_CHECK(t->free_count == t->cap - t->size, where,
             "free_count + size != cap");
    int count = 0, prev = -1;
    for (int s = t->head; s != -1; s = t->next[s]) {
        DK_CHECK(s >= 0 && s < t->cap, where, "chain slot out of range");
        DK_CHECK(t->used[s], where, "chain visits a free slot");
        DK_CHECK(t->prev[s] == prev, where, "prev link disagrees");
        prev = s;
        count++;
        DK_CHECK(count <= t->size, where, "chain longer than size (cycle?)");
    }
    DK_CHECK(prev == t->tail, where, "tail does not end the chain");
    DK_CHECK(count == t->size, where, "chain shorter than size");
    for (int i = 0; i < t->free_count; i++) {
        int s = t->free_slots[i];
        DK_CHECK(s >= 0 && s < t->cap && !t->used[s], where,
                 "free list holds an occupied slot");
    }
    return 0;
}
#endif /* REPRO_DEBUG_KERNELS */

/* ================================================================== */
/* BertiKernel: C twin of FlatBertiPrefetcher.train_flat               */
/* ================================================================== */
typedef struct {
    PyObject_HEAD
    int pc_entries;
    int hist_cap;
    int max_deltas;
    int max_prefetches;
    long long window_blocks;
    long long cand_off;
    int cand_shift;
    long long l1_thr[64];
    long long l2_thr[64];
    FTable table;
    long long *hist_block;
    long long *hist_cycle;
    int *hist_start;
    int *hist_len;
    long long *d_val;
    long long *d_occ;
    long long *d_tim;
    int *d_cnt;
    long long *rounds;
    long long out_buf[64]; /* packed prefetches from the last train_impl */
} BertiKernel;

static void
Berti_dealloc(BertiKernel *self)
{
    ft_dealloc(&self->table);
    PyMem_Free(self->hist_block);
    PyMem_Free(self->hist_cycle);
    PyMem_Free(self->hist_start);
    PyMem_Free(self->hist_len);
    PyMem_Free(self->d_val);
    PyMem_Free(self->d_occ);
    PyMem_Free(self->d_tim);
    PyMem_Free(self->d_cnt);
    PyMem_Free(self->rounds);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
load_thr_table(PyObject *seq, long long *out, const char *name)
{
    PyObject *fast = PySequence_Fast(seq, "threshold table must be a sequence");
    if (!fast)
        return -1;
    if (PySequence_Fast_GET_SIZE(fast) != 64) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "%s must have 64 entries", name);
        return -1;
    }
    for (int i = 0; i < 64; i++) {
        out[i] = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, i));
        if (out[i] == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
    }
    Py_DECREF(fast);
    return 0;
}

static int
Berti_init(BertiKernel *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "pc_entries", "history_per_pc", "max_deltas_per_pc", "window_blocks",
        "max_prefetches", "l2_occ_thr", "l1_occ_thr", "cand_off", "cand_shift",
        NULL,
    };
    PyObject *l2_thr, *l1_thr;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "iiiLiOOLi", kwlist,
            &self->pc_entries, &self->hist_cap, &self->max_deltas,
            &self->window_blocks, &self->max_prefetches,
            &l2_thr, &l1_thr, &self->cand_off, &self->cand_shift))
        return -1;
    if (self->pc_entries <= 0 || self->hist_cap <= 0 || self->max_deltas <= 0) {
        PyErr_SetString(PyExc_ValueError, "table sizes must be positive");
        return -1;
    }
    if (self->hist_cap > 64 || self->max_deltas > 64) {
        /* Stack scratch buffers in train() are sized for the paper's
         * 16-entry tables; the wrapper falls back to Python beyond 64. */
        PyErr_SetString(PyExc_ValueError,
                        "BertiKernel supports at most 64 history/delta entries");
        return -1;
    }
    if (load_thr_table(l2_thr, self->l2_thr, "l2_occ_thr") < 0)
        return -1;
    if (load_thr_table(l1_thr, self->l1_thr, "l1_occ_thr") < 0)
        return -1;
    int n = self->pc_entries;
    if (ft_init(&self->table, n) < 0)
        goto nomem;
    self->hist_block = PyMem_Malloc(sizeof(long long) * n * self->hist_cap);
    self->hist_cycle = PyMem_Malloc(sizeof(long long) * n * self->hist_cap);
    self->hist_start = PyMem_Malloc(sizeof(int) * n);
    self->hist_len = PyMem_Malloc(sizeof(int) * n);
    self->d_val = PyMem_Malloc(sizeof(long long) * n * self->max_deltas);
    self->d_occ = PyMem_Malloc(sizeof(long long) * n * self->max_deltas);
    self->d_tim = PyMem_Malloc(sizeof(long long) * n * self->max_deltas);
    self->d_cnt = PyMem_Malloc(sizeof(int) * n);
    self->rounds = PyMem_Malloc(sizeof(long long) * n);
    if (!self->hist_block || !self->hist_cycle || !self->hist_start ||
        !self->hist_len || !self->d_val || !self->d_occ || !self->d_tim ||
        !self->d_cnt || !self->rounds)
        goto nomem;
    memset(self->hist_start, 0, sizeof(int) * n);
    memset(self->hist_len, 0, sizeof(int) * n);
    memset(self->d_cnt, 0, sizeof(int) * n);
    memset(self->rounds, 0, sizeof(long long) * n);
    return 0;
nomem:
    PyErr_NoMemory();
    return -1;
}

static PyObject *
Berti_reset(BertiKernel *self, PyObject *Py_UNUSED(ignored))
{
    ft_clear(&self->table);
    memset(self->hist_start, 0, sizeof(int) * self->pc_entries);
    memset(self->hist_len, 0, sizeof(int) * self->pc_entries);
    memset(self->d_cnt, 0, sizeof(int) * self->pc_entries);
    memset(self->rounds, 0, sizeof(long long) * self->pc_entries);
    Py_RETURN_NONE;
}

static int
berti_train_impl(BertiKernel *self, long long pc, long long address,
                 long long cycle, long long latency)
{
    long long block = address >> 6;
    long long key = pc & 0xFFFF;
    FTable *t = &self->table;
    int slot = ft_find(t, key);
    if (slot < 0) {
        int evicted;
        slot = ft_insert(t, key, &evicted);
        if (evicted) {
            self->hist_len[slot] = 0;
            self->hist_start[slot] = 0;
            self->d_cnt[slot] = 0;
            self->rounds[slot] = 0;
        }
    } else {
        ft_touch(t, slot);
    }

    const int hcap = self->hist_cap;
    const int dmax = self->max_deltas;
    long long *hblock = self->hist_block + (size_t)slot * hcap;
    long long *hcycle = self->hist_cycle + (size_t)slot * hcap;
    long long *dval = self->d_val + (size_t)slot * dmax;
    long long *docc = self->d_occ + (size_t)slot * dmax;
    long long *dtim = self->d_tim + (size_t)slot * dmax;
    int hstart = self->hist_start[slot];
    int hlen = self->hist_len[slot];
    int dcnt = self->d_cnt[slot];
    long long rounds = self->rounds[slot];

    /* ---- learn (exact port of the flat learn loop) ---- */
    if (hlen > 0) {
        const long long window = self->window_blocks;
        const long long thr = cycle - latency;
        long long seen[64]; /* <= hist_cap distinct deltas per call */
        int seen_n = 0;
        for (int h = 0; h < hlen; h++) {
            int pos = hstart + h;
            if (pos >= hcap)
                pos -= hcap;
            long long delta = block - hblock[pos];
            if (delta == 0 || delta > window || delta < -window)
                continue;
            int dup = 0;
            for (int s = 0; s < seen_n; s++)
                if (seen[s] == delta) { dup = 1; break; }
            if (dup)
                continue;
            seen[seen_n++] = delta;
            long long past_cycle = hcycle[pos];
            int di = -1;
            for (int d = 0; d < dcnt; d++)
                if (dval[d] == delta) { di = d; break; }
            if (di < 0) {
                if (dcnt >= dmax) {
                    /* Replace the weakest delta: lowest min(occ, rounds),
                     * first in insertion order on ties (break at k <= 1 --
                     * nothing later can be smaller). */
                    int victim = 0;
                    if (rounds) {
                        long long weakest_key = 1LL << 60;
                        for (int d = 0; d < dcnt; d++) {
                            long long k = docc[d] < rounds ? docc[d] : rounds;
                            if (k < weakest_key) {
                                weakest_key = k;
                                victim = d;
                                if (k <= 1)
                                    break;
                            }
                        }
                    }
                    int tail = dcnt - victim - 1;
                    if (tail > 0) {
                        memmove(dval + victim, dval + victim + 1,
                                sizeof(long long) * tail);
                        memmove(docc + victim, docc + victim + 1,
                                sizeof(long long) * tail);
                        memmove(dtim + victim, dtim + victim + 1,
                                sizeof(long long) * tail);
                    }
                    dcnt--;
                }
                dval[dcnt] = delta;
                docc[dcnt] = 1;
                dtim[dcnt] = (past_cycle <= thr);
                dcnt++;
            } else {
                docc[di] += 1;
                dtim[di] += (past_cycle <= thr);
            }
        }
    }
    rounds += 1;
    if (!(rounds & 63)) {
        rounds >>= 1;
        for (int d = 0; d < dcnt; d++) {
            long long occ = docc[d] >> 1;
            docc[d] = occ ? occ : 1;
            dtim[d] >>= 1;
        }
    }

    /* History append (drop oldest beyond capacity). */
    if (hlen < hcap) {
        int pos = hstart + hlen;
        if (pos >= hcap)
            pos -= hcap;
        hblock[pos] = block;
        hcycle[pos] = cycle;
        hlen++;
    } else {
        hblock[hstart] = block;
        hcycle[hstart] = cycle;
        hstart++;
        if (hstart >= hcap)
            hstart = 0;
    }
    self->hist_start[slot] = hstart;
    self->hist_len[slot] = hlen;
    self->d_cnt[slot] = dcnt;
    self->rounds[slot] = rounds;

    /* ---- issue (exact port of the flat issue scan) ---- */
    if (!rounds)
        return -1;
    const long long thr_l2 = self->l2_thr[rounds];
    const long long cand_off = self->cand_off;
    const int cand_shift = self->cand_shift;
    long long cand[64];
    int cand_n = 0;
    for (int d = 0; d < dcnt; d++) {
        long long occ = docc[d];
        if (occ < 2 || occ < thr_l2)
            continue;
        long long k = occ < rounds ? occ : rounds;
        long long ck = (k << cand_shift) | (dval[d] + cand_off);
        /* Descending insertion sort (distinct keys: delta is unique). */
        int j = cand_n;
        while (j > 0 && cand[j - 1] < ck) {
            cand[j] = cand[j - 1];
            j--;
        }
        cand[j] = ck;
        cand_n++;
    }
    if (!cand_n)
        return -1;
    const long long thr_l1 = self->l1_thr[rounds];
    const long long cand_mask = ((long long)1 << cand_shift) - 1;
    const long long window = self->window_blocks;
    int limit = cand_n < self->max_prefetches ? cand_n : self->max_prefetches;
    int count = 0;
    for (int c = 0; c < limit; c++) {
        long long delta = (cand[c] & cand_mask) - cand_off;
        long long target = block + delta;
        if (target < 0 || llabs(delta) > window)
            continue;
        long long occ = 0, tim = 0;
        for (int d = 0; d < dcnt; d++)
            if (dval[d] == delta) { occ = docc[d]; tim = dtim[d]; break; }
        long long hint_bit = (occ >= thr_l1 && 2 * tim >= occ) ? 1 : 0;
        self->out_buf[count++] = (target << 1) | hint_bit;
    }
    return count;
}

static PyObject *
Berti_train(BertiKernel *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError, "train(pc, address, cycle, latency)");
        return NULL;
    }
    long long pc = PyLong_AsLongLong(args[0]);
    long long address = PyLong_AsLongLong(args[1]);
    long long cycle = PyLong_AsLongLong(args[2]);
    long long latency = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred())
        return NULL;
    return packed_result(self->out_buf,
                         berti_train_impl(self, pc, address, cycle, latency));
}

static PyMethodDef Berti_methods[] = {
    {"train", (PyCFunction)(void (*)(void))Berti_train, METH_FASTCALL,
     "One train step; returns a list of packed prefetches or None."},
    {"reset", (PyCFunction)Berti_reset, METH_NOARGS, "Clear all state."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject BertiKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels.BertiKernel",
    .tp_basicsize = sizeof(BertiKernel),
    .tp_dealloc = (destructor)Berti_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "C twin of FlatBertiPrefetcher's train_flat state machine.",
    .tp_methods = Berti_methods,
    .tp_init = (initproc)Berti_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================== */
/* GazeKernel: C twin of FlatGazePrefetcher                            */
/* ================================================================== */
typedef struct {
    PyObject_HEAD
    /* geometry / config */
    int blocks;
    long long region_size;
    int region_shift; /* -1 when region_size is not a power of two */
    uint64_t offset_mask;
    uint64_t full_mask;
    uint64_t head_mask;
    uint64_t tail_mask;
    int enable_streaming;
    int enable_pht;
    int stride_backup;
    int pb_limit;
    int promo_start;
    int promo_count;
    /* filter table */
    FTable ft;
    long long *ft_pc;
    long long *ft_off;
    /* accumulation table */
    FTable at;
    long long *at_pc;
    long long *at_trig;
    long long *at_second;
    uint64_t *at_foot;
    long long *at_last;
    long long *at_penult;
    unsigned char *at_stride;
    /* pattern history table (set-associative, stamp LRU) */
    int pht_sets;
    int pht_ways;
    unsigned char *pht_valid;
    long long *pht_tag;
    long long *pht_stamp;
    uint64_t *pht_foot;
    long long pht_clock;
    /* prefetch buffer */
    FTable pb;
    uint64_t *pb_l1;
    uint64_t *pb_l2;
    uint64_t *pb_issued;
    uint64_t *pb_issued_l1;
    long long *pb_pending;
    /* streaming module */
    FTable dpct;
    int dc_value;
    int dc_max;
    /* origin of the latest emission: (pc, 0="gaze" / 1="gaze-promo") */
    long long last_pc;
    int last_meta;
    /* introspection counters */
    long long pht_lookups;
    long long pht_hits;
    long long pht_updates;
    long long pht_predictions;
    long long streaming_predictions;
    long long backup_activations;
    long long promotions;
    long long out_buf[64]; /* packed prefetches from the last train_impl */
} GazeKernel;

static void
Gaze_dealloc(GazeKernel *self)
{
    ft_dealloc(&self->ft);
    ft_dealloc(&self->at);
    ft_dealloc(&self->pb);
    ft_dealloc(&self->dpct);
    PyMem_Free(self->ft_pc);
    PyMem_Free(self->ft_off);
    PyMem_Free(self->at_pc);
    PyMem_Free(self->at_trig);
    PyMem_Free(self->at_second);
    PyMem_Free(self->at_foot);
    PyMem_Free(self->at_last);
    PyMem_Free(self->at_penult);
    PyMem_Free(self->at_stride);
    PyMem_Free(self->pht_valid);
    PyMem_Free(self->pht_tag);
    PyMem_Free(self->pht_stamp);
    PyMem_Free(self->pht_foot);
    PyMem_Free(self->pb_l1);
    PyMem_Free(self->pb_l2);
    PyMem_Free(self->pb_issued);
    PyMem_Free(self->pb_issued_l1);
    PyMem_Free(self->pb_pending);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Gaze_init(GazeKernel *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "blocks", "region_size", "filter_entries", "accumulation_entries",
        "pht_sets", "pht_ways", "prefetch_buffer_entries", "pb_limit",
        "promo_start", "promo_count", "head_blocks", "dpct_entries",
        "dc_bits", "enable_streaming", "enable_pht", "stride_backup",
        NULL,
    };
    int ft_entries, at_entries, pb_entries, head_blocks, dpct_entries, dc_bits;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "iLiiiiiiiiiiiiii", kwlist,
            &self->blocks, &self->region_size, &ft_entries, &at_entries,
            &self->pht_sets, &self->pht_ways, &pb_entries, &self->pb_limit,
            &self->promo_start, &self->promo_count, &head_blocks,
            &dpct_entries, &dc_bits, &self->enable_streaming,
            &self->enable_pht, &self->stride_backup))
        return -1;
    if (self->blocks <= 0 || self->blocks > 64) {
        PyErr_SetString(PyExc_ValueError,
                        "GazeKernel requires 1 <= blocks_per_region <= 64");
        return -1;
    }
    if ((self->region_size & (self->region_size - 1)) == 0) {
        int shift = 0;
        long long r = self->region_size;
        while (r > 1) { r >>= 1; shift++; }
        self->region_shift = shift;
        self->offset_mask = (uint64_t)(self->blocks - 1);
    } else {
        self->region_shift = -1;
        self->offset_mask = 0;
    }
    self->full_mask = mask_n(self->blocks);
    int head = head_blocks < self->blocks ? head_blocks : self->blocks;
    self->head_mask = mask_n(head);
    self->tail_mask = self->full_mask ^ self->head_mask;
    self->dc_max = (1 << dc_bits) - 1;
    self->dc_value = 0;
    self->pht_clock = 0;
    self->last_pc = 0;
    self->last_meta = 0;
    self->pht_lookups = self->pht_hits = self->pht_updates = 0;
    self->pht_predictions = self->streaming_predictions = 0;
    self->backup_activations = self->promotions = 0;

    if (ft_init(&self->ft, ft_entries) < 0 ||
        ft_init(&self->at, at_entries) < 0 ||
        ft_init(&self->pb, pb_entries) < 0 ||
        ft_init(&self->dpct, dpct_entries) < 0)
        goto nomem;
    self->ft_pc = PyMem_Malloc(sizeof(long long) * ft_entries);
    self->ft_off = PyMem_Malloc(sizeof(long long) * ft_entries);
    self->at_pc = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_trig = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_second = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_foot = PyMem_Malloc(sizeof(uint64_t) * at_entries);
    self->at_last = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_penult = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_stride = PyMem_Malloc(at_entries);
    int pht_size = self->pht_sets * self->pht_ways;
    self->pht_valid = PyMem_Malloc(pht_size);
    self->pht_tag = PyMem_Malloc(sizeof(long long) * pht_size);
    self->pht_stamp = PyMem_Malloc(sizeof(long long) * pht_size);
    self->pht_foot = PyMem_Malloc(sizeof(uint64_t) * pht_size);
    self->pb_l1 = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_l2 = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_issued = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_issued_l1 = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_pending = PyMem_Malloc(sizeof(long long) * pb_entries);
    if (!self->ft_pc || !self->ft_off || !self->at_pc || !self->at_trig ||
        !self->at_second || !self->at_foot || !self->at_last ||
        !self->at_penult || !self->at_stride || !self->pht_valid ||
        !self->pht_tag || !self->pht_stamp || !self->pht_foot ||
        !self->pb_l1 || !self->pb_l2 || !self->pb_issued ||
        !self->pb_issued_l1 || !self->pb_pending)
        goto nomem;
    memset(self->pht_valid, 0, pht_size);
    memset(self->pb_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_l2, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_pending, 0, sizeof(long long) * pb_entries);
    return 0;
nomem:
    PyErr_NoMemory();
    return -1;
}

/* ---- streaming module (DPCT + DC) -------------------------------- */
static inline long long
hash_pc12(unsigned long long pc)
{
    unsigned long long mask = 0xFFF, result = 0;
    while (pc) {
        result ^= pc & mask;
        pc >>= 12;
    }
    return (long long)(result & mask);
}

/* LRUTable.get default-touches, so DensePCTable.contains refreshes the
 * entry's recency on hit -- replicated here. */
static inline int
dpct_contains(GazeKernel *self, long long pc)
{
    int slot = ft_find(&self->dpct, hash_pc12((unsigned long long)pc));
    if (slot < 0)
        return 0;
    ft_touch(&self->dpct, slot);
    return 1;
}

static inline void
dpct_record(GazeKernel *self, long long pc)
{
    long long h = hash_pc12((unsigned long long)pc);
    int slot = ft_find(&self->dpct, h);
    if (slot >= 0) {
        ft_touch(&self->dpct, slot);
        return;
    }
    int evicted;
    ft_insert(&self->dpct, h, &evicted);
}

static inline void
streaming_learn(GazeKernel *self, long long pc, int fully_dense)
{
    if (fully_dense) {
        dpct_record(self, pc);
        if (self->dc_value < self->dc_max)
            self->dc_value++;
    } else {
        if (self->dc_value > 2)
            self->dc_value /= 2;
        else if (self->dc_value > 0)
            self->dc_value--;
    }
}

/* StreamingConfidence: 2=HIGH, 1=MODERATE, 0=NONE. */
static inline int
streaming_confidence(GazeKernel *self, long long pc)
{
    if (dpct_contains(self, pc) || self->dc_value == self->dc_max)
        return 2;
    if (self->dc_value > 2)
        return 1;
    return 0;
}

/* ---- PHT (stamp-LRU set-associative) ----------------------------- */
static long long
pht_tick(GazeKernel *self)
{
    long long clock = self->pht_clock;
    if (clock >= STAMP_LIMIT) {
        /* Renormalise valid stamps to 0..n-1 in LRU order (unreachable
         * in practice; mirrors FlatSetAssociativeTable._renormalize). */
        int size = self->pht_sets * self->pht_ways;
        long long rank = 0;
        for (;;) {
            int best = -1;
            long long best_stamp = STAMP_LIMIT + 1;
            for (int i = 0; i < size; i++)
                if (self->pht_valid[i] && self->pht_stamp[i] >= rank &&
                    self->pht_stamp[i] < best_stamp) {
                    best_stamp = self->pht_stamp[i];
                    best = i;
                }
            if (best < 0)
                break;
            self->pht_stamp[best] = rank++;
        }
        self->pht_clock = clock = rank;
    }
    self->pht_clock = clock + 1;
    return clock;
}

/* ---- prefetch buffer helpers ------------------------------------- */
static inline int
pb_slot(GazeKernel *self, long long region)
{
    int slot = ft_find(&self->pb, region);
    if (slot >= 0) {
        ft_touch(&self->pb, slot);
        return slot;
    }
    int evicted;
    slot = ft_insert(&self->pb, region, &evicted);
    if (evicted) {
        self->pb_l1[slot] = 0;
        self->pb_l2[slot] = 0;
        self->pb_issued[slot] = 0;
        self->pb_issued_l1[slot] = 0;
        self->pb_pending[slot] = 0;
    }
    return slot;
}

static void
pb_add(GazeKernel *self, long long region, uint64_t l1_mask, uint64_t l2_mask,
       uint64_t exclude)
{
    int slot = pb_slot(self, region);
    uint64_t m1 = self->pb_l1[slot];
    uint64_t m2 = self->pb_l2[slot];
    uint64_t issued = self->pb_issued[slot];
    long long pending = self->pb_pending[slot];
    if (l2_mask) {
        uint64_t new_l2 = l2_mask & ~exclude & ~(m1 | m2 | issued);
        if (new_l2) {
            m2 |= new_l2;
            pending += __builtin_popcountll(new_l2);
        }
    }
    if (l1_mask) {
        uint64_t el1 = l1_mask & ~exclude & ~issued;
        if (el1) {
            pending += __builtin_popcountll(el1 & ~(m1 | m2));
            m1 |= el1;
            m2 &= ~el1;
        }
    }
    self->pb_l1[slot] = m1;
    self->pb_l2[slot] = m2;
    self->pb_pending[slot] = pending;
}

/* pop_requests: ascending offsets, bounded by pb_limit; returns a new
 * list, or None when nothing was pending. */
static int
pb_pop_requests_impl(GazeKernel *self, int slot, long long region)
{
    uint64_t m1 = self->pb_l1[slot];
    uint64_t pending_mask = m1 | self->pb_l2[slot];
    long long base_block = (region * self->region_size) >> 6;
    uint64_t taken = 0, taken_l1 = 0;
    int count = 0;
    const int limit = self->pb_limit;
    while (pending_mask && count < limit) {
        uint64_t low = pending_mask & (~pending_mask + 1);
        pending_mask ^= low;
        taken |= low;
        int bit = __builtin_ctzll(low);
        long long packed;
        if (m1 & low) {
            taken_l1 |= low;
            packed = ((base_block + bit) << 1) | 1;
        } else {
            packed = (base_block + bit) << 1;
        }
        self->out_buf[count++] = packed;
    }
    if (!count)
        return -1;
    self->pb_l1[slot] = m1 & ~taken;
    self->pb_l2[slot] &= ~taken;
    self->pb_issued[slot] |= taken;
    self->pb_issued_l1[slot] = (self->pb_issued_l1[slot] & ~taken) | taken_l1;
    self->pb_pending[slot] -= count;
    return count;
}

/* ---- PHT predict / learn ----------------------------------------- */
static int
pht_predict(GazeKernel *self, long long region, long long trigger_offset,
            long long second_offset)
{
    self->pht_lookups++;
    int set_index = (int)(trigger_offset % self->pht_sets);
    int base = set_index * self->pht_ways;
    int slot = -1;
    for (int w = base; w < base + self->pht_ways; w++)
        if (self->pht_valid[w] && self->pht_tag[w] == second_offset) {
            slot = w;
            break;
        }
    if (slot < 0)
        return 0;
    self->pht_stamp[slot] = pht_tick(self);
    self->pht_hits++;
    self->pht_predictions++;
    uint64_t footprint = self->pht_foot[slot];
    uint64_t exclude =
        ((uint64_t)1 << trigger_offset) | ((uint64_t)1 << second_offset);
    pb_add(self, region, footprint & self->full_mask, 0, exclude);
    return 1;
}

static void
pht_learn(GazeKernel *self, long long trigger_offset, long long second_offset,
          uint64_t footprint)
{
    self->pht_updates++;
    int set_index = (int)(trigger_offset % self->pht_sets);
    int base = set_index * self->pht_ways;
    int slot = -1;
    for (int w = base; w < base + self->pht_ways; w++)
        if (self->pht_valid[w] && self->pht_tag[w] == second_offset) {
            slot = w;
            break;
        }
    if (slot < 0) {
        for (int w = base; w < base + self->pht_ways; w++)
            if (!self->pht_valid[w]) {
                slot = w;
                break;
            }
        if (slot < 0) {
            /* Min-stamp victim; strict < keeps the first minimum. */
            slot = base;
            long long best = self->pht_stamp[base];
            for (int w = base + 1; w < base + self->pht_ways; w++)
                if (self->pht_stamp[w] < best) {
                    best = self->pht_stamp[w];
                    slot = w;
                }
        }
        self->pht_tag[slot] = second_offset;
        self->pht_valid[slot] = 1;
    }
    self->pht_stamp[slot] = pht_tick(self);
    self->pht_foot[slot] = footprint;
}

/* ---- learning / deactivation ------------------------------------- */
static void
learn_slot(GazeKernel *self, int slot)
{
    long long trigger_offset = self->at_trig[slot];
    long long second_offset = self->at_second[slot];
    if (trigger_offset == 0 && second_offset == 1 && self->enable_streaming) {
        uint64_t footprint = self->at_foot[slot] & self->full_mask;
        streaming_learn(self, self->at_pc[slot],
                        footprint == self->full_mask);
        return;
    }
    if (self->enable_pht)
        pht_learn(self, trigger_offset, second_offset, self->at_foot[slot]);
}

/* ---- stage-2 promotion / stride backup --------------------------- */
static void
promote_tracked(GazeKernel *self, int slot, long long offset)
{
    long long last = self->at_last[slot];
    long long penult = self->at_penult[slot];
    if (last < 0 || penult < 0 || offset == last)
        return;
    long long stride = last - penult;
    if (stride != offset - last || stride == 0)
        return;
    const int blocks = self->blocks;
    uint64_t mask = 0;
    for (int i = 0; i < self->promo_count; i++) {
        long long target = offset + stride * (self->promo_start + i);
        if (target >= 0 && target < blocks)
            mask |= (uint64_t)1 << target;
    }
    if (!mask)
        return;
    /* The AT slot's key is its region (at_region column in Python). */
    int pslot = pb_slot(self, self->at.keys[slot]);
    uint64_t cand = mask & ~self->pb_issued_l1[pslot];
    if (!cand)
        return;
    uint64_t m1 = self->pb_l1[pslot];
    uint64_t m2 = self->pb_l2[pslot];
    self->pb_pending[pslot] += __builtin_popcountll(cand & ~(m1 | m2));
    self->pb_l1[pslot] = m1 | cand;
    self->pb_l2[pslot] = m2 & ~cand;
    self->pb_issued[pslot] &= ~cand;
    self->promotions++;
    if ((self->at_foot[slot] & self->full_mask) != self->full_mask)
        self->backup_activations++;
}

/* ---- region activation (second access) --------------------------- */
static int
gaze_activate_impl(GazeKernel *self, long long region, long long trigger_pc,
                   long long trigger_offset, long long second_offset,
                   long long second_pc)
{
    (void)second_pc;
    int stride_flag = 0;
    if (trigger_offset == 0 && second_offset == 1) {
        if (self->enable_streaming) {
            stride_flag = 1;
            int confidence = streaming_confidence(self, trigger_pc);
            uint64_t exclude = ((uint64_t)1 << trigger_offset) |
                               ((uint64_t)1 << second_offset);
            if (confidence == 2)
                pb_add(self, region, self->head_mask, self->tail_mask, exclude);
            else if (confidence == 1)
                pb_add(self, region, 0, self->head_mask, exclude);
            if (confidence != 0)
                self->streaming_predictions++;
        } else if (self->enable_pht) {
            stride_flag = !pht_predict(self, region, trigger_offset,
                                       second_offset);
        } else {
            stride_flag = 1;
        }
    } else if (self->enable_pht) {
        int matched = pht_predict(self, region, trigger_offset, second_offset);
        stride_flag = !matched && self->stride_backup;
    } else {
        stride_flag = self->stride_backup;
    }

    int evicted;
    int slot = ft_insert(&self->at, region, &evicted);
    if (evicted) {
        /* ft_insert already displaced the victim's key, but its payload
         * is intact at `slot` -- but learn_slot needs the payload BEFORE
         * the overwrite below, which is exactly now. */
        learn_slot(self, slot);
    }
    self->at_pc[slot] = trigger_pc;
    self->at_trig[slot] = trigger_offset;
    self->at_second[slot] = second_offset;
    self->at_foot[slot] = ((uint64_t)1 << trigger_offset) |
                          ((uint64_t)1 << second_offset);
    self->at_penult[slot] = trigger_offset;
    self->at_last[slot] = second_offset;
    self->at_stride[slot] = stride_flag ? 1 : 0;

    int pslot = ft_find(&self->pb, region);
    if (pslot < 0)
        return -1;
    ft_touch(&self->pb, pslot);
    if (!self->pb_pending[pslot])
        return -1;
    self->last_pc = trigger_pc;
    self->last_meta = 0; /* "gaze" */
    return pb_pop_requests_impl(self, pslot, region);
}

/* ---- train ------------------------------------------------------- */
static int
gaze_train_impl(GazeKernel *self, long long pc, long long address)
{
    long long region, offset;
    if (self->region_shift >= 0) {
        region = address >> self->region_shift;
        offset = (address >> 6) & (long long)self->offset_mask;
    } else {
        region = address / self->region_size;
        offset = (address % self->region_size) >> 6;
    }

    int slot = ft_find(&self->at, region);
    if (slot >= 0) {
        ft_touch(&self->at, slot);
        if (self->at_stride[slot] && self->stride_backup)
            promote_tracked(self, slot, offset);
        self->at_foot[slot] |= (uint64_t)1 << offset;
        long long last = self->at_last[slot];
        if (offset != last) {
            self->at_penult[slot] = last;
            self->at_last[slot] = offset;
        }
        int pslot = ft_find(&self->pb, region);
        if (pslot < 0)
            return -1;
        ft_touch(&self->pb, pslot);
        if (!self->pb_pending[pslot])
            return -1;
        self->last_pc = pc;
        self->last_meta = 1; /* "gaze-promo" */
        return pb_pop_requests_impl(self, pslot, region);
    }

    int fslot = ft_find(&self->ft, region);
    if (fslot >= 0) {
        long long trigger_offset = self->ft_off[fslot];
        if (trigger_offset == offset) {
            ft_touch(&self->ft, fslot);
            return -1;
        }
        long long trigger_pc = self->ft_pc[fslot];
        ft_drop_slot(&self->ft, fslot);
        return gaze_activate_impl(self, region, trigger_pc, trigger_offset,
                                  offset, pc);
    }

    /* First touch of an unknown region: silent LRU allocation. */
    int evicted;
    fslot = ft_insert(&self->ft, region, &evicted);
    self->ft_pc[fslot] = pc;
    self->ft_off[fslot] = offset;
    return -1;
}

static PyObject *
Gaze_train(GazeKernel *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "train(pc, address)");
        return NULL;
    }
    long long pc = PyLong_AsLongLong(args[0]);
    long long address = PyLong_AsLongLong(args[1]);
    if (PyErr_Occurred())
        return NULL;
    return packed_result(self->out_buf, gaze_train_impl(self, pc, address));
}

static void
gaze_evict_impl(GazeKernel *self, long long block)
{
    long long region;
    if (self->region_shift >= 0)
        region = block >> (self->region_shift - 6);
    else
        region = (block << 6) / self->region_size;
    int slot = ft_find(&self->at, region);
    if (slot >= 0) {
        learn_slot(self, slot);
        ft_drop_slot(&self->at, slot);
    }
}

static PyObject *
Gaze_evict(GazeKernel *self, PyObject *arg)
{
    long long block = PyLong_AsLongLong(arg);
    if (block == -1 && PyErr_Occurred())
        return NULL;
    gaze_evict_impl(self, block);
    Py_RETURN_NONE;
}

static PyObject *
Gaze_drain(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    /* Deactivate in LRU -> MRU order, matching FlatGazePrefetcher.drain
     * (dict insertion order). */
    while (self->at.head >= 0) {
        int slot = self->at.head;
        learn_slot(self, slot);
        ft_drop_slot(&self->at, slot);
    }
    Py_RETURN_NONE;
}

static PyObject *
Gaze_origin(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("(Li)", self->last_pc, self->last_meta);
}

static PyObject *
Gaze_counters(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "(LLLLLLL)", self->pht_lookups, self->pht_hits, self->pht_updates,
        self->pht_predictions, self->streaming_predictions,
        self->backup_activations, self->promotions);
}

static PyObject *
Gaze_reset(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    ft_clear(&self->ft);
    ft_clear(&self->at);
    ft_clear(&self->pb);
    ft_clear(&self->dpct);
    int pb_entries = self->pb.cap;
    memset(self->pb_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_l2, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_pending, 0, sizeof(long long) * pb_entries);
    memset(self->pht_valid, 0, self->pht_sets * self->pht_ways);
    self->pht_clock = 0;
    self->dc_value = 0;
    self->pht_lookups = self->pht_hits = self->pht_updates = 0;
    self->pht_predictions = self->streaming_predictions = 0;
    self->backup_activations = self->promotions = 0;
    Py_RETURN_NONE;
}

static PyMethodDef Gaze_methods[] = {
    {"train", (PyCFunction)(void (*)(void))Gaze_train, METH_FASTCALL,
     "One train step; returns a list of packed prefetches or None."},
    {"evict", (PyCFunction)Gaze_evict, METH_O,
     "Deactivate the region of an evicted block."},
    {"drain", (PyCFunction)Gaze_drain, METH_NOARGS,
     "Deactivate all tracked regions (learns their footprints)."},
    {"origin", (PyCFunction)Gaze_origin, METH_NOARGS,
     "(pc, meta_code) of the most recent emission; 1 means gaze-promo."},
    {"counters", (PyCFunction)Gaze_counters, METH_NOARGS,
     "(pht_lookups, pht_hits, pht_updates, pht_predictions, "
     "streaming_predictions, backup_activations, promotions)."},
    {"reset", (PyCFunction)Gaze_reset, METH_NOARGS, "Clear all state."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject GazeKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels.GazeKernel",
    .tp_basicsize = sizeof(GazeKernel),
    .tp_dealloc = (destructor)Gaze_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "C twin of FlatGazePrefetcher's state machine.",
    .tp_methods = Gaze_methods,
    .tp_init = (initproc)Gaze_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================== */
/* PMPKernel: C twin of PMPPrefetcher.train_flat / on_cache_eviction   */
/* ================================================================== */
typedef struct {
    PyObject_HEAD
    int blocks;
    long long region_size;
    int region_shift; /* -1 when region_size is not a power of two */
    int max_confidence;
    int anchor;
    uint64_t block_mask;
    long long *l1_min; /* max_confidence + 1 integer thresholds */
    long long *l2_min;
    /* filter table: region -> trigger offset */
    FTable ft;
    long long *ft_off;
    /* accumulation table: region -> (trigger offset, footprint) */
    FTable at;
    long long *at_trig;
    uint64_t *at_foot;
    /* offset pattern table: blocks x blocks counters + merge counts */
    int *opt;
    int *merge_counts;
    long long out_buf[64]; /* packed prefetches from the last train_impl */
} PMPKernel;

static void
PMP_dealloc(PMPKernel *self)
{
    ft_dealloc(&self->ft);
    ft_dealloc(&self->at);
    PyMem_Free(self->l1_min);
    PyMem_Free(self->l2_min);
    PyMem_Free(self->ft_off);
    PyMem_Free(self->at_trig);
    PyMem_Free(self->at_foot);
    PyMem_Free(self->opt);
    PyMem_Free(self->merge_counts);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static long long *
load_min_table(PyObject *seq, int entries, const char *name)
{
    PyObject *fast = PySequence_Fast(seq, "threshold table must be a sequence");
    if (!fast)
        return NULL;
    if (PySequence_Fast_GET_SIZE(fast) != entries) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "%s must have %d entries", name, entries);
        return NULL;
    }
    long long *out = PyMem_Malloc(sizeof(long long) * entries);
    if (!out) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return NULL;
    }
    for (int i = 0; i < entries; i++) {
        out[i] = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, i));
        if (out[i] == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            PyMem_Free(out);
            return NULL;
        }
    }
    Py_DECREF(fast);
    return out;
}

static int
PMP_init(PMPKernel *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "blocks", "region_size", "filter_entries", "accumulation_entries",
        "max_confidence", "anchor", "l1_min", "l2_min",
        NULL,
    };
    int ft_entries, at_entries;
    PyObject *l1_min, *l2_min;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "iLiiiiOO", kwlist,
            &self->blocks, &self->region_size, &ft_entries, &at_entries,
            &self->max_confidence, &self->anchor, &l1_min, &l2_min))
        return -1;
    if (self->blocks <= 0 || self->blocks > 64) {
        PyErr_SetString(PyExc_ValueError,
                        "PMPKernel requires 1 <= blocks_per_region <= 64");
        return -1;
    }
    if (self->max_confidence <= 0) {
        PyErr_SetString(PyExc_ValueError, "max_confidence must be positive");
        return -1;
    }
    if ((self->region_size & (self->region_size - 1)) == 0) {
        int shift = 0;
        long long r = self->region_size;
        while (r > 1) { r >>= 1; shift++; }
        self->region_shift = shift;
    } else {
        self->region_shift = -1;
    }
    self->block_mask = mask_n(self->blocks);
    self->l1_min = load_min_table(l1_min, self->max_confidence + 1, "l1_min");
    if (!self->l1_min)
        return -1;
    self->l2_min = load_min_table(l2_min, self->max_confidence + 1, "l2_min");
    if (!self->l2_min)
        return -1;
    if (ft_init(&self->ft, ft_entries) < 0 || ft_init(&self->at, at_entries) < 0)
        goto nomem;
    self->ft_off = PyMem_Malloc(sizeof(long long) * ft_entries);
    self->at_trig = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_foot = PyMem_Malloc(sizeof(uint64_t) * at_entries);
    int opt_size = self->blocks * self->blocks;
    self->opt = PyMem_Malloc(sizeof(int) * opt_size);
    self->merge_counts = PyMem_Malloc(sizeof(int) * self->blocks);
    if (!self->ft_off || !self->at_trig || !self->at_foot || !self->opt ||
        !self->merge_counts)
        goto nomem;
    memset(self->opt, 0, sizeof(int) * opt_size);
    memset(self->merge_counts, 0, sizeof(int) * self->blocks);
    return 0;
nomem:
    PyErr_NoMemory();
    return -1;
}

/* Exact port of PMPPrefetcher._merge (anchored rotation + saturating
 * counter walk over set bits, decay over clear bits at saturation). */
static void
pmp_merge(PMPKernel *self, long long trigger_offset, uint64_t footprint)
{
    const int blocks = self->blocks;
    const int max_conf = self->max_confidence;
    uint64_t pattern = footprint & self->block_mask;
    if (self->anchor && trigger_offset)
        pattern = ((pattern << (blocks - trigger_offset)) |
                   (pattern >> trigger_offset)) & self->block_mask;
    int *counters = self->opt + (size_t)trigger_offset * blocks;
    int merged = self->merge_counts[trigger_offset] + 1;
    if (merged > max_conf)
        merged = max_conf;
    self->merge_counts[trigger_offset] = merged;
    uint64_t value = pattern;
    while (value) {
        int b = __builtin_ctzll(value);
        value &= value - 1;
        int count = counters[b] + 1;
        counters[b] = count < max_conf ? count : max_conf;
    }
    if (merged >= max_conf) {
        value = ~pattern & self->block_mask;
        while (value) {
            int b = __builtin_ctzll(value);
            value &= value - 1;
            if (counters[b] > 0)
                counters[b]--;
        }
    }
}

static int
pmp_train_impl(PMPKernel *self, long long address)
{
    long long region, offset;
    if (self->region_shift >= 0) {
        region = address >> self->region_shift;
        offset = (address >> 6) & (long long)(self->blocks - 1);
    } else {
        region = address / self->region_size;
        offset = (address % self->region_size) >> 6;
    }

    /* Tracked region: accumulate the footprint, nothing to predict. */
    int slot = ft_find(&self->at, region);
    if (slot >= 0) {
        ft_touch(&self->at, slot);
        self->at_foot[slot] |= (uint64_t)1 << offset;
        return -1;
    }

    int fslot = ft_find(&self->ft, region);
    if (fslot >= 0) {
        long long trigger_offset = self->ft_off[fslot];
        if (trigger_offset == offset) {
            /* Same block touched again: still a one-bit footprint. */
            ft_touch(&self->ft, fslot);
            return -1;
        }
        /* Activation: FT -> AT; a displaced AT entry deactivates and
         * its footprint is merged (train_flat merges deactivations
         * before checking the trigger, which is None here). */
        ft_drop_slot(&self->ft, fslot);
        int evicted;
        slot = ft_insert(&self->at, region, &evicted);
        if (evicted)
            pmp_merge(self, self->at_trig[slot], self->at_foot[slot]);
        self->at_trig[slot] = trigger_offset;
        self->at_foot[slot] =
            ((uint64_t)1 << trigger_offset) | ((uint64_t)1 << offset);
        return -1;
    }

    /* Brand-new region: FT allocation (silent LRU) + trigger prediction. */
    int evicted;
    fslot = ft_insert(&self->ft, region, &evicted);
    self->ft_off[fslot] = offset;

    int observed = self->merge_counts[offset];
    if (observed == 0)
        return -1;
    const int max_conf = self->max_confidence;
    int scale = observed < max_conf ? observed : max_conf;
    const long long l1m = self->l1_min[scale];
    const long long l2m = self->l2_min[scale];
    const int blocks = self->blocks;
    const int anchor = self->anchor;
    const long long base = region * blocks;
    const int *counters = self->opt + (size_t)offset * blocks;
    int count_out = 0;
    for (int b = 0; b < blocks; b++) {
        long long count = counters[b];
        if (count < l2m)
            continue;
        long long target_offset = anchor ? (b + offset) % blocks : b;
        if (target_offset == offset)
            continue;
        self->out_buf[count_out++] =
            ((base + target_offset) << 1) | (count >= l1m ? 1 : 0);
    }
    return count_out;
}

static PyObject *
PMP_train(PMPKernel *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "train(pc, address)");
        return NULL;
    }
    long long address = PyLong_AsLongLong(args[1]);
    if (PyErr_Occurred())
        return NULL;
    return packed_result(self->out_buf, pmp_train_impl(self, address));
}

static void
pmp_evict_impl(PMPKernel *self, long long block)
{
    long long region;
    if (self->region_shift >= 0)
        region = block >> (self->region_shift - 6);
    else
        region = (block << 6) / self->region_size;
    int slot = ft_find(&self->at, region);
    if (slot >= 0) {
        pmp_merge(self, self->at_trig[slot], self->at_foot[slot]);
        ft_drop_slot(&self->at, slot);
    }
}

static PyObject *
PMP_evict(PMPKernel *self, PyObject *arg)
{
    long long block = PyLong_AsLongLong(arg);
    if (block == -1 && PyErr_Occurred())
        return NULL;
    pmp_evict_impl(self, block);
    Py_RETURN_NONE;
}

static PyObject *
PMP_reset(PMPKernel *self, PyObject *Py_UNUSED(ignored))
{
    ft_clear(&self->ft);
    ft_clear(&self->at);
    memset(self->opt, 0, sizeof(int) * self->blocks * self->blocks);
    memset(self->merge_counts, 0, sizeof(int) * self->blocks);
    Py_RETURN_NONE;
}

static PyMethodDef PMP_methods[] = {
    {"train", (PyCFunction)(void (*)(void))PMP_train, METH_FASTCALL,
     "One train step; returns a list of packed prefetches or None."},
    {"evict", (PyCFunction)PMP_evict, METH_O,
     "Deactivate (and merge) the region of an evicted block."},
    {"reset", (PyCFunction)PMP_reset, METH_NOARGS, "Clear all state."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject PMPKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels.PMPKernel",
    .tp_basicsize = sizeof(PMPKernel),
    .tp_dealloc = (destructor)PMP_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "C twin of PMPPrefetcher's train_flat state machine.",
    .tp_methods = PMP_methods,
    .tp_init = (initproc)PMP_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================== */
/* TriangelKernel: C twin of TriangelPrefetcher.train                  */
/* ================================================================== */
typedef struct {
    PyObject_HEAD
    int sample_rate;
    int markov_sets;
    int markov_ways;
    int degree;
    int distance;
    int train_threshold;
    int predict_threshold;
    int max_confidence;
    /* training unit: pc -> (history ring, reuse confidence, observed) */
    FTable training;
    long long *tr_hist; /* `distance` blocks per slot */
    int *tr_start;
    int *tr_len;
    int *tr_conf;
    long long *tr_observed;
    /* sample table: block -> owning pc */
    FTable samples;
    long long *sample_pc;
    /* Markov table: per-set ordered arrays, index 0 = LRU */
    long long *mk_tag;
    long long *mk_succ;
    int *mk_conf;
    int *mk_count;
    long long out_buf[64]; /* packed prefetches from the last train_impl */
} TriangelKernel;

static void
Triangel_dealloc(TriangelKernel *self)
{
    ft_dealloc(&self->training);
    ft_dealloc(&self->samples);
    PyMem_Free(self->tr_hist);
    PyMem_Free(self->tr_start);
    PyMem_Free(self->tr_len);
    PyMem_Free(self->tr_conf);
    PyMem_Free(self->tr_observed);
    PyMem_Free(self->sample_pc);
    PyMem_Free(self->mk_tag);
    PyMem_Free(self->mk_succ);
    PyMem_Free(self->mk_conf);
    PyMem_Free(self->mk_count);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Triangel_init(TriangelKernel *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "training_entries", "sample_entries", "sample_rate", "markov_sets",
        "markov_ways", "degree", "distance", "train_threshold",
        "predict_threshold", "max_confidence",
        NULL,
    };
    int training_entries, sample_entries;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "iiiiiiiiii", kwlist,
            &training_entries, &sample_entries, &self->sample_rate,
            &self->markov_sets, &self->markov_ways, &self->degree,
            &self->distance, &self->train_threshold, &self->predict_threshold,
            &self->max_confidence))
        return -1;
    if (training_entries <= 0 || sample_entries <= 0 ||
        self->markov_sets <= 0 || self->markov_ways <= 0) {
        PyErr_SetString(PyExc_ValueError, "table sizes must be positive");
        return -1;
    }
    if (self->sample_rate <= 0 || self->degree <= 0 || self->distance <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "sample_rate, degree and distance must be positive");
        return -1;
    }
    if (self->degree > 64) {
        /* The predict walk keeps its `seen` set on the stack. */
        PyErr_SetString(PyExc_ValueError,
                        "TriangelKernel supports at most degree 64");
        return -1;
    }
    if (ft_init(&self->training, training_entries) < 0 ||
        ft_init(&self->samples, sample_entries) < 0)
        goto nomem;
    self->tr_hist =
        PyMem_Malloc(sizeof(long long) * training_entries * self->distance);
    self->tr_start = PyMem_Malloc(sizeof(int) * training_entries);
    self->tr_len = PyMem_Malloc(sizeof(int) * training_entries);
    self->tr_conf = PyMem_Malloc(sizeof(int) * training_entries);
    self->tr_observed = PyMem_Malloc(sizeof(long long) * training_entries);
    self->sample_pc = PyMem_Malloc(sizeof(long long) * sample_entries);
    int mk_size = self->markov_sets * self->markov_ways;
    self->mk_tag = PyMem_Malloc(sizeof(long long) * mk_size);
    self->mk_succ = PyMem_Malloc(sizeof(long long) * mk_size);
    self->mk_conf = PyMem_Malloc(sizeof(int) * mk_size);
    self->mk_count = PyMem_Malloc(sizeof(int) * self->markov_sets);
    if (!self->tr_hist || !self->tr_start || !self->tr_len ||
        !self->tr_conf || !self->tr_observed || !self->sample_pc ||
        !self->mk_tag || !self->mk_succ || !self->mk_conf || !self->mk_count)
        goto nomem;
    memset(self->mk_count, 0, sizeof(int) * self->markov_sets);
    return 0;
nomem:
    PyErr_NoMemory();
    return -1;
}

static inline int
mk_find(TriangelKernel *self, int set, long long tag)
{
    const long long *tags = self->mk_tag + (size_t)set * self->markov_ways;
    const int n = self->mk_count[set];
    for (int i = 0; i < n; i++)
        if (tags[i] == tag)
            return i;
    return -1;
}

/* Move entry i of a set to the MRU position (OrderedDict.move_to_end). */
static void
mk_touch(TriangelKernel *self, int set, int i)
{
    int n = self->mk_count[set];
    if (i == n - 1)
        return;
    size_t base = (size_t)set * self->markov_ways;
    long long tag = self->mk_tag[base + i];
    long long succ = self->mk_succ[base + i];
    int conf = self->mk_conf[base + i];
    int tail = n - i - 1;
    memmove(self->mk_tag + base + i, self->mk_tag + base + i + 1,
            sizeof(long long) * tail);
    memmove(self->mk_succ + base + i, self->mk_succ + base + i + 1,
            sizeof(long long) * tail);
    memmove(self->mk_conf + base + i, self->mk_conf + base + i + 1,
            sizeof(int) * tail);
    self->mk_tag[base + n - 1] = tag;
    self->mk_succ[base + n - 1] = succ;
    self->mk_conf[base + n - 1] = conf;
}

/* Exact port of TriangelPrefetcher._markov_update. */
static void
mk_update(TriangelKernel *self, long long prev_block, long long block)
{
    int set = (int)(prev_block % self->markov_sets);
    long long tag = prev_block / self->markov_sets;
    int i = mk_find(self, set, tag);
    size_t base = (size_t)set * self->markov_ways;
    if (i >= 0) {
        mk_touch(self, set, i);
        size_t idx = base + self->mk_count[set] - 1;
        if (self->mk_succ[idx] == block) {
            int conf = self->mk_conf[idx] + 1;
            self->mk_conf[idx] =
                conf < self->max_confidence ? conf : self->max_confidence;
        } else {
            self->mk_conf[idx] -= 1;
            if (self->mk_conf[idx] <= 0) {
                self->mk_succ[idx] = block;
                self->mk_conf[idx] = 1;
            }
        }
        return;
    }
    int n = self->mk_count[set];
    if (n >= self->markov_ways) {
        /* Evict the set LRU (index 0). */
        memmove(self->mk_tag + base, self->mk_tag + base + 1,
                sizeof(long long) * (n - 1));
        memmove(self->mk_succ + base, self->mk_succ + base + 1,
                sizeof(long long) * (n - 1));
        memmove(self->mk_conf + base, self->mk_conf + base + 1,
                sizeof(int) * (n - 1));
        n--;
    }
    self->mk_tag[base + n] = tag;
    self->mk_succ[base + n] = block;
    self->mk_conf[base + n] = 1;
    self->mk_count[set] = n + 1;
}

static int
triangel_train_impl(TriangelKernel *self, long long pc, long long address)
{
    long long block = address >> 6;
    FTable *tr = &self->training;
    int slot = ft_find(tr, pc);
    if (slot < 0) {
        int evicted;
        slot = ft_insert(tr, pc, &evicted);
        self->tr_hist[(size_t)slot * self->distance] = block;
        self->tr_start[slot] = 0;
        self->tr_len[slot] = 1;
        self->tr_conf[slot] = 0;
        self->tr_observed[slot] = 0;
        return -1;
    }
    ft_touch(tr, slot);

    /* ---- sampler (exact port of _sample) ---- */
    int s = ft_find(&self->samples, block);
    if (s >= 0) {
        long long owner = self->sample_pc[s];
        ft_drop_slot(&self->samples, s);
        int o = ft_find(tr, owner);
        if (o >= 0) {
            int conf = self->tr_conf[o] + 1;
            self->tr_conf[o] =
                conf < self->max_confidence ? conf : self->max_confidence;
        }
    } else {
        self->tr_observed[slot] += 1;
        if (self->tr_observed[slot] % self->sample_rate == 0) {
            int evicted;
            int s2 = ft_insert(&self->samples, block, &evicted);
            if (evicted) {
                /* The sample aged out unused: back off its owning PC. */
                long long ev_owner = self->sample_pc[s2];
                int o = ft_find(tr, ev_owner);
                if (o >= 0 && self->tr_conf[o] > 0)
                    self->tr_conf[o] -= 1;
            }
            self->sample_pc[s2] = pc;
        }
    }

    const int trained = self->tr_conf[slot] >= self->train_threshold;
    const int distance = self->distance;
    long long *hist = self->tr_hist + (size_t)slot * distance;
    int hstart = self->tr_start[slot];
    int hlen = self->tr_len[slot];
    if (hlen >= distance) {
        long long h0 = hist[hstart];
        if (trained && h0 != block)
            mk_update(self, h0, block);
        int trim = hlen - distance + 1;
        hstart += trim;
        if (hstart >= distance)
            hstart -= distance;
        hlen -= trim;
    }
    int pos = hstart + hlen;
    if (pos >= distance)
        pos -= distance;
    hist[pos] = block;
    hlen++;
    self->tr_start[slot] = hstart;
    self->tr_len[slot] = hlen;
    if (!trained)
        return -1;

    /* ---- predict: chained Markov walk, all L1 hints ---- */
    long long seen[65];
    int seen_n = 0;
    seen[seen_n++] = block;
    long long current = block;
    int count = 0;
    for (int hop = 0; hop < self->degree; hop++) {
        int set = (int)(current % self->markov_sets);
        long long tag = current / self->markov_sets;
        int mi = mk_find(self, set, tag);
        if (mi < 0)
            break;
        size_t idx = (size_t)set * self->markov_ways + mi;
        if (self->mk_conf[idx] < self->predict_threshold)
            break;
        long long target = self->mk_succ[idx];
        int dup = 0;
        for (int j = 0; j < seen_n; j++)
            if (seen[j] == target) { dup = 1; break; }
        if (dup)
            break;
        seen[seen_n++] = target;
        self->out_buf[count++] = (target << 1) | 1;
        current = target;
    }
    return count;
}

static PyObject *
Triangel_train(TriangelKernel *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "train(pc, address)");
        return NULL;
    }
    long long pc = PyLong_AsLongLong(args[0]);
    long long address = PyLong_AsLongLong(args[1]);
    if (PyErr_Occurred())
        return NULL;
    return packed_result(self->out_buf, triangel_train_impl(self, pc, address));
}

static PyObject *
Triangel_reset(TriangelKernel *self, PyObject *Py_UNUSED(ignored))
{
    ft_clear(&self->training);
    ft_clear(&self->samples);
    memset(self->mk_count, 0, sizeof(int) * self->markov_sets);
    Py_RETURN_NONE;
}

static PyMethodDef Triangel_methods[] = {
    {"train", (PyCFunction)(void (*)(void))Triangel_train, METH_FASTCALL,
     "One miss-stream train step; returns packed prefetches or None."},
    {"reset", (PyCFunction)Triangel_reset, METH_NOARGS, "Clear all state."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject TriangelKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels.TriangelKernel",
    .tp_basicsize = sizeof(TriangelKernel),
    .tp_dealloc = (destructor)Triangel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "C twin of TriangelPrefetcher's train state machine.",
    .tp_methods = Triangel_methods,
    .tp_init = (initproc)Triangel_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================== */
/* DriverKernel — the batched driver loop of
 * repro.sim.simulator._execute_batched in C: flat array-backed
 * L1/L2/LLC state, demand_hit_run-equivalent run scans with batched
 * LRU touches, the fused demand path with exact eviction-listener
 * semantics, MSHR min-ready bookkeeping, DRAM bank/channel timing and
 * the simple-core clock.  The Python batched driver stays the
 * bit-exact oracle; repro.sim.driver loads a snapshot of the live
 * hierarchy, feeds whole BatchedTrace chunks per run() call, and
 * exports all state back on detach.                                   */

#define CB_PREFETCHED 1u
#define CB_USEFUL 2u
#define CB_FROM_DRAM 4u
#define CB_DIRTY 8u
#define CB_COUNTED 16u

enum {
    DRV_PF_NONE = 0,
    DRV_PF_BERTI = 1,
    DRV_PF_GAZE = 2,
    DRV_PF_PMP = 3,
    DRV_PF_TRIANGEL = 4,
};

/* One set-associative cache level: rows stored LRU -> MRU (index 0 is
 * the eviction victim, mirroring dict insertion order in the oracle). */
typedef struct {
    int sets;
    int ways;
    long long mask;      /* sets - 1 (power-of-two set counts only)    */
    long long *tag;      /* sets * ways block numbers                  */
    unsigned char *flag; /* parallel CB_* flag bytes                   */
    int *size;           /* live entries per set                       */
    long long hits, misses, evictions, useless;
} DCache;

typedef struct {
    long long *tag;
    unsigned char *flg;
    long long set;
    int n;
} DCRow;

static int
dc_init(DCache *c, int sets, int ways)
{
    c->sets = sets;
    c->ways = ways;
    c->mask = (long long)sets - 1;
    c->hits = c->misses = c->evictions = c->useless = 0;
    c->tag = PyMem_Malloc(sizeof(long long) * (size_t)sets * (size_t)ways);
    c->flag = PyMem_Malloc(sizeof(unsigned char) * (size_t)sets * (size_t)ways);
    c->size = PyMem_Malloc(sizeof(int) * (size_t)sets);
    if (!c->tag || !c->flag || !c->size)
        return -1;
    memset(c->size, 0, sizeof(int) * (size_t)sets);
    return 0;
}

static void
dc_free(DCache *c)
{
    PyMem_Free(c->tag);
    PyMem_Free(c->flag);
    PyMem_Free(c->size);
    c->tag = NULL;
    c->flag = NULL;
    c->size = NULL;
}

static inline DCRow
dc_row(DCache *c, long long block)
{
    DCRow r;
    r.set = block & c->mask;
    r.tag = c->tag + (size_t)r.set * (size_t)c->ways;
    r.flg = c->flag + (size_t)r.set * (size_t)c->ways;
    r.n = c->size[r.set];
    return r;
}

static inline int
dcrow_find(const DCRow *r, long long block)
{
    for (int i = 0; i < r->n; i++)
        if (r->tag[i] == block)
            return i;
    return -1;
}

/* LRU touch: move position `pos` to the MRU end (dict del/re-insert). */
static inline void
dcrow_touch(DCRow *r, int pos)
{
    if (pos == r->n - 1)
        return;
    long long t = r->tag[pos];
    unsigned char f = r->flg[pos];
    memmove(r->tag + pos, r->tag + pos + 1,
            sizeof(long long) * (size_t)(r->n - 1 - pos));
    memmove(r->flg + pos, r->flg + pos + 1,
            sizeof(unsigned char) * (size_t)(r->n - 1 - pos));
    r->tag[r->n - 1] = t;
    r->flg[r->n - 1] = f;
}

static inline int
dc_contains(DCache *c, long long block)
{
    DCRow r = dc_row(c, block);
    return dcrow_find(&r, block) >= 0;
}

typedef struct {
    PyObject_HEAD
    /* hierarchy */
    DCache l1, l2, llc;
    long long lat_l1, lat_l2, lat_llc, lat_l2_source, lat_llc_source;
    /* L1 MSHR: insertion-ordered parallel arrays                      */
    int mshr_cap, mshr_n;
    long long *mshr_block;
    long long *mshr_ready;
    unsigned char *mshr_dram;
    long long mshr_min_ready; /* LLONG_MAX == +inf                     */
    /* prefetch queue: ring of packed ints (block << 1 | to_l1)        */
    int pq_cap, pq_head, pq_n, pq_drain;
    long long *pq;
    /* DRAM (dr_banks = banks per channel)                             */
    int dr_channels, dr_banks;
    long long dr_row_div, dr_lat_row_hit, dr_lat_row_miss;
    double dr_transfer;
    long long *dr_open_row;   /* per global bank, -1 == closed         */
    double *dr_bank_busy;     /* per global bank                       */
    double *dr_channel_busy;  /* per channel                           */
    /* core */
    int width;
    double fetch_inc;
    long long rob, lq;
    int miss_limit;
    long long miss_threshold;
    long long instr;
    double fetch, last_retire, issue;
    long long *out_pos;       /* outstanding ring: issue positions     */
    double *out_comp;         /* parallel completion cycles            */
    int out_head, out_n, out_cap;
    double *missv;            /* outstanding misses (unsorted)         */
    int miss_n, miss_cap;
    double misses_min;        /* INFINITY == none                      */
    /* prefetcher twin (borrowed train state, owned reference)         */
    int ptype;
    PyObject *pf_kernel;
    /* decoded-trace identity cache                                    */
    PyObject *tr_key_addr, *tr_key_block;
    Py_ssize_t tr_len, tr_cap;
    long long *tr_addr, *tr_pc, *tr_block, *tr_gap;
    unsigned char *tr_kind;
    /* stat deltas accumulated since the last drain_stats()            */
    long long st_demand, st_l1_hits, st_l1_misses, st_l2_hits, st_l2_misses;
    long long st_llc_hits, st_llc_misses, st_dram_reads, st_latency;
    long long st_pf_generated, st_pf_issued, st_pf_drop_q, st_pf_drop_mshr;
    long long st_pf_redundant, st_pf_fill_l1, st_pf_fill_l2;
    long long st_pf_useful_l1, st_pf_useful_l2, st_pf_useless, st_pf_late;
    long long st_pf_covered;
    long long st_pq_enq, st_pq_drop;
    long long dr_requests, dr_demand, dr_prefetch;
    long long dr_row_hits, dr_row_misses, dr_queue_wait, dr_service;
} DriverKernel;

/* Fill `block` into level `c` (guaranteed absent).  Replicates
 * Cache.fill_absent: victim accounting, the per-level eviction
 * listeners (_count_useless_eviction on L1/L2 only, the prefetcher
 * eviction callback on L1 only), then MRU insertion. */
static void
drv_fill(DriverKernel *d, DCache *c, long long block,
         unsigned char flags, int level)
{
    DCRow r = dc_row(c, block);
    if (r.n >= c->ways) {
        long long vtag = r.tag[0];
        unsigned char vf = r.flg[0];
        c->evictions++;
        if ((vf & CB_PREFETCHED) && !(vf & CB_USEFUL)) {
            c->useless++;
            if (level < 3)
                d->st_pf_useless++;
        }
        if (level == 1) {
            if (d->ptype == DRV_PF_GAZE)
                gaze_evict_impl((GazeKernel *)d->pf_kernel, vtag);
            else if (d->ptype == DRV_PF_PMP)
                pmp_evict_impl((PMPKernel *)d->pf_kernel, vtag);
        }
        memmove(r.tag, r.tag + 1, sizeof(long long) * (size_t)(r.n - 1));
        memmove(r.flg, r.flg + 1, sizeof(unsigned char) * (size_t)(r.n - 1));
        r.tag[r.n - 1] = block;
        r.flg[r.n - 1] = flags;
    } else {
        r.tag[r.n] = block;
        r.flg[r.n] = flags;
        c->size[r.set] = r.n + 1;
    }
}

/* DRAMModel.access: returns bus_done (caller derives the latency via
 * round(bus_done - cycle), banker's rounding == nearbyint under the
 * default FE_TONEAREST mode). */
static double
drv_dram(DriverKernel *d, long long block, long long cyc, int is_prefetch)
{
    long long channel = block % d->dr_channels;
    long long bank =
        channel * d->dr_banks + (block / d->dr_channels) % d->dr_banks;
    long long row = block / d->dr_row_div;
    long long array_latency;
    if (d->dr_open_row[bank] == row) {
        array_latency = d->dr_lat_row_hit;
        d->dr_row_hits++;
    } else {
        array_latency = d->dr_lat_row_miss;
        d->dr_row_misses++;
        d->dr_open_row[bank] = row;
    }
    double bank_wait = d->dr_bank_busy[bank] - (double)cyc;
    if (bank_wait < 0.0)
        bank_wait = 0.0;
    double array_done = ((double)cyc + bank_wait) + (double)array_latency;
    d->dr_bank_busy[bank] = array_done;
    double bus_start = d->dr_channel_busy[channel];
    if (array_done > bus_start)
        bus_start = array_done;
    double bus_done = bus_start + d->dr_transfer;
    d->dr_channel_busy[channel] = bus_done;
    double bus_wait = bus_start - array_done;
    d->dr_requests++;
    if (is_prefetch)
        d->dr_prefetch++;
    else
        d->dr_demand++;
    d->dr_queue_wait +=
        (long long)(bank_wait + (bus_wait > 0.0 ? bus_wait : 0.0));
    d->dr_service += (long long)((double)array_latency + d->dr_transfer);
    return bus_done;
}

/* CoreTimingModel.begin_memory_access (with the preceding
 * advance_non_memory(gap) folded in, exactly as the batched driver
 * inlines them). */
static void
drv_begin(DriverKernel *d, long long gap)
{
    if (gap > 0) {
        d->instr += gap;
        d->fetch += (double)gap / (double)d->width;
    }
    d->instr += 1;
    d->fetch += d->fetch_inc;
    double issue = d->fetch;
    double last_retire = d->last_retire;
    while (d->out_n && d->instr - d->out_pos[d->out_head] >= d->rob) {
        double completion = d->out_comp[d->out_head];
        if (completion > issue)
            issue = completion;
        d->out_head++;
        if (d->out_head >= d->out_cap)
            d->out_head = 0;
        d->out_n--;
        if (completion > last_retire)
            last_retire = completion;
        if (issue > last_retire)
            last_retire = issue;
    }
    while (d->out_n >= d->lq) {
        double completion = d->out_comp[d->out_head];
        if (completion > issue)
            issue = completion;
        d->out_head++;
        if (d->out_head >= d->out_cap)
            d->out_head = 0;
        d->out_n--;
        if (completion > last_retire)
            last_retire = completion;
        if (issue > last_retire)
            last_retire = issue;
    }
    if (d->miss_n >= d->miss_limit) {
        for (int i = 1; i < d->miss_n; i++) { /* misses_list.sort() */
            double v = d->missv[i];
            int j = i;
            while (j > 0 && d->missv[j - 1] > v) {
                d->missv[j] = d->missv[j - 1];
                j--;
            }
            d->missv[j] = v;
        }
        int drop = 0;
        while (d->miss_n - drop >= d->miss_limit) {
            double completed = d->missv[drop++];
            if (completed > issue)
                issue = completed;
        }
        d->miss_n -= drop;
        memmove(d->missv, d->missv + drop,
                sizeof(double) * (size_t)d->miss_n);
        d->misses_min = d->miss_n ? d->missv[0] : INFINITY;
    }
    if (d->miss_n && d->misses_min <= issue) {
        int k = 0;
        double mn = INFINITY;
        for (int i = 0; i < d->miss_n; i++) {
            double c = d->missv[i];
            if (c > issue) {
                d->missv[k++] = c;
                if (c < mn)
                    mn = c;
            }
        }
        d->miss_n = k;
        d->misses_min = k ? mn : INFINITY;
    }
    while (d->out_n && d->out_comp[d->out_head] <= issue) {
        double completion = d->out_comp[d->out_head];
        d->out_head++;
        if (d->out_head >= d->out_cap)
            d->out_head = 0;
        d->out_n--;
        if (completion > last_retire)
            last_retire = completion;
        if (issue > last_retire)
            last_retire = issue;
    }
    d->issue = issue;
    d->last_retire = last_retire;
}

/* CoreTimingModel.complete_memory_access. */
static inline void
drv_complete(DriverKernel *d, long long latency)
{
    double completion = d->issue + (double)(latency > 1 ? latency : 1);
    int tail = d->out_head + d->out_n;
    if (tail >= d->out_cap)
        tail -= d->out_cap;
    d->out_pos[tail] = d->instr;
    d->out_comp[tail] = completion;
    d->out_n++;
    if (latency > d->miss_threshold) {
        d->missv[d->miss_n++] = completion;
        if (completion < d->misses_min)
            d->misses_min = completion;
    }
    if (d->issue > d->fetch)
        d->fetch = d->issue;
}

static inline int
drv_mshr_find(DriverKernel *d, long long block)
{
    for (int i = 0; i < d->mshr_n; i++)
        if (d->mshr_block[i] == block)
            return i;
    return -1;
}

/* MSHRFile.expire with the results discarded (has_free_entry's exact
 * behaviour in the prefetch-issue path): ready entries vanish without
 * filling, _min_ready is recomputed (also when nothing expired, which
 * repairs a stale-low minimum). Call only when
 * mshr_n && cycle >= mshr_min_ready (the hoisted fast path). */
static void
drv_mshr_expire_discard(DriverKernel *d, long long cycle)
{
    int k = 0;
    long long mn = LLONG_MAX;
    for (int i = 0; i < d->mshr_n; i++) {
        if (d->mshr_ready[i] <= cycle)
            continue;
        d->mshr_block[k] = d->mshr_block[i];
        d->mshr_ready[k] = d->mshr_ready[i];
        d->mshr_dram[k] = d->mshr_dram[i];
        if (d->mshr_ready[k] < mn)
            mn = d->mshr_ready[k];
        k++;
    }
    d->mshr_n = k;
    d->mshr_min_ready = k ? mn : LLONG_MAX;
}

/* CacheHierarchy.complete_ready_prefetches: expire + fill each done
 * entry into the L1 in insertion order (fills never read the MSHR, so
 * filling during the compaction is equivalent to the oracle's
 * collect-then-fill). Same call gate as drv_mshr_expire_discard. */
static void
drv_mshr_complete(DriverKernel *d, long long cycle)
{
    int k = 0;
    long long mn = LLONG_MAX;
    for (int i = 0; i < d->mshr_n; i++) {
        if (d->mshr_ready[i] <= cycle) {
            unsigned char fl = CB_PREFETCHED;
            if (d->mshr_dram[i])
                fl |= CB_FROM_DRAM;
            drv_fill(d, &d->l1, d->mshr_block[i], fl, 1);
            continue;
        }
        d->mshr_block[k] = d->mshr_block[i];
        d->mshr_ready[k] = d->mshr_ready[i];
        d->mshr_dram[k] = d->mshr_dram[i];
        if (d->mshr_ready[k] < mn)
            mn = d->mshr_ready[k];
        k++;
    }
    d->mshr_n = k;
    d->mshr_min_ready = k ? mn : LLONG_MAX;
}

/* The demand miss chain shared by the fused and per-access loops
 * (everything below an L1 miss: L2 probe, LLC probe, DRAM access and
 * the refills).  Returns the demand latency. */
static long long
drv_demand_miss(DriverKernel *d, long long block, long long issue_cycle,
                int is_store)
{
    d->l1.misses++;
    d->st_l1_misses++;
    DCRow r2 = dc_row(&d->l2, block);
    int p2 = dcrow_find(&r2, block);
    if (p2 >= 0) {
        unsigned char f = r2.flg[p2];
        dcrow_touch(&r2, p2);
        d->l2.hits++;
        if (f & CB_PREFETCHED) {
            if (!(f & CB_USEFUL))
                f |= CB_USEFUL;
            if (!(f & CB_COUNTED)) {
                f |= CB_COUNTED;
                d->st_pf_useful_l2++;
                if (f & CB_FROM_DRAM)
                    d->st_pf_covered++;
            }
        }
        r2.flg[r2.n - 1] = f;
        drv_fill(d, &d->l1, block,
                 (unsigned char)(is_store ? CB_DIRTY : 0), 1);
        d->st_l2_hits++;
        d->st_latency += d->lat_l2;
        return d->lat_l2;
    }
    d->l2.misses++;
    d->st_l2_misses++;
    long long latency;
    unsigned char from_dram = 0;
    DCRow r3 = dc_row(&d->llc, block);
    int p3 = dcrow_find(&r3, block);
    if (p3 >= 0) {
        unsigned char f = r3.flg[p3];
        dcrow_touch(&r3, p3);
        d->llc.hits++;
        if ((f & CB_PREFETCHED) && !(f & CB_USEFUL))
            f |= CB_USEFUL;
        r3.flg[r3.n - 1] = f;
        latency = d->lat_llc;
        d->st_llc_hits++;
    } else {
        d->llc.misses++;
        d->st_llc_misses++;
        double bus_done = drv_dram(d, block, issue_cycle, 0);
        latency = d->lat_llc
                  + (long long)nearbyint(bus_done - (double)issue_cycle);
        d->st_dram_reads++;
        from_dram = CB_FROM_DRAM;
        drv_fill(d, &d->llc, block, CB_FROM_DRAM, 3);
    }
    drv_fill(d, &d->l2, block, from_dram, 2);
    drv_fill(d, &d->l1, block,
             (unsigned char)(from_dram | (is_store ? CB_DIRTY : 0)), 1);
    d->st_latency += latency;
    return latency;
}

/* In-process train dispatch (the flat protocol without the Python
 * boundary).  Returns the packed count, -1 for "nothing" (None / the
 * Triangel L1-hit gate), and points *buf at the kernel's out_buf. */
static int
drv_train(DriverKernel *d, long long pc, long long address,
          long long cycle, long long latency, int l1_hit,
          const long long **buf)
{
    switch (d->ptype) {
    case DRV_PF_BERTI: {
        BertiKernel *k = (BertiKernel *)d->pf_kernel;
        *buf = k->out_buf;
        return berti_train_impl(k, pc, address, cycle, latency);
    }
    case DRV_PF_GAZE: {
        GazeKernel *k = (GazeKernel *)d->pf_kernel;
        *buf = k->out_buf;
        return gaze_train_impl(k, pc, address);
    }
    case DRV_PF_PMP: {
        PMPKernel *k = (PMPKernel *)d->pf_kernel;
        *buf = k->out_buf;
        return pmp_train_impl(k, address);
    }
    case DRV_PF_TRIANGEL: {
        TriangelKernel *k = (TriangelKernel *)d->pf_kernel;
        if (l1_hit)
            return -1; /* the training unit observes the L1 miss stream */
        *buf = k->out_buf;
        return triangel_train_impl(k, pc, address);
    }
    default:
        return -1;
    }
}

/* ------------------------------------------------------------------ */
/* Whole-driver invariant sweep (debug builds only; see ft_check).     */
/* ------------------------------------------------------------------ */
#ifdef REPRO_DEBUG_KERNELS
/* Per-set occupancy in range, every tag mapped to the set holding it,
 * no duplicate tag within a set. */
static int
dc_check(const DCache *c, const char *where)
{
    for (long long s = 0; s < c->sets; s++) {
        int n = c->size[s];
        DK_CHECK(n >= 0 && n <= c->ways, where, "set occupancy out of range");
        const long long *tag = c->tag + (size_t)s * (size_t)c->ways;
        for (int i = 0; i < n; i++) {
            DK_CHECK((tag[i] & c->mask) == s, where,
                     "tag stored in the wrong set");
            for (int j = i + 1; j < n; j++)
                DK_CHECK(tag[i] != tag[j], where, "duplicate tag in a set");
        }
    }
    return 0;
}

static int
drv_check(DriverKernel *d)
{
    if (dc_check(&d->l1, "L1") < 0 ||
        dc_check(&d->l2, "L2") < 0 ||
        dc_check(&d->llc, "LLC") < 0)
        return -1;

    /* MSHR occupancy accounting.  The cached minimum may run stale-LOW:
     * the late-prefetch pop removes an entry without a recompute
     * (mirroring the oracle's dict pop), so it lower-bounds the true
     * minimum rather than equalling it; at n == 0 it is unconstrained. */
    DK_CHECK(d->mshr_n >= 0 && d->mshr_n <= d->mshr_cap, "MSHR",
             "occupancy out of range");
    if (d->mshr_n > 0) {
        long long mn = LLONG_MAX;
        for (int i = 0; i < d->mshr_n; i++) {
            if (d->mshr_ready[i] < mn)
                mn = d->mshr_ready[i];
            for (int j = i + 1; j < d->mshr_n; j++)
                DK_CHECK(d->mshr_block[i] != d->mshr_block[j], "MSHR",
                         "duplicate block");
        }
        DK_CHECK(d->mshr_min_ready <= mn, "MSHR",
                 "cached min above the true minimum");
    }

    /* Ring-buffer bounds; issue positions are retired in order, so the
     * outstanding ring must be position-sorted. */
    DK_CHECK(d->pq_n >= 0 && d->pq_n <= d->pq_cap, "PQ",
             "occupancy out of range");
    DK_CHECK(d->pq_head >= 0 && d->pq_head < d->pq_cap, "PQ",
             "head out of range");
    DK_CHECK(d->out_n >= 0 && d->out_n <= d->out_cap, "core ring",
             "occupancy out of range");
    DK_CHECK(d->out_head >= 0 && d->out_head < d->out_cap, "core ring",
             "head out of range");
    for (int i = 1; i < d->out_n; i++) {
        int a = (d->out_head + i - 1) % d->out_cap;
        int b = (d->out_head + i) % d->out_cap;
        DK_CHECK(d->out_pos[a] <= d->out_pos[b], "core ring",
                 "issue positions not monotonic");
    }

    /* Outstanding-miss minimum is maintained exactly (every removal
     * path recomputes it, unlike the MSHR's). */
    DK_CHECK(d->miss_n >= 0 && d->miss_n <= d->miss_cap, "core misses",
             "count out of range");
    if (d->miss_n == 0) {
        DK_CHECK(d->misses_min == INFINITY, "core misses",
                 "cached min not +inf while empty");
    } else {
        double mn = INFINITY;
        for (int i = 0; i < d->miss_n; i++)
            if (d->missv[i] < mn)
                mn = d->missv[i];
        DK_CHECK(d->misses_min == mn, "core misses", "cached min inexact");
    }

    /* Stat-delta conservation: demands flow down the hierarchy without
     * loss, DRAM traffic partitions two ways, and the per-level cache
     * counters agree with the drain deltas.  All of these hold between
     * any two drain_stats() zeroings. */
    DK_CHECK(d->st_demand == d->st_l1_hits + d->st_l1_misses, "stats",
             "demand != L1 hits + misses");
    DK_CHECK(d->st_l1_misses == d->st_l2_hits + d->st_l2_misses, "stats",
             "L1 misses != L2 hits + misses");
    DK_CHECK(d->st_l2_misses == d->st_llc_hits + d->st_llc_misses, "stats",
             "L2 misses != LLC hits + misses");
    DK_CHECK(d->st_llc_misses == d->st_dram_reads, "stats",
             "LLC misses != DRAM reads");
    DK_CHECK(d->dr_requests == d->dr_demand + d->dr_prefetch, "stats",
             "DRAM requests != demand + prefetch");
    DK_CHECK(d->dr_requests == d->dr_row_hits + d->dr_row_misses, "stats",
             "DRAM requests != row hits + misses");
    DK_CHECK(d->st_pf_generated == d->st_pq_enq + d->st_pf_drop_q, "stats",
             "pf generated != enqueued + queue-dropped");
    DK_CHECK(d->st_pq_drop == d->st_pf_drop_q, "stats",
             "queue drop counters disagree");
    DK_CHECK(d->l1.misses == d->st_l1_misses, "stats",
             "L1 cache/delta miss counters disagree");
    DK_CHECK(d->l1.hits == d->st_l1_hits - d->st_pf_late, "stats",
             "L1 cache hits != delta hits - late prefetches");
    DK_CHECK(d->l2.hits == d->st_l2_hits && d->l2.misses == d->st_l2_misses,
             "stats", "L2 cache/delta counters disagree");
    DK_CHECK(d->llc.hits == d->st_llc_hits &&
             d->llc.misses == d->st_llc_misses,
             "stats", "LLC cache/delta counters disagree");

    /* The attached train twin's LRU tables. */
    switch (d->ptype) {
    case DRV_PF_BERTI:
        return ft_check(&((BertiKernel *)d->pf_kernel)->table, "Berti table");
    case DRV_PF_GAZE: {
        GazeKernel *k = (GazeKernel *)d->pf_kernel;
        if (ft_check(&k->ft, "Gaze FT") < 0 ||
            ft_check(&k->at, "Gaze AT") < 0 ||
            ft_check(&k->pb, "Gaze PB") < 0 ||
            ft_check(&k->dpct, "Gaze DPCT") < 0)
            return -1;
        break;
    }
    case DRV_PF_PMP: {
        PMPKernel *k = (PMPKernel *)d->pf_kernel;
        if (ft_check(&k->ft, "PMP FT") < 0 ||
            ft_check(&k->at, "PMP AT") < 0)
            return -1;
        break;
    }
    case DRV_PF_TRIANGEL: {
        TriangelKernel *k = (TriangelKernel *)d->pf_kernel;
        if (ft_check(&k->training, "Triangel training") < 0 ||
            ft_check(&k->samples, "Triangel samples") < 0)
            return -1;
        for (int s = 0; s < k->markov_sets; s++)
            DK_CHECK(k->mk_count[s] >= 0 && k->mk_count[s] <= k->markov_ways,
                     "Triangel Markov", "set occupancy out of range");
        break;
    }
    default:
        break;
    }
    return 0;
}

/* Sweep call for PyObject*-returning entry points; compiles away
 * entirely in release builds. */
#define DRV_CHECK(d)                                                   \
    do {                                                               \
        if (drv_check(d) < 0)                                          \
            return NULL;                                               \
    } while (0)
#else
#define DRV_CHECK(d) do { } while (0)
#endif /* REPRO_DEBUG_KERNELS */

/* Decode the BatchedTrace arrays into flat C arrays.  Keyed on the
 * identity of the addresses/blocks lists (BatchedTrace arrays are
 * frozen after decode and chunk streams always build fresh lists), so
 * repeated run() calls over the same in-memory trace copy once. */
static int
drv_load_trace(DriverKernel *d, PyObject *addresses, PyObject *pcs,
               PyObject *blocks, PyObject *gaps, PyObject *kinds)
{
    if (!PyList_Check(addresses) || !PyList_Check(pcs)
        || !PyList_Check(blocks) || !PyList_Check(gaps)) {
        PyErr_SetString(PyExc_TypeError, "trace arrays must be lists");
        return -1;
    }
    Py_ssize_t n = PyList_GET_SIZE(addresses);
    if (PyList_GET_SIZE(pcs) != n || PyList_GET_SIZE(blocks) != n
        || PyList_GET_SIZE(gaps) != n) {
        PyErr_SetString(PyExc_ValueError, "trace arrays length mismatch");
        return -1;
    }
    const char *kbuf;
    if (PyByteArray_Check(kinds)) {
        if (PyByteArray_GET_SIZE(kinds) != n) {
            PyErr_SetString(PyExc_ValueError, "kinds length mismatch");
            return -1;
        }
        kbuf = PyByteArray_AS_STRING(kinds);
    } else if (PyBytes_Check(kinds)) {
        if (PyBytes_GET_SIZE(kinds) != n) {
            PyErr_SetString(PyExc_ValueError, "kinds length mismatch");
            return -1;
        }
        kbuf = PyBytes_AS_STRING(kinds);
    } else {
        PyErr_SetString(PyExc_TypeError, "kinds must be bytes-like");
        return -1;
    }
    if (d->tr_key_addr != addresses || d->tr_key_block != blocks
        || d->tr_len != n) {
        if (n > d->tr_cap) {
            Py_ssize_t cap = n;
            long long *na = PyMem_Malloc(sizeof(long long) * (size_t)cap);
            long long *np = PyMem_Malloc(sizeof(long long) * (size_t)cap);
            long long *nb = PyMem_Malloc(sizeof(long long) * (size_t)cap);
            long long *ng = PyMem_Malloc(sizeof(long long) * (size_t)cap);
            unsigned char *nk = PyMem_Malloc((size_t)cap);
            if (!na || !np || !nb || !ng || !nk) {
                PyMem_Free(na);
                PyMem_Free(np);
                PyMem_Free(nb);
                PyMem_Free(ng);
                PyMem_Free(nk);
                PyErr_NoMemory();
                return -1;
            }
            PyMem_Free(d->tr_addr);
            PyMem_Free(d->tr_pc);
            PyMem_Free(d->tr_block);
            PyMem_Free(d->tr_gap);
            PyMem_Free(d->tr_kind);
            d->tr_addr = na;
            d->tr_pc = np;
            d->tr_block = nb;
            d->tr_gap = ng;
            d->tr_kind = nk;
            d->tr_cap = cap;
        }
        for (Py_ssize_t i = 0; i < n; i++) {
            long long a = PyLong_AsLongLong(PyList_GET_ITEM(addresses, i));
            long long p = PyLong_AsLongLong(PyList_GET_ITEM(pcs, i));
            long long b = PyLong_AsLongLong(PyList_GET_ITEM(blocks, i));
            long long g = PyLong_AsLongLong(PyList_GET_ITEM(gaps, i));
            if (PyErr_Occurred()) {
                d->tr_len = -1;
                Py_CLEAR(d->tr_key_addr);
                Py_CLEAR(d->tr_key_block);
                return -1;
            }
            d->tr_addr[i] = a;
            d->tr_pc[i] = p;
            d->tr_block[i] = b;
            d->tr_gap[i] = g;
        }
        Py_INCREF(addresses);
        Py_XSETREF(d->tr_key_addr, addresses);
        Py_INCREF(blocks);
        Py_XSETREF(d->tr_key_block, blocks);
        d->tr_len = n;
    }
    if (n)
        memcpy(d->tr_kind, kbuf, (size_t)n);
    return 0;
}

/* run(addresses, pcs, blocks, gaps, kinds, index, budget, replays)
 * -> (index, replays, executed, yielded).  budget < 0 == unbounded
 * (one full pass of the trace). */
static PyObject *
Driver_run(DriverKernel *d, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 8) {
        PyErr_SetString(PyExc_TypeError, "run() takes exactly 8 arguments");
        return NULL;
    }
    Py_ssize_t index = PyLong_AsSsize_t(args[5]);
    long long budget = PyLong_AsLongLong(args[6]);
    long long replays = PyLong_AsLongLong(args[7]);
    if (PyErr_Occurred())
        return NULL;
    if (drv_load_trace(d, args[0], args[1], args[2], args[3], args[4]) < 0)
        return NULL;
    Py_ssize_t length = d->tr_len;
    long long executed = 0;
    int yielded = 0;
    int unbounded = budget < 0;
    if (length <= 0)
        return Py_BuildValue("(nLLi)", index, replays, executed, 0);
    if (index < 0 || index >= length) {
        PyErr_SetString(PyExc_ValueError, "trace index out of range");
        return NULL;
    }
    const long long *tr_addr = d->tr_addr;
    const long long *tr_pc = d->tr_pc;
    const long long *tr_block = d->tr_block;
    const long long *tr_gap = d->tr_gap;
    const unsigned char *tr_kind = d->tr_kind;
    long long lat_l1 = d->lat_l1;

    if (d->ptype == DRV_PF_NONE) {
        /* Fused loop: no prefetcher, so the MSHR and PQ stay empty and
         * every access is either a pure hit (run scan) or a fused
         * demand miss. */
        for (;;) {
            if (unbounded) {
                if (replays > 0)
                    break;
            } else if (executed >= budget)
                break;
            long long block = tr_block[index];
            DCRow r = dc_row(&d->l1, block);
            int pos = dcrow_find(&r, block);
            if (pos >= 0) {
                /* Cache.demand_hit_run inlined. */
                long long remaining = unbounded ? -1 : budget - executed;
                long long run = 0, instructions = 0;
                Py_ssize_t i = index;
                while (i < length) {
                    if (remaining >= 0 && instructions >= remaining)
                        break;
                    long long b = tr_block[i];
                    DCRow rr = dc_row(&d->l1, b);
                    int p = dcrow_find(&rr, b);
                    if (p < 0)
                        break;
                    unsigned char f = rr.flg[p];
                    if ((f & CB_PREFETCHED) && !(f & CB_COUNTED))
                        break;
                    dcrow_touch(&rr, p);
                    if (tr_kind[i] == 1)
                        rr.flg[rr.n - 1] |= CB_DIRTY;
                    instructions += tr_gap[i] + 1;
                    run++;
                    i++;
                }
                d->l1.hits += run;
                if (run) {
                    for (Py_ssize_t ri = index; ri < index + run; ri++) {
                        drv_begin(d, tr_gap[ri]);
                        drv_complete(d, lat_l1);
                    }
                    d->st_demand += run;
                    d->st_l1_hits += run;
                    d->st_latency += run * lat_l1;
                    executed += instructions;
                    index += run;
                    yielded = 1;
                    if (index >= length) {
                        index = 0;
                        replays++;
                    }
                    continue;
                }
            }
            /* Fused per-access demand path (the probe above is still
             * valid: a zero-length run scan is side-effect free). */
            long long gap = tr_gap[index];
            int is_store = tr_kind[index] == 1;
            index++;
            if (index >= length) {
                index = 0;
                replays++;
            }
            yielded = 1;
            drv_begin(d, gap);
            executed += gap + 1;
            d->st_demand++;
            long long latency;
            if (pos >= 0) {
                unsigned char f = r.flg[pos];
                dcrow_touch(&r, pos);
                d->l1.hits++;
                if (f & CB_PREFETCHED) {
                    if (!(f & CB_USEFUL))
                        f |= CB_USEFUL;
                    if (!(f & CB_COUNTED)) {
                        f |= CB_COUNTED;
                        d->st_pf_useful_l1++;
                        if (f & CB_FROM_DRAM)
                            d->st_pf_covered++;
                    }
                }
                if (is_store)
                    f |= CB_DIRTY;
                r.flg[r.n - 1] = f;
                d->st_l1_hits++;
                d->st_latency += lat_l1;
                latency = lat_l1;
            } else {
                latency = drv_demand_miss(d, block, (long long)d->issue,
                                          is_store);
            }
            drv_complete(d, latency);
        }
    } else {
        /* Per-access loop: the prefetcher observes every demand load
         * in program order (packed PQ drain + inlined demand chain +
         * in-process train). */
        while (unbounded || executed < budget) {
            if (unbounded && replays > 0)
                break;
            long long gap = tr_gap[index];
            int kind = tr_kind[index];
            long long address = tr_addr[index];
            long long block = tr_block[index];
            long long pc = tr_pc[index];
            index++;
            if (index >= length) {
                index = 0;
                replays++;
            }
            yielded = 1;
            drv_begin(d, gap);
            long long issue_cycle = (long long)d->issue;
            executed += gap + 1;
            int is_store = kind == 1;

            if (d->pq_n) {
                /* Packed PQ drain (_issue_prefetch inlined). */
                int issued = 0;
                while (d->pq_n && issued < d->pq_drain) {
                    long long p = d->pq[d->pq_head];
                    d->pq_head++;
                    if (d->pq_head >= d->pq_cap)
                        d->pq_head = 0;
                    d->pq_n--;
                    issued++;
                    long long pblock = p >> 1;
                    if (dc_contains(&d->l1, pblock)
                        || drv_mshr_find(d, pblock) >= 0) {
                        d->st_pf_redundant++;
                        continue;
                    }
                    DCRow r2 = dc_row(&d->l2, pblock);
                    int p2 = dcrow_find(&r2, pblock);
                    int to_l1 = (int)(p & 1);
                    if (!to_l1 && p2 >= 0) {
                        d->st_pf_redundant++;
                        continue;
                    }
                    d->st_pf_issued++;
                    unsigned char from_dram = 0;
                    long long source_latency;
                    if (p2 >= 0) {
                        source_latency = d->lat_l2_source;
                        dcrow_touch(&r2, p2);
                    } else {
                        DCRow r3 = dc_row(&d->llc, pblock);
                        int p3 = dcrow_find(&r3, pblock);
                        if (p3 >= 0) {
                            dcrow_touch(&r3, p3);
                            source_latency = d->lat_llc_source;
                        } else {
                            double bus_done =
                                drv_dram(d, pblock, issue_cycle, 1);
                            source_latency =
                                d->lat_llc_source
                                + (long long)nearbyint(
                                      bus_done - (double)issue_cycle);
                            from_dram = CB_FROM_DRAM;
                            drv_fill(d, &d->llc, pblock, CB_FROM_DRAM, 3);
                        }
                    }
                    if (to_l1) {
                        /* has_free_entry: expire-and-discard, then the
                         * capacity check. */
                        if (d->mshr_n && issue_cycle >= d->mshr_min_ready)
                            drv_mshr_expire_discard(d, issue_cycle);
                        if (d->mshr_n >= d->mshr_cap) {
                            d->st_pf_drop_mshr++;
                            if (!dc_contains(&d->l2, pblock)) {
                                drv_fill(d, &d->l2, pblock,
                                         (unsigned char)(CB_PREFETCHED
                                                         | from_dram),
                                         2);
                                d->st_pf_fill_l2++;
                            }
                            continue;
                        }
                        long long ready = issue_cycle + source_latency;
                        d->mshr_block[d->mshr_n] = pblock;
                        d->mshr_ready[d->mshr_n] = ready;
                        d->mshr_dram[d->mshr_n] = from_dram ? 1 : 0;
                        d->mshr_n++;
                        if (ready < d->mshr_min_ready)
                            d->mshr_min_ready = ready;
                        d->st_pf_fill_l1++;
                    } else {
                        if (!dc_contains(&d->l2, pblock)) {
                            drv_fill(d, &d->l2, pblock,
                                     (unsigned char)(CB_PREFETCHED
                                                     | from_dram),
                                     2);
                            d->st_pf_fill_l2++;
                        } else {
                            d->st_pf_redundant++;
                        }
                    }
                }
            }

            /* Inlined demand_access. */
            d->st_demand++;
            long long latency;
            int l1_level = 0;
            int infl = -1;
            if (d->mshr_n) {
                if (issue_cycle >= d->mshr_min_ready)
                    drv_mshr_complete(d, issue_cycle);
                infl = drv_mshr_find(d, block);
            }
            if (infl >= 0) {
                /* Late prefetch: the block is in flight. */
                long long remaining = d->mshr_ready[infl] - issue_cycle;
                latency = remaining > lat_l1 ? remaining : lat_l1;
                unsigned char fl = CB_PREFETCHED | CB_USEFUL;
                if (d->mshr_dram[infl])
                    fl |= CB_FROM_DRAM;
                if (is_store)
                    fl |= CB_DIRTY;
                /* dict pop: no _min_ready recompute. */
                memmove(d->mshr_block + infl, d->mshr_block + infl + 1,
                        sizeof(long long) * (size_t)(d->mshr_n - 1 - infl));
                memmove(d->mshr_ready + infl, d->mshr_ready + infl + 1,
                        sizeof(long long) * (size_t)(d->mshr_n - 1 - infl));
                memmove(d->mshr_dram + infl, d->mshr_dram + infl + 1,
                        sizeof(unsigned char)
                            * (size_t)(d->mshr_n - 1 - infl));
                d->mshr_n--;
                drv_fill(d, &d->l1, block, fl, 1);
                d->st_l1_hits++;
                d->st_pf_useful_l1++;
                d->st_pf_late++;
                if (fl & CB_FROM_DRAM)
                    d->st_pf_covered++;
                d->st_latency += latency;
                l1_level = 1;
            } else {
                DCRow r1 = dc_row(&d->l1, block);
                int p1 = dcrow_find(&r1, block);
                if (p1 >= 0) {
                    unsigned char f = r1.flg[p1];
                    dcrow_touch(&r1, p1);
                    d->l1.hits++;
                    if (f & CB_PREFETCHED) {
                        if (!(f & CB_USEFUL))
                            f |= CB_USEFUL;
                        if (!(f & CB_COUNTED)) {
                            f |= CB_COUNTED;
                            d->st_pf_useful_l1++;
                            if (f & CB_FROM_DRAM)
                                d->st_pf_covered++;
                        }
                    }
                    if (is_store)
                        f |= CB_DIRTY;
                    r1.flg[r1.n - 1] = f;
                    d->st_l1_hits++;
                    d->st_latency += lat_l1;
                    latency = lat_l1;
                    l1_level = 1;
                } else {
                    latency =
                        drv_demand_miss(d, block, issue_cycle, is_store);
                }
            }
            drv_complete(d, latency);

            if (kind == 0) {
                const long long *buf = NULL;
                int cnt = drv_train(d, pc, address, issue_cycle, latency,
                                    l1_level, &buf);
                if (cnt > 0) {
                    int accepted = 0;
                    for (int i = 0; i < cnt; i++) {
                        if (d->pq_n < d->pq_cap) {
                            int tail = d->pq_head + d->pq_n;
                            if (tail >= d->pq_cap)
                                tail -= d->pq_cap;
                            d->pq[tail] = buf[i];
                            d->pq_n++;
                            accepted++;
                        }
                    }
                    d->st_pq_enq += accepted;
                    d->st_pf_generated += cnt;
                    if (accepted != cnt) {
                        d->st_pq_drop += cnt - accepted;
                        d->st_pf_drop_q += cnt - accepted;
                    }
                }
            }
        }
    }
    DRV_CHECK(d);
    return Py_BuildValue("(nLLi)", index, replays, executed, yielded);
}

static void
drv_zero_stats(DriverKernel *d)
{
    d->st_demand = d->st_l1_hits = d->st_l1_misses = 0;
    d->st_l2_hits = d->st_l2_misses = d->st_llc_hits = d->st_llc_misses = 0;
    d->st_dram_reads = d->st_latency = 0;
    d->st_pf_generated = d->st_pf_issued = d->st_pf_drop_q = 0;
    d->st_pf_drop_mshr = d->st_pf_redundant = 0;
    d->st_pf_fill_l1 = d->st_pf_fill_l2 = 0;
    d->st_pf_useful_l1 = d->st_pf_useful_l2 = d->st_pf_useless = 0;
    d->st_pf_late = d->st_pf_covered = 0;
    d->st_pq_enq = d->st_pq_drop = 0;
    d->l1.hits = d->l1.misses = d->l1.evictions = d->l1.useless = 0;
    d->l2.hits = d->l2.misses = d->l2.evictions = d->l2.useless = 0;
    d->llc.hits = d->llc.misses = d->llc.evictions = d->llc.useless = 0;
    d->dr_requests = d->dr_demand = d->dr_prefetch = 0;
    d->dr_row_hits = d->dr_row_misses = d->dr_queue_wait = d->dr_service = 0;
}

static void
drv_free_buffers(DriverKernel *d)
{
    dc_free(&d->l1);
    dc_free(&d->l2);
    dc_free(&d->llc);
    PyMem_Free(d->mshr_block);
    PyMem_Free(d->mshr_ready);
    PyMem_Free(d->mshr_dram);
    PyMem_Free(d->pq);
    PyMem_Free(d->dr_open_row);
    PyMem_Free(d->dr_bank_busy);
    PyMem_Free(d->dr_channel_busy);
    PyMem_Free(d->out_pos);
    PyMem_Free(d->out_comp);
    PyMem_Free(d->missv);
    PyMem_Free(d->tr_addr);
    PyMem_Free(d->tr_pc);
    PyMem_Free(d->tr_block);
    PyMem_Free(d->tr_gap);
    PyMem_Free(d->tr_kind);
    d->mshr_block = d->mshr_ready = NULL;
    d->mshr_dram = NULL;
    d->pq = NULL;
    d->dr_open_row = NULL;
    d->dr_bank_busy = d->dr_channel_busy = NULL;
    d->out_pos = NULL;
    d->out_comp = NULL;
    d->missv = NULL;
    d->tr_addr = d->tr_pc = d->tr_block = d->tr_gap = NULL;
    d->tr_kind = NULL;
    d->tr_cap = 0;
    d->tr_len = -1;
}

static void
Driver_dealloc(DriverKernel *d)
{
    drv_free_buffers(d);
    Py_XDECREF(d->pf_kernel);
    Py_XDECREF(d->tr_key_addr);
    Py_XDECREF(d->tr_key_block);
    Py_TYPE(d)->tp_free((PyObject *)d);
}

static int
drv_pow2(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

static int
Driver_init(DriverKernel *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "l1_sets", "l1_ways", "l2_sets", "l2_ways", "llc_sets", "llc_ways",
        "lat_l1", "lat_l2", "lat_llc", "lat_l2_source", "lat_llc_source",
        "mshr_capacity", "pq_capacity", "pq_drain",
        "dram_channels", "dram_banks", "dram_row_div", "dram_row_hit",
        "dram_row_miss", "dram_transfer",
        "width", "fetch_increment", "rob", "lq", "miss_limit",
        "miss_threshold", "ptype", "kernel", NULL,
    };
    int l1_sets, l1_ways, l2_sets, l2_ways, llc_sets, llc_ways;
    long long lat_l1, lat_l2, lat_llc, lat_l2_source, lat_llc_source;
    int mshr_capacity, pq_capacity, pq_drain;
    int dram_channels, dram_banks;
    long long dram_row_div, dram_row_hit, dram_row_miss;
    double dram_transfer;
    int width;
    double fetch_increment;
    long long rob, lq;
    int miss_limit;
    long long miss_threshold;
    int ptype;
    PyObject *kernel;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "iiiiiiLLLLLiiiiiLLLdidLLiLiO", kwlist,
            &l1_sets, &l1_ways, &l2_sets, &l2_ways, &llc_sets, &llc_ways,
            &lat_l1, &lat_l2, &lat_llc, &lat_l2_source, &lat_llc_source,
            &mshr_capacity, &pq_capacity, &pq_drain,
            &dram_channels, &dram_banks, &dram_row_div, &dram_row_hit,
            &dram_row_miss, &dram_transfer,
            &width, &fetch_increment, &rob, &lq, &miss_limit,
            &miss_threshold, &ptype, &kernel))
        return -1;
    if (!drv_pow2(l1_sets) || !drv_pow2(l2_sets) || !drv_pow2(llc_sets)
        || l1_ways < 1 || l2_ways < 1 || llc_ways < 1) {
        PyErr_SetString(PyExc_ValueError,
                        "cache geometry must be power-of-two sets, ways>=1");
        return -1;
    }
    if (mshr_capacity < 1 || pq_capacity < 1 || pq_drain < 0
        || dram_channels < 1 || dram_banks < 1 || dram_row_div < 1
        || width < 1 || rob < 1 || lq < 1 || lq > (1 << 20)
        || miss_limit < 1) {
        PyErr_SetString(PyExc_ValueError, "invalid driver parameters");
        return -1;
    }
    PyTypeObject *want = NULL;
    switch (ptype) {
    case DRV_PF_NONE:
        break;
    case DRV_PF_BERTI:
        want = &BertiKernelType;
        break;
    case DRV_PF_GAZE:
        want = &GazeKernelType;
        break;
    case DRV_PF_PMP:
        want = &PMPKernelType;
        break;
    case DRV_PF_TRIANGEL:
        want = &TriangelKernelType;
        break;
    default:
        PyErr_SetString(PyExc_ValueError, "unknown ptype");
        return -1;
    }
    if (want == NULL) {
        if (kernel != Py_None) {
            PyErr_SetString(PyExc_TypeError, "ptype 0 takes kernel=None");
            return -1;
        }
    } else if (!PyObject_TypeCheck(kernel, want)) {
        PyErr_Format(PyExc_TypeError, "kernel must be a %s instance",
                     want->tp_name);
        return -1;
    }

    drv_free_buffers(self);
    Py_CLEAR(self->pf_kernel);
    Py_CLEAR(self->tr_key_addr);
    Py_CLEAR(self->tr_key_block);

    if (dc_init(&self->l1, l1_sets, l1_ways) < 0
        || dc_init(&self->l2, l2_sets, l2_ways) < 0
        || dc_init(&self->llc, llc_sets, llc_ways) < 0)
        goto nomem;
    self->lat_l1 = lat_l1;
    self->lat_l2 = lat_l2;
    self->lat_llc = lat_llc;
    self->lat_l2_source = lat_l2_source;
    self->lat_llc_source = lat_llc_source;

    self->mshr_cap = mshr_capacity;
    self->mshr_n = 0;
    self->mshr_min_ready = LLONG_MAX;
    self->mshr_block =
        PyMem_Malloc(sizeof(long long) * (size_t)mshr_capacity);
    self->mshr_ready =
        PyMem_Malloc(sizeof(long long) * (size_t)mshr_capacity);
    self->mshr_dram = PyMem_Malloc((size_t)mshr_capacity);
    if (!self->mshr_block || !self->mshr_ready || !self->mshr_dram)
        goto nomem;

    self->pq_cap = pq_capacity;
    self->pq_head = self->pq_n = 0;
    self->pq_drain = pq_drain;
    self->pq = PyMem_Malloc(sizeof(long long) * (size_t)pq_capacity);
    if (!self->pq)
        goto nomem;

    self->dr_channels = dram_channels;
    self->dr_banks = dram_banks;
    self->dr_row_div = dram_row_div;
    self->dr_lat_row_hit = dram_row_hit;
    self->dr_lat_row_miss = dram_row_miss;
    self->dr_transfer = dram_transfer;
    size_t total_banks = (size_t)dram_channels * (size_t)dram_banks;
    self->dr_open_row = PyMem_Malloc(sizeof(long long) * total_banks);
    self->dr_bank_busy = PyMem_Malloc(sizeof(double) * total_banks);
    self->dr_channel_busy =
        PyMem_Malloc(sizeof(double) * (size_t)dram_channels);
    if (!self->dr_open_row || !self->dr_bank_busy || !self->dr_channel_busy)
        goto nomem;
    for (size_t b = 0; b < total_banks; b++) {
        self->dr_open_row[b] = -1;
        self->dr_bank_busy[b] = 0.0;
    }
    for (int c = 0; c < dram_channels; c++)
        self->dr_channel_busy[c] = 0.0;

    self->width = width;
    self->fetch_inc = fetch_increment;
    self->rob = rob;
    self->lq = lq;
    self->miss_limit = miss_limit;
    self->miss_threshold = miss_threshold;
    self->instr = 0;
    self->fetch = self->last_retire = self->issue = 0.0;
    self->out_cap = (int)lq + 2;
    self->out_head = self->out_n = 0;
    self->out_pos = PyMem_Malloc(sizeof(long long) * (size_t)self->out_cap);
    self->out_comp = PyMem_Malloc(sizeof(double) * (size_t)self->out_cap);
    self->miss_cap = miss_limit + 2;
    self->miss_n = 0;
    self->misses_min = INFINITY;
    self->missv = PyMem_Malloc(sizeof(double) * (size_t)self->miss_cap);
    if (!self->out_pos || !self->out_comp || !self->missv)
        goto nomem;

    self->ptype = ptype;
    if (want != NULL) {
        Py_INCREF(kernel);
        self->pf_kernel = kernel;
    }
    drv_zero_stats(self);
    return 0;

nomem:
    drv_free_buffers(self);
    if (!PyErr_Occurred())
        PyErr_NoMemory();
    return -1;
}

static DCache *
drv_level(DriverKernel *d, int level)
{
    switch (level) {
    case 1:
        return &d->l1;
    case 2:
        return &d->l2;
    case 3:
        return &d->llc;
    }
    PyErr_SetString(PyExc_ValueError, "level must be 1, 2 or 3");
    return NULL;
}

/* load_cache(level, [(block, flags), ...]) — entries in per-set
 * LRU -> MRU order (any interleaving across sets). */
static PyObject *
Driver_load_cache(DriverKernel *d, PyObject *args)
{
    int level;
    PyObject *items;
    if (!PyArg_ParseTuple(args, "iO", &level, &items))
        return NULL;
    DCache *c = drv_level(d, level);
    if (!c)
        return NULL;
    PyObject *seq = PySequence_Fast(items, "items must be a sequence");
    if (!seq)
        return NULL;
    memset(c->size, 0, sizeof(int) * (size_t)c->sets);
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *it = PySequence_Fast_GET_ITEM(seq, i);
        if (!PyTuple_Check(it) || PyTuple_GET_SIZE(it) != 2) {
            Py_DECREF(seq);
            PyErr_SetString(PyExc_TypeError,
                            "items must be (block, flags) tuples");
            return NULL;
        }
        long long block = PyLong_AsLongLong(PyTuple_GET_ITEM(it, 0));
        long long flags = PyLong_AsLongLong(PyTuple_GET_ITEM(it, 1));
        if (PyErr_Occurred()) {
            Py_DECREF(seq);
            return NULL;
        }
        DCRow r = dc_row(c, block);
        if (r.n >= c->ways) {
            Py_DECREF(seq);
            PyErr_SetString(PyExc_ValueError, "cache set overflow");
            return NULL;
        }
        r.tag[r.n] = block;
        r.flg[r.n] = (unsigned char)flags;
        c->size[r.set] = r.n + 1;
    }
    Py_DECREF(seq);
    DRV_CHECK(d);
    Py_RETURN_NONE;
}

static PyObject *
Driver_export_cache(DriverKernel *d, PyObject *args)
{
    int level;
    if (!PyArg_ParseTuple(args, "i", &level))
        return NULL;
    DCache *c = drv_level(d, level);
    if (!c)
        return NULL;
    PyObject *out = PyList_New(0);
    if (!out)
        return NULL;
    for (int s = 0; s < c->sets; s++) {
        const long long *tag = c->tag + (size_t)s * (size_t)c->ways;
        const unsigned char *flg = c->flag + (size_t)s * (size_t)c->ways;
        for (int i = 0; i < c->size[s]; i++) {
            PyObject *it = Py_BuildValue("(Li)", tag[i], (int)flg[i]);
            if (!it || PyList_Append(out, it) < 0) {
                Py_XDECREF(it);
                Py_DECREF(out);
                return NULL;
            }
            Py_DECREF(it);
        }
    }
    return out;
}

/* load_core(instr, fetch, last_retire, issue, [(pos, comp), ...],
 *           [miss_completion, ...]) */
static PyObject *
Driver_load_core(DriverKernel *d, PyObject *args)
{
    long long instr;
    double fetch, last_retire, issue;
    PyObject *out_list, *miss_list;
    if (!PyArg_ParseTuple(args, "LdddOO", &instr, &fetch, &last_retire,
                          &issue, &out_list, &miss_list))
        return NULL;
    PyObject *oseq = PySequence_Fast(out_list, "outstanding must be a sequence");
    if (!oseq)
        return NULL;
    PyObject *mseq = PySequence_Fast(miss_list, "misses must be a sequence");
    if (!mseq) {
        Py_DECREF(oseq);
        return NULL;
    }
    Py_ssize_t on = PySequence_Fast_GET_SIZE(oseq);
    Py_ssize_t mn = PySequence_Fast_GET_SIZE(mseq);
    if (on > d->out_cap || mn > d->miss_cap) {
        Py_DECREF(oseq);
        Py_DECREF(mseq);
        PyErr_SetString(PyExc_ValueError, "core state exceeds capacity");
        return NULL;
    }
    d->instr = instr;
    d->fetch = fetch;
    d->last_retire = last_retire;
    d->issue = issue;
    d->out_head = 0;
    d->out_n = 0;
    for (Py_ssize_t i = 0; i < on; i++) {
        PyObject *it = PySequence_Fast_GET_ITEM(oseq, i);
        PyObject *fast = PySequence_Fast(it, "outstanding entries must be pairs");
        if (!fast || PySequence_Fast_GET_SIZE(fast) != 2) {
            Py_XDECREF(fast);
            Py_DECREF(oseq);
            Py_DECREF(mseq);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError,
                                "outstanding entries must be pairs");
            return NULL;
        }
        long long pos =
            PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, 0));
        double comp = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(fast, 1));
        Py_DECREF(fast);
        if (PyErr_Occurred()) {
            Py_DECREF(oseq);
            Py_DECREF(mseq);
            return NULL;
        }
        d->out_pos[i] = pos;
        d->out_comp[i] = comp;
        d->out_n++;
    }
    d->miss_n = 0;
    d->misses_min = INFINITY;
    for (Py_ssize_t i = 0; i < mn; i++) {
        double m = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(mseq, i));
        if (PyErr_Occurred()) {
            Py_DECREF(oseq);
            Py_DECREF(mseq);
            return NULL;
        }
        d->missv[d->miss_n++] = m;
        if (m < d->misses_min)
            d->misses_min = m;
    }
    Py_DECREF(oseq);
    Py_DECREF(mseq);
    DRV_CHECK(d);
    Py_RETURN_NONE;
}

static PyObject *
Driver_export_core(DriverKernel *d, PyObject *Py_UNUSED(ignored))
{
    PyObject *outl = PyList_New(d->out_n);
    if (!outl)
        return NULL;
    for (int i = 0; i < d->out_n; i++) {
        int idx = d->out_head + i;
        if (idx >= d->out_cap)
            idx -= d->out_cap;
        PyObject *it =
            Py_BuildValue("(Ld)", d->out_pos[idx], d->out_comp[idx]);
        if (!it) {
            Py_DECREF(outl);
            return NULL;
        }
        PyList_SET_ITEM(outl, i, it);
    }
    PyObject *ml = PyList_New(d->miss_n);
    if (!ml) {
        Py_DECREF(outl);
        return NULL;
    }
    for (int i = 0; i < d->miss_n; i++) {
        PyObject *v = PyFloat_FromDouble(d->missv[i]);
        if (!v) {
            Py_DECREF(outl);
            Py_DECREF(ml);
            return NULL;
        }
        PyList_SET_ITEM(ml, i, v);
    }
    return Py_BuildValue("(LdddNN)", d->instr, d->fetch, d->last_retire,
                         d->issue, outl, ml);
}

/* load_dram([(bank, row), ...], [(bank, busy), ...], [channel_busy...]) */
static PyObject *
Driver_load_dram(DriverKernel *d, PyObject *args)
{
    PyObject *open_list, *busy_list, *channel_list;
    if (!PyArg_ParseTuple(args, "OOO", &open_list, &busy_list,
                          &channel_list))
        return NULL;
    long long total_banks = (long long)d->dr_channels * d->dr_banks;
    for (long long b = 0; b < total_banks; b++) {
        d->dr_open_row[b] = -1;
        d->dr_bank_busy[b] = 0.0;
    }
    PyObject *oseq = PySequence_Fast(open_list, "open rows must be a sequence");
    if (!oseq)
        return NULL;
    for (Py_ssize_t i = 0; i < PySequence_Fast_GET_SIZE(oseq); i++) {
        PyObject *it = PySequence_Fast_GET_ITEM(oseq, i);
        long long bank = PyLong_AsLongLong(PyTuple_GetItem(it, 0));
        long long row = PyLong_AsLongLong(PyTuple_GetItem(it, 1));
        if (PyErr_Occurred() || bank < 0 || bank >= total_banks) {
            Py_DECREF(oseq);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError, "bank out of range");
            return NULL;
        }
        d->dr_open_row[bank] = row;
    }
    Py_DECREF(oseq);
    PyObject *bseq = PySequence_Fast(busy_list, "bank busy must be a sequence");
    if (!bseq)
        return NULL;
    for (Py_ssize_t i = 0; i < PySequence_Fast_GET_SIZE(bseq); i++) {
        PyObject *it = PySequence_Fast_GET_ITEM(bseq, i);
        long long bank = PyLong_AsLongLong(PyTuple_GetItem(it, 0));
        double busy = PyFloat_AsDouble(PyTuple_GetItem(it, 1));
        if (PyErr_Occurred() || bank < 0 || bank >= total_banks) {
            Py_DECREF(bseq);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError, "bank out of range");
            return NULL;
        }
        d->dr_bank_busy[bank] = busy;
    }
    Py_DECREF(bseq);
    PyObject *cseq =
        PySequence_Fast(channel_list, "channel busy must be a sequence");
    if (!cseq)
        return NULL;
    if (PySequence_Fast_GET_SIZE(cseq) != d->dr_channels) {
        Py_DECREF(cseq);
        PyErr_SetString(PyExc_ValueError, "channel busy length mismatch");
        return NULL;
    }
    for (Py_ssize_t i = 0; i < d->dr_channels; i++) {
        double busy = PyFloat_AsDouble(PySequence_Fast_GET_ITEM(cseq, i));
        if (PyErr_Occurred()) {
            Py_DECREF(cseq);
            return NULL;
        }
        d->dr_channel_busy[i] = busy;
    }
    Py_DECREF(cseq);
    DRV_CHECK(d);
    Py_RETURN_NONE;
}

static PyObject *
Driver_export_dram(DriverKernel *d, PyObject *Py_UNUSED(ignored))
{
    long long total_banks = (long long)d->dr_channels * d->dr_banks;
    PyObject *open_list = PyList_New(0);
    PyObject *busy_list = PyList_New(0);
    PyObject *chan_list = PyList_New(d->dr_channels);
    if (!open_list || !busy_list || !chan_list)
        goto fail;
    for (long long b = 0; b < total_banks; b++) {
        if (d->dr_open_row[b] != -1) {
            PyObject *it = Py_BuildValue("(LL)", b, d->dr_open_row[b]);
            if (!it || PyList_Append(open_list, it) < 0) {
                Py_XDECREF(it);
                goto fail;
            }
            Py_DECREF(it);
        }
        if (d->dr_bank_busy[b] != 0.0) {
            PyObject *it = Py_BuildValue("(Ld)", b, d->dr_bank_busy[b]);
            if (!it || PyList_Append(busy_list, it) < 0) {
                Py_XDECREF(it);
                goto fail;
            }
            Py_DECREF(it);
        }
    }
    for (int c = 0; c < d->dr_channels; c++) {
        PyObject *v = PyFloat_FromDouble(d->dr_channel_busy[c]);
        if (!v)
            goto fail;
        PyList_SET_ITEM(chan_list, c, v);
    }
    return Py_BuildValue("(NNN)", open_list, busy_list, chan_list);
fail:
    Py_XDECREF(open_list);
    Py_XDECREF(busy_list);
    Py_XDECREF(chan_list);
    return NULL;
}

static PyObject *
Driver_export_mshr(DriverKernel *d, PyObject *Py_UNUSED(ignored))
{
    DRV_CHECK(d);
    PyObject *lst = PyList_New(d->mshr_n);
    if (!lst)
        return NULL;
    for (int i = 0; i < d->mshr_n; i++) {
        PyObject *it = Py_BuildValue("(LLi)", d->mshr_block[i],
                                     d->mshr_ready[i], (int)d->mshr_dram[i]);
        if (!it) {
            Py_DECREF(lst);
            return NULL;
        }
        PyList_SET_ITEM(lst, i, it);
    }
    PyObject *mn;
    if (d->mshr_min_ready == LLONG_MAX) {
        mn = Py_None;
        Py_INCREF(mn);
    } else {
        mn = PyLong_FromLongLong(d->mshr_min_ready);
        if (!mn) {
            Py_DECREF(lst);
            return NULL;
        }
    }
    return Py_BuildValue("(NN)", lst, mn);
}

static PyObject *
Driver_export_pq(DriverKernel *d, PyObject *Py_UNUSED(ignored))
{
    PyObject *lst = PyList_New(d->pq_n);
    if (!lst)
        return NULL;
    for (int i = 0; i < d->pq_n; i++) {
        int idx = d->pq_head + i;
        if (idx >= d->pq_cap)
            idx -= d->pq_cap;
        PyObject *v = PyLong_FromLongLong(d->pq[idx]);
        if (!v) {
            Py_DECREF(lst);
            return NULL;
        }
        PyList_SET_ITEM(lst, i, v);
    }
    return Py_BuildValue("(NL)", lst, (long long)d->issue);
}

static PyObject *
Driver_drain_stats(DriverKernel *d, PyObject *Py_UNUSED(ignored))
{
    DRV_CHECK(d);
    long long vals[42] = {
        d->st_demand, d->st_l1_hits, d->st_l1_misses, d->st_l2_hits,
        d->st_l2_misses, d->st_llc_hits, d->st_llc_misses, d->st_dram_reads,
        d->st_latency,
        d->st_pf_generated, d->st_pf_issued, d->st_pf_drop_q,
        d->st_pf_drop_mshr, d->st_pf_redundant, d->st_pf_fill_l1,
        d->st_pf_fill_l2, d->st_pf_useful_l1, d->st_pf_useful_l2,
        d->st_pf_useless, d->st_pf_late, d->st_pf_covered,
        d->st_pq_enq, d->st_pq_drop,
        d->l1.hits, d->l1.misses, d->l1.evictions, d->l1.useless,
        d->l2.hits, d->l2.misses, d->l2.evictions, d->l2.useless,
        d->llc.hits, d->llc.misses, d->llc.evictions, d->llc.useless,
        d->dr_requests, d->dr_demand, d->dr_prefetch, d->dr_row_hits,
        d->dr_row_misses, d->dr_queue_wait, d->dr_service,
    };
    PyObject *t = PyTuple_New(42);
    if (!t)
        return NULL;
    for (int i = 0; i < 42; i++) {
        PyObject *v = PyLong_FromLongLong(vals[i]);
        if (!v) {
            Py_DECREF(t);
            return NULL;
        }
        PyTuple_SET_ITEM(t, i, v);
    }
    drv_zero_stats(d);
    return t;
}

static PyMethodDef Driver_methods[] = {
    {"run", (PyCFunction)(void (*)(void))Driver_run, METH_FASTCALL,
     "run(addresses, pcs, blocks, gaps, kinds, index, budget, replays)\n"
     "-> (index, replays, executed, yielded); budget < 0 = one pass."},
    {"load_cache", (PyCFunction)Driver_load_cache, METH_VARARGS,
     "load_cache(level, [(block, flags), ...]) in per-set LRU->MRU order."},
    {"export_cache", (PyCFunction)Driver_export_cache, METH_VARARGS,
     "export_cache(level) -> [(block, flags), ...] per-set LRU->MRU."},
    {"load_core", (PyCFunction)Driver_load_core, METH_VARARGS,
     "load_core(instr, fetch, last_retire, issue, outstanding, misses)."},
    {"export_core", (PyCFunction)Driver_export_core, METH_NOARGS,
     "-> (instr, fetch, last_retire, issue, outstanding, misses)."},
    {"load_dram", (PyCFunction)Driver_load_dram, METH_VARARGS,
     "load_dram(open_rows, bank_busy, channel_busy)."},
    {"export_dram", (PyCFunction)Driver_export_dram, METH_NOARGS,
     "-> (open_rows, bank_busy, channel_busy) with defaults omitted."},
    {"export_mshr", (PyCFunction)Driver_export_mshr, METH_NOARGS,
     "-> ([(block, ready, from_dram), ...], min_ready | None)."},
    {"export_pq", (PyCFunction)Driver_export_pq, METH_NOARGS,
     "-> ([packed, ...], convert_cycle)."},
    {"drain_stats", (PyCFunction)Driver_drain_stats, METH_NOARGS,
     "-> 42-tuple of stat deltas since the last drain; zeroes them."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject DriverKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels.DriverKernel",
    .tp_basicsize = sizeof(DriverKernel),
    .tp_dealloc = (destructor)Driver_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "C port of the batched simulation driver loop.",
    .tp_methods = Driver_methods,
    .tp_init = (initproc)Driver_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================== */
static PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._kernels",
    .m_doc = "Compiled twins of the flat prefetcher train loops.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
    PyObject *m;
    if (PyType_Ready(&BertiKernelType) < 0 ||
        PyType_Ready(&GazeKernelType) < 0 ||
        PyType_Ready(&PMPKernelType) < 0 ||
        PyType_Ready(&TriangelKernelType) < 0 ||
        PyType_Ready(&DriverKernelType) < 0)
        return NULL;
    m = PyModule_Create(&kernels_module);
    if (!m)
        return NULL;
    Py_INCREF(&BertiKernelType);
    if (PyModule_AddObject(m, "BertiKernel",
                           (PyObject *)&BertiKernelType) < 0) {
        Py_DECREF(&BertiKernelType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&GazeKernelType);
    if (PyModule_AddObject(m, "GazeKernel", (PyObject *)&GazeKernelType) < 0) {
        Py_DECREF(&GazeKernelType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&PMPKernelType);
    if (PyModule_AddObject(m, "PMPKernel", (PyObject *)&PMPKernelType) < 0) {
        Py_DECREF(&PMPKernelType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&TriangelKernelType);
    if (PyModule_AddObject(m, "TriangelKernel",
                           (PyObject *)&TriangelKernelType) < 0) {
        Py_DECREF(&TriangelKernelType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&DriverKernelType);
    if (PyModule_AddObject(m, "DriverKernel",
                           (PyObject *)&DriverKernelType) < 0) {
        Py_DECREF(&DriverKernelType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "KERNELS_ABI", 3) < 0) {
        Py_DECREF(m);
        return NULL;
    }
#ifdef REPRO_DEBUG_KERNELS
    if (PyModule_AddIntConstant(m, "DEBUG_KERNELS", 1) < 0) {
#else
    if (PyModule_AddIntConstant(m, "DEBUG_KERNELS", 0) < 0) {
#endif
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
