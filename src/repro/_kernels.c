/* Compiled kernel tier: C twins of the flat prefetcher train loops.
 *
 * This module re-hosts the state machines of
 * ``repro.prefetchers.arrays.FlatBertiPrefetcher`` and
 * ``FlatGazePrefetcher`` in C.  It is an *optional* accelerator: the
 * Python flat implementations remain the bit-exact oracle, and
 * ``repro.prefetchers.compiled`` falls back to them when this extension
 * has not been built (``python setup.py build_ext --inplace``).
 *
 * Bit-exactness contract
 * ----------------------
 * Every LRU touch point, eviction order, tie-break and threshold
 * comparison of the flat Python implementations is replicated operation
 * for operation.  All float thresholds are precomputed on the Python
 * side (with the exact float comparisons the object implementations
 * perform) and passed in as integer tables, so this file is pure integer
 * code.  The all-tier equality suite (``tests/test_flat_state.py``) pins
 * the equivalence on every registered prefetcher.
 *
 * Geometry limits: the Gaze kernel requires ``blocks_per_region <= 64``
 * (region footprints are single uint64 masks); the wrapper falls back to
 * the Python flat implementation otherwise.  Table lookups are linear
 * scans over the capacity, sized for the paper's 32..64-entry tables.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* Stamp ceiling of FlatSetAssociativeTable (arrays.DEFAULT_STAMP_LIMIT). */
#define STAMP_LIMIT (1LL << 60)

static inline uint64_t
mask_n(int n)
{
    return n >= 64 ? ~(uint64_t)0 : (((uint64_t)1 << n) - 1);
}

/* ------------------------------------------------------------------ */
/* Fully-associative LRU table: key -> slot, linked-list recency.      */
/* Mirrors arrays.FlatLRUTable: dict insertion order == LRU order,     */
/* victim is the list head.  Payload columns live in the caller.       */
/* ------------------------------------------------------------------ */
typedef struct {
    int cap;
    int size;
    long long *keys;
    unsigned char *used;
    int *prev;
    int *next;
    int head; /* LRU */
    int tail; /* MRU */
    int *free_slots;
    int free_count;
} FTable;

static int
ft_init(FTable *t, int cap)
{
    t->cap = cap;
    t->size = 0;
    t->keys = PyMem_Malloc(sizeof(long long) * cap);
    t->used = PyMem_Malloc(cap);
    t->prev = PyMem_Malloc(sizeof(int) * cap);
    t->next = PyMem_Malloc(sizeof(int) * cap);
    t->free_slots = PyMem_Malloc(sizeof(int) * cap);
    if (!t->keys || !t->used || !t->prev || !t->next || !t->free_slots)
        return -1;
    memset(t->used, 0, cap);
    t->head = t->tail = -1;
    /* Free slots popped highest-first, matching FlatLRUTable.free. */
    for (int i = 0; i < cap; i++)
        t->free_slots[i] = cap - 1 - i;
    t->free_count = cap;
    return 0;
}

static void
ft_dealloc(FTable *t)
{
    PyMem_Free(t->keys);
    PyMem_Free(t->used);
    PyMem_Free(t->prev);
    PyMem_Free(t->next);
    PyMem_Free(t->free_slots);
}

static void
ft_clear(FTable *t)
{
    memset(t->used, 0, t->cap);
    t->head = t->tail = -1;
    t->size = 0;
    for (int i = 0; i < t->cap; i++)
        t->free_slots[i] = t->cap - 1 - i;
    t->free_count = t->cap;
}

static inline int
ft_find(FTable *t, long long key)
{
    const long long *keys = t->keys;
    const unsigned char *used = t->used;
    for (int i = 0; i < t->cap; i++)
        if (used[i] && keys[i] == key)
            return i;
    return -1;
}

static inline void
ft_unlink(FTable *t, int s)
{
    int p = t->prev[s], n = t->next[s];
    if (p >= 0) t->next[p] = n; else t->head = n;
    if (n >= 0) t->prev[n] = p; else t->tail = p;
}

static inline void
ft_append(FTable *t, int s)
{
    t->prev[s] = t->tail;
    t->next[s] = -1;
    if (t->tail >= 0) t->next[t->tail] = s; else t->head = s;
    t->tail = s;
}

static inline void
ft_touch(FTable *t, int s)
{
    if (t->tail == s)
        return;
    ft_unlink(t, s);
    ft_append(t, s);
}

/* Claim a slot for a key known to be absent.  *evicted is set when the
 * LRU entry was displaced (its payload is still intact at the returned
 * slot so the caller can learn from / clear it). */
static inline int
ft_insert(FTable *t, long long key, int *evicted)
{
    int s;
    *evicted = 0;
    if (t->free_count > 0) {
        s = t->free_slots[--t->free_count];
    } else {
        s = t->head;
        ft_unlink(t, s);
        *evicted = 1;
        t->size--;
    }
    t->keys[s] = key;
    t->used[s] = 1;
    ft_append(t, s);
    t->size++;
    return s;
}

/* Drop a specific occupied slot (FT activation path; AT deactivation). */
static inline void
ft_drop_slot(FTable *t, int s)
{
    ft_unlink(t, s);
    t->used[s] = 0;
    t->free_slots[t->free_count++] = s;
    t->size--;
}

/* ================================================================== */
/* BertiKernel: C twin of FlatBertiPrefetcher.train_flat               */
/* ================================================================== */
typedef struct {
    PyObject_HEAD
    int pc_entries;
    int hist_cap;
    int max_deltas;
    int max_prefetches;
    long long window_blocks;
    long long cand_off;
    int cand_shift;
    long long l1_thr[64];
    long long l2_thr[64];
    FTable table;
    long long *hist_block;
    long long *hist_cycle;
    int *hist_start;
    int *hist_len;
    long long *d_val;
    long long *d_occ;
    long long *d_tim;
    int *d_cnt;
    long long *rounds;
} BertiKernel;

static void
Berti_dealloc(BertiKernel *self)
{
    ft_dealloc(&self->table);
    PyMem_Free(self->hist_block);
    PyMem_Free(self->hist_cycle);
    PyMem_Free(self->hist_start);
    PyMem_Free(self->hist_len);
    PyMem_Free(self->d_val);
    PyMem_Free(self->d_occ);
    PyMem_Free(self->d_tim);
    PyMem_Free(self->d_cnt);
    PyMem_Free(self->rounds);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
load_thr_table(PyObject *seq, long long *out, const char *name)
{
    PyObject *fast = PySequence_Fast(seq, "threshold table must be a sequence");
    if (!fast)
        return -1;
    if (PySequence_Fast_GET_SIZE(fast) != 64) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "%s must have 64 entries", name);
        return -1;
    }
    for (int i = 0; i < 64; i++) {
        out[i] = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(fast, i));
        if (out[i] == -1 && PyErr_Occurred()) {
            Py_DECREF(fast);
            return -1;
        }
    }
    Py_DECREF(fast);
    return 0;
}

static int
Berti_init(BertiKernel *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "pc_entries", "history_per_pc", "max_deltas_per_pc", "window_blocks",
        "max_prefetches", "l2_occ_thr", "l1_occ_thr", "cand_off", "cand_shift",
        NULL,
    };
    PyObject *l2_thr, *l1_thr;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "iiiLiOOLi", kwlist,
            &self->pc_entries, &self->hist_cap, &self->max_deltas,
            &self->window_blocks, &self->max_prefetches,
            &l2_thr, &l1_thr, &self->cand_off, &self->cand_shift))
        return -1;
    if (self->pc_entries <= 0 || self->hist_cap <= 0 || self->max_deltas <= 0) {
        PyErr_SetString(PyExc_ValueError, "table sizes must be positive");
        return -1;
    }
    if (self->hist_cap > 64 || self->max_deltas > 64) {
        /* Stack scratch buffers in train() are sized for the paper's
         * 16-entry tables; the wrapper falls back to Python beyond 64. */
        PyErr_SetString(PyExc_ValueError,
                        "BertiKernel supports at most 64 history/delta entries");
        return -1;
    }
    if (load_thr_table(l2_thr, self->l2_thr, "l2_occ_thr") < 0)
        return -1;
    if (load_thr_table(l1_thr, self->l1_thr, "l1_occ_thr") < 0)
        return -1;
    int n = self->pc_entries;
    if (ft_init(&self->table, n) < 0)
        goto nomem;
    self->hist_block = PyMem_Malloc(sizeof(long long) * n * self->hist_cap);
    self->hist_cycle = PyMem_Malloc(sizeof(long long) * n * self->hist_cap);
    self->hist_start = PyMem_Malloc(sizeof(int) * n);
    self->hist_len = PyMem_Malloc(sizeof(int) * n);
    self->d_val = PyMem_Malloc(sizeof(long long) * n * self->max_deltas);
    self->d_occ = PyMem_Malloc(sizeof(long long) * n * self->max_deltas);
    self->d_tim = PyMem_Malloc(sizeof(long long) * n * self->max_deltas);
    self->d_cnt = PyMem_Malloc(sizeof(int) * n);
    self->rounds = PyMem_Malloc(sizeof(long long) * n);
    if (!self->hist_block || !self->hist_cycle || !self->hist_start ||
        !self->hist_len || !self->d_val || !self->d_occ || !self->d_tim ||
        !self->d_cnt || !self->rounds)
        goto nomem;
    memset(self->hist_start, 0, sizeof(int) * n);
    memset(self->hist_len, 0, sizeof(int) * n);
    memset(self->d_cnt, 0, sizeof(int) * n);
    memset(self->rounds, 0, sizeof(long long) * n);
    return 0;
nomem:
    PyErr_NoMemory();
    return -1;
}

static PyObject *
Berti_reset(BertiKernel *self, PyObject *Py_UNUSED(ignored))
{
    ft_clear(&self->table);
    memset(self->hist_start, 0, sizeof(int) * self->pc_entries);
    memset(self->hist_len, 0, sizeof(int) * self->pc_entries);
    memset(self->d_cnt, 0, sizeof(int) * self->pc_entries);
    memset(self->rounds, 0, sizeof(long long) * self->pc_entries);
    Py_RETURN_NONE;
}

static PyObject *
Berti_train(BertiKernel *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError, "train(pc, address, cycle, latency)");
        return NULL;
    }
    long long pc = PyLong_AsLongLong(args[0]);
    long long address = PyLong_AsLongLong(args[1]);
    long long cycle = PyLong_AsLongLong(args[2]);
    long long latency = PyLong_AsLongLong(args[3]);
    if (PyErr_Occurred())
        return NULL;

    long long block = address >> 6;
    long long key = pc & 0xFFFF;
    FTable *t = &self->table;
    int slot = ft_find(t, key);
    if (slot < 0) {
        int evicted;
        slot = ft_insert(t, key, &evicted);
        if (evicted) {
            self->hist_len[slot] = 0;
            self->hist_start[slot] = 0;
            self->d_cnt[slot] = 0;
            self->rounds[slot] = 0;
        }
    } else {
        ft_touch(t, slot);
    }

    const int hcap = self->hist_cap;
    const int dmax = self->max_deltas;
    long long *hblock = self->hist_block + (size_t)slot * hcap;
    long long *hcycle = self->hist_cycle + (size_t)slot * hcap;
    long long *dval = self->d_val + (size_t)slot * dmax;
    long long *docc = self->d_occ + (size_t)slot * dmax;
    long long *dtim = self->d_tim + (size_t)slot * dmax;
    int hstart = self->hist_start[slot];
    int hlen = self->hist_len[slot];
    int dcnt = self->d_cnt[slot];
    long long rounds = self->rounds[slot];

    /* ---- learn (exact port of the flat learn loop) ---- */
    if (hlen > 0) {
        const long long window = self->window_blocks;
        const long long thr = cycle - latency;
        long long seen[64]; /* <= hist_cap distinct deltas per call */
        int seen_n = 0;
        for (int h = 0; h < hlen; h++) {
            int pos = hstart + h;
            if (pos >= hcap)
                pos -= hcap;
            long long delta = block - hblock[pos];
            if (delta == 0 || delta > window || delta < -window)
                continue;
            int dup = 0;
            for (int s = 0; s < seen_n; s++)
                if (seen[s] == delta) { dup = 1; break; }
            if (dup)
                continue;
            seen[seen_n++] = delta;
            long long past_cycle = hcycle[pos];
            int di = -1;
            for (int d = 0; d < dcnt; d++)
                if (dval[d] == delta) { di = d; break; }
            if (di < 0) {
                if (dcnt >= dmax) {
                    /* Replace the weakest delta: lowest min(occ, rounds),
                     * first in insertion order on ties (break at k <= 1 --
                     * nothing later can be smaller). */
                    int victim = 0;
                    if (rounds) {
                        long long weakest_key = 1LL << 60;
                        for (int d = 0; d < dcnt; d++) {
                            long long k = docc[d] < rounds ? docc[d] : rounds;
                            if (k < weakest_key) {
                                weakest_key = k;
                                victim = d;
                                if (k <= 1)
                                    break;
                            }
                        }
                    }
                    int tail = dcnt - victim - 1;
                    if (tail > 0) {
                        memmove(dval + victim, dval + victim + 1,
                                sizeof(long long) * tail);
                        memmove(docc + victim, docc + victim + 1,
                                sizeof(long long) * tail);
                        memmove(dtim + victim, dtim + victim + 1,
                                sizeof(long long) * tail);
                    }
                    dcnt--;
                }
                dval[dcnt] = delta;
                docc[dcnt] = 1;
                dtim[dcnt] = (past_cycle <= thr);
                dcnt++;
            } else {
                docc[di] += 1;
                dtim[di] += (past_cycle <= thr);
            }
        }
    }
    rounds += 1;
    if (!(rounds & 63)) {
        rounds >>= 1;
        for (int d = 0; d < dcnt; d++) {
            long long occ = docc[d] >> 1;
            docc[d] = occ ? occ : 1;
            dtim[d] >>= 1;
        }
    }

    /* History append (drop oldest beyond capacity). */
    if (hlen < hcap) {
        int pos = hstart + hlen;
        if (pos >= hcap)
            pos -= hcap;
        hblock[pos] = block;
        hcycle[pos] = cycle;
        hlen++;
    } else {
        hblock[hstart] = block;
        hcycle[hstart] = cycle;
        hstart++;
        if (hstart >= hcap)
            hstart = 0;
    }
    self->hist_start[slot] = hstart;
    self->hist_len[slot] = hlen;
    self->d_cnt[slot] = dcnt;
    self->rounds[slot] = rounds;

    /* ---- issue (exact port of the flat issue scan) ---- */
    if (!rounds)
        Py_RETURN_NONE;
    const long long thr_l2 = self->l2_thr[rounds];
    const long long cand_off = self->cand_off;
    const int cand_shift = self->cand_shift;
    long long cand[64];
    int cand_n = 0;
    for (int d = 0; d < dcnt; d++) {
        long long occ = docc[d];
        if (occ < 2 || occ < thr_l2)
            continue;
        long long k = occ < rounds ? occ : rounds;
        long long ck = (k << cand_shift) | (dval[d] + cand_off);
        /* Descending insertion sort (distinct keys: delta is unique). */
        int j = cand_n;
        while (j > 0 && cand[j - 1] < ck) {
            cand[j] = cand[j - 1];
            j--;
        }
        cand[j] = ck;
        cand_n++;
    }
    if (!cand_n)
        Py_RETURN_NONE;
    const long long thr_l1 = self->l1_thr[rounds];
    const long long cand_mask = ((long long)1 << cand_shift) - 1;
    const long long window = self->window_blocks;
    int limit = cand_n < self->max_prefetches ? cand_n : self->max_prefetches;
    PyObject *out = PyList_New(0);
    if (!out)
        return NULL;
    for (int c = 0; c < limit; c++) {
        long long delta = (cand[c] & cand_mask) - cand_off;
        long long target = block + delta;
        if (target < 0 || llabs(delta) > window)
            continue;
        long long occ = 0, tim = 0;
        for (int d = 0; d < dcnt; d++)
            if (dval[d] == delta) { occ = docc[d]; tim = dtim[d]; break; }
        long long hint_bit = (occ >= thr_l1 && 2 * tim >= occ) ? 1 : 0;
        PyObject *v = PyLong_FromLongLong((target << 1) | hint_bit);
        if (!v || PyList_Append(out, v) < 0) {
            Py_XDECREF(v);
            Py_DECREF(out);
            return NULL;
        }
        Py_DECREF(v);
    }
    return out;
}

static PyMethodDef Berti_methods[] = {
    {"train", (PyCFunction)(void (*)(void))Berti_train, METH_FASTCALL,
     "One train step; returns a list of packed prefetches or None."},
    {"reset", (PyCFunction)Berti_reset, METH_NOARGS, "Clear all state."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject BertiKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels.BertiKernel",
    .tp_basicsize = sizeof(BertiKernel),
    .tp_dealloc = (destructor)Berti_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "C twin of FlatBertiPrefetcher's train_flat state machine.",
    .tp_methods = Berti_methods,
    .tp_init = (initproc)Berti_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================== */
/* GazeKernel: C twin of FlatGazePrefetcher                            */
/* ================================================================== */
typedef struct {
    PyObject_HEAD
    /* geometry / config */
    int blocks;
    long long region_size;
    int region_shift; /* -1 when region_size is not a power of two */
    uint64_t offset_mask;
    uint64_t full_mask;
    uint64_t head_mask;
    uint64_t tail_mask;
    int enable_streaming;
    int enable_pht;
    int stride_backup;
    int pb_limit;
    int promo_start;
    int promo_count;
    /* filter table */
    FTable ft;
    long long *ft_pc;
    long long *ft_off;
    /* accumulation table */
    FTable at;
    long long *at_pc;
    long long *at_trig;
    long long *at_second;
    uint64_t *at_foot;
    long long *at_last;
    long long *at_penult;
    unsigned char *at_stride;
    /* pattern history table (set-associative, stamp LRU) */
    int pht_sets;
    int pht_ways;
    unsigned char *pht_valid;
    long long *pht_tag;
    long long *pht_stamp;
    uint64_t *pht_foot;
    long long pht_clock;
    /* prefetch buffer */
    FTable pb;
    uint64_t *pb_l1;
    uint64_t *pb_l2;
    uint64_t *pb_issued;
    uint64_t *pb_issued_l1;
    long long *pb_pending;
    /* streaming module */
    FTable dpct;
    int dc_value;
    int dc_max;
    /* origin of the latest emission: (pc, 0="gaze" / 1="gaze-promo") */
    long long last_pc;
    int last_meta;
    /* introspection counters */
    long long pht_lookups;
    long long pht_hits;
    long long pht_updates;
    long long pht_predictions;
    long long streaming_predictions;
    long long backup_activations;
    long long promotions;
} GazeKernel;

static void
Gaze_dealloc(GazeKernel *self)
{
    ft_dealloc(&self->ft);
    ft_dealloc(&self->at);
    ft_dealloc(&self->pb);
    ft_dealloc(&self->dpct);
    PyMem_Free(self->ft_pc);
    PyMem_Free(self->ft_off);
    PyMem_Free(self->at_pc);
    PyMem_Free(self->at_trig);
    PyMem_Free(self->at_second);
    PyMem_Free(self->at_foot);
    PyMem_Free(self->at_last);
    PyMem_Free(self->at_penult);
    PyMem_Free(self->at_stride);
    PyMem_Free(self->pht_valid);
    PyMem_Free(self->pht_tag);
    PyMem_Free(self->pht_stamp);
    PyMem_Free(self->pht_foot);
    PyMem_Free(self->pb_l1);
    PyMem_Free(self->pb_l2);
    PyMem_Free(self->pb_issued);
    PyMem_Free(self->pb_issued_l1);
    PyMem_Free(self->pb_pending);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
Gaze_init(GazeKernel *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {
        "blocks", "region_size", "filter_entries", "accumulation_entries",
        "pht_sets", "pht_ways", "prefetch_buffer_entries", "pb_limit",
        "promo_start", "promo_count", "head_blocks", "dpct_entries",
        "dc_bits", "enable_streaming", "enable_pht", "stride_backup",
        NULL,
    };
    int ft_entries, at_entries, pb_entries, head_blocks, dpct_entries, dc_bits;
    if (!PyArg_ParseTupleAndKeywords(
            args, kwds, "iLiiiiiiiiiiiiii", kwlist,
            &self->blocks, &self->region_size, &ft_entries, &at_entries,
            &self->pht_sets, &self->pht_ways, &pb_entries, &self->pb_limit,
            &self->promo_start, &self->promo_count, &head_blocks,
            &dpct_entries, &dc_bits, &self->enable_streaming,
            &self->enable_pht, &self->stride_backup))
        return -1;
    if (self->blocks <= 0 || self->blocks > 64) {
        PyErr_SetString(PyExc_ValueError,
                        "GazeKernel requires 1 <= blocks_per_region <= 64");
        return -1;
    }
    if ((self->region_size & (self->region_size - 1)) == 0) {
        int shift = 0;
        long long r = self->region_size;
        while (r > 1) { r >>= 1; shift++; }
        self->region_shift = shift;
        self->offset_mask = (uint64_t)(self->blocks - 1);
    } else {
        self->region_shift = -1;
        self->offset_mask = 0;
    }
    self->full_mask = mask_n(self->blocks);
    int head = head_blocks < self->blocks ? head_blocks : self->blocks;
    self->head_mask = mask_n(head);
    self->tail_mask = self->full_mask ^ self->head_mask;
    self->dc_max = (1 << dc_bits) - 1;
    self->dc_value = 0;
    self->pht_clock = 0;
    self->last_pc = 0;
    self->last_meta = 0;
    self->pht_lookups = self->pht_hits = self->pht_updates = 0;
    self->pht_predictions = self->streaming_predictions = 0;
    self->backup_activations = self->promotions = 0;

    if (ft_init(&self->ft, ft_entries) < 0 ||
        ft_init(&self->at, at_entries) < 0 ||
        ft_init(&self->pb, pb_entries) < 0 ||
        ft_init(&self->dpct, dpct_entries) < 0)
        goto nomem;
    self->ft_pc = PyMem_Malloc(sizeof(long long) * ft_entries);
    self->ft_off = PyMem_Malloc(sizeof(long long) * ft_entries);
    self->at_pc = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_trig = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_second = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_foot = PyMem_Malloc(sizeof(uint64_t) * at_entries);
    self->at_last = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_penult = PyMem_Malloc(sizeof(long long) * at_entries);
    self->at_stride = PyMem_Malloc(at_entries);
    int pht_size = self->pht_sets * self->pht_ways;
    self->pht_valid = PyMem_Malloc(pht_size);
    self->pht_tag = PyMem_Malloc(sizeof(long long) * pht_size);
    self->pht_stamp = PyMem_Malloc(sizeof(long long) * pht_size);
    self->pht_foot = PyMem_Malloc(sizeof(uint64_t) * pht_size);
    self->pb_l1 = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_l2 = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_issued = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_issued_l1 = PyMem_Malloc(sizeof(uint64_t) * pb_entries);
    self->pb_pending = PyMem_Malloc(sizeof(long long) * pb_entries);
    if (!self->ft_pc || !self->ft_off || !self->at_pc || !self->at_trig ||
        !self->at_second || !self->at_foot || !self->at_last ||
        !self->at_penult || !self->at_stride || !self->pht_valid ||
        !self->pht_tag || !self->pht_stamp || !self->pht_foot ||
        !self->pb_l1 || !self->pb_l2 || !self->pb_issued ||
        !self->pb_issued_l1 || !self->pb_pending)
        goto nomem;
    memset(self->pht_valid, 0, pht_size);
    memset(self->pb_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_l2, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_pending, 0, sizeof(long long) * pb_entries);
    return 0;
nomem:
    PyErr_NoMemory();
    return -1;
}

/* ---- streaming module (DPCT + DC) -------------------------------- */
static inline long long
hash_pc12(unsigned long long pc)
{
    unsigned long long mask = 0xFFF, result = 0;
    while (pc) {
        result ^= pc & mask;
        pc >>= 12;
    }
    return (long long)(result & mask);
}

/* LRUTable.get default-touches, so DensePCTable.contains refreshes the
 * entry's recency on hit -- replicated here. */
static inline int
dpct_contains(GazeKernel *self, long long pc)
{
    int slot = ft_find(&self->dpct, hash_pc12((unsigned long long)pc));
    if (slot < 0)
        return 0;
    ft_touch(&self->dpct, slot);
    return 1;
}

static inline void
dpct_record(GazeKernel *self, long long pc)
{
    long long h = hash_pc12((unsigned long long)pc);
    int slot = ft_find(&self->dpct, h);
    if (slot >= 0) {
        ft_touch(&self->dpct, slot);
        return;
    }
    int evicted;
    ft_insert(&self->dpct, h, &evicted);
}

static inline void
streaming_learn(GazeKernel *self, long long pc, int fully_dense)
{
    if (fully_dense) {
        dpct_record(self, pc);
        if (self->dc_value < self->dc_max)
            self->dc_value++;
    } else {
        if (self->dc_value > 2)
            self->dc_value /= 2;
        else if (self->dc_value > 0)
            self->dc_value--;
    }
}

/* StreamingConfidence: 2=HIGH, 1=MODERATE, 0=NONE. */
static inline int
streaming_confidence(GazeKernel *self, long long pc)
{
    if (dpct_contains(self, pc) || self->dc_value == self->dc_max)
        return 2;
    if (self->dc_value > 2)
        return 1;
    return 0;
}

/* ---- PHT (stamp-LRU set-associative) ----------------------------- */
static long long
pht_tick(GazeKernel *self)
{
    long long clock = self->pht_clock;
    if (clock >= STAMP_LIMIT) {
        /* Renormalise valid stamps to 0..n-1 in LRU order (unreachable
         * in practice; mirrors FlatSetAssociativeTable._renormalize). */
        int size = self->pht_sets * self->pht_ways;
        long long rank = 0;
        for (;;) {
            int best = -1;
            long long best_stamp = STAMP_LIMIT + 1;
            for (int i = 0; i < size; i++)
                if (self->pht_valid[i] && self->pht_stamp[i] >= rank &&
                    self->pht_stamp[i] < best_stamp) {
                    best_stamp = self->pht_stamp[i];
                    best = i;
                }
            if (best < 0)
                break;
            self->pht_stamp[best] = rank++;
        }
        self->pht_clock = clock = rank;
    }
    self->pht_clock = clock + 1;
    return clock;
}

/* ---- prefetch buffer helpers ------------------------------------- */
static inline int
pb_slot(GazeKernel *self, long long region)
{
    int slot = ft_find(&self->pb, region);
    if (slot >= 0) {
        ft_touch(&self->pb, slot);
        return slot;
    }
    int evicted;
    slot = ft_insert(&self->pb, region, &evicted);
    if (evicted) {
        self->pb_l1[slot] = 0;
        self->pb_l2[slot] = 0;
        self->pb_issued[slot] = 0;
        self->pb_issued_l1[slot] = 0;
        self->pb_pending[slot] = 0;
    }
    return slot;
}

static void
pb_add(GazeKernel *self, long long region, uint64_t l1_mask, uint64_t l2_mask,
       uint64_t exclude)
{
    int slot = pb_slot(self, region);
    uint64_t m1 = self->pb_l1[slot];
    uint64_t m2 = self->pb_l2[slot];
    uint64_t issued = self->pb_issued[slot];
    long long pending = self->pb_pending[slot];
    if (l2_mask) {
        uint64_t new_l2 = l2_mask & ~exclude & ~(m1 | m2 | issued);
        if (new_l2) {
            m2 |= new_l2;
            pending += __builtin_popcountll(new_l2);
        }
    }
    if (l1_mask) {
        uint64_t el1 = l1_mask & ~exclude & ~issued;
        if (el1) {
            pending += __builtin_popcountll(el1 & ~(m1 | m2));
            m1 |= el1;
            m2 &= ~el1;
        }
    }
    self->pb_l1[slot] = m1;
    self->pb_l2[slot] = m2;
    self->pb_pending[slot] = pending;
}

/* pop_requests: ascending offsets, bounded by pb_limit; returns a new
 * list, or None when nothing was pending. */
static PyObject *
pb_pop_requests(GazeKernel *self, int slot, long long region)
{
    uint64_t m1 = self->pb_l1[slot];
    uint64_t pending_mask = m1 | self->pb_l2[slot];
    long long base_block = (region * self->region_size) >> 6;
    uint64_t taken = 0, taken_l1 = 0;
    int count = 0;
    const int limit = self->pb_limit;
    PyObject *out = PyList_New(0);
    if (!out)
        return NULL;
    while (pending_mask && count < limit) {
        uint64_t low = pending_mask & (~pending_mask + 1);
        pending_mask ^= low;
        taken |= low;
        int bit = __builtin_ctzll(low);
        long long packed;
        if (m1 & low) {
            taken_l1 |= low;
            packed = ((base_block + bit) << 1) | 1;
        } else {
            packed = (base_block + bit) << 1;
        }
        PyObject *v = PyLong_FromLongLong(packed);
        if (!v || PyList_Append(out, v) < 0) {
            Py_XDECREF(v);
            Py_DECREF(out);
            return NULL;
        }
        Py_DECREF(v);
        count++;
    }
    if (!count) {
        Py_DECREF(out);
        Py_RETURN_NONE;
    }
    self->pb_l1[slot] = m1 & ~taken;
    self->pb_l2[slot] &= ~taken;
    self->pb_issued[slot] |= taken;
    self->pb_issued_l1[slot] = (self->pb_issued_l1[slot] & ~taken) | taken_l1;
    self->pb_pending[slot] -= count;
    return out;
}

/* ---- PHT predict / learn ----------------------------------------- */
static int
pht_predict(GazeKernel *self, long long region, long long trigger_offset,
            long long second_offset)
{
    self->pht_lookups++;
    int set_index = (int)(trigger_offset % self->pht_sets);
    int base = set_index * self->pht_ways;
    int slot = -1;
    for (int w = base; w < base + self->pht_ways; w++)
        if (self->pht_valid[w] && self->pht_tag[w] == second_offset) {
            slot = w;
            break;
        }
    if (slot < 0)
        return 0;
    self->pht_stamp[slot] = pht_tick(self);
    self->pht_hits++;
    self->pht_predictions++;
    uint64_t footprint = self->pht_foot[slot];
    uint64_t exclude =
        ((uint64_t)1 << trigger_offset) | ((uint64_t)1 << second_offset);
    pb_add(self, region, footprint & self->full_mask, 0, exclude);
    return 1;
}

static void
pht_learn(GazeKernel *self, long long trigger_offset, long long second_offset,
          uint64_t footprint)
{
    self->pht_updates++;
    int set_index = (int)(trigger_offset % self->pht_sets);
    int base = set_index * self->pht_ways;
    int slot = -1;
    for (int w = base; w < base + self->pht_ways; w++)
        if (self->pht_valid[w] && self->pht_tag[w] == second_offset) {
            slot = w;
            break;
        }
    if (slot < 0) {
        for (int w = base; w < base + self->pht_ways; w++)
            if (!self->pht_valid[w]) {
                slot = w;
                break;
            }
        if (slot < 0) {
            /* Min-stamp victim; strict < keeps the first minimum. */
            slot = base;
            long long best = self->pht_stamp[base];
            for (int w = base + 1; w < base + self->pht_ways; w++)
                if (self->pht_stamp[w] < best) {
                    best = self->pht_stamp[w];
                    slot = w;
                }
        }
        self->pht_tag[slot] = second_offset;
        self->pht_valid[slot] = 1;
    }
    self->pht_stamp[slot] = pht_tick(self);
    self->pht_foot[slot] = footprint;
}

/* ---- learning / deactivation ------------------------------------- */
static void
learn_slot(GazeKernel *self, int slot)
{
    long long trigger_offset = self->at_trig[slot];
    long long second_offset = self->at_second[slot];
    if (trigger_offset == 0 && second_offset == 1 && self->enable_streaming) {
        uint64_t footprint = self->at_foot[slot] & self->full_mask;
        streaming_learn(self, self->at_pc[slot],
                        footprint == self->full_mask);
        return;
    }
    if (self->enable_pht)
        pht_learn(self, trigger_offset, second_offset, self->at_foot[slot]);
}

/* ---- stage-2 promotion / stride backup --------------------------- */
static void
promote_tracked(GazeKernel *self, int slot, long long offset)
{
    long long last = self->at_last[slot];
    long long penult = self->at_penult[slot];
    if (last < 0 || penult < 0 || offset == last)
        return;
    long long stride = last - penult;
    if (stride != offset - last || stride == 0)
        return;
    const int blocks = self->blocks;
    uint64_t mask = 0;
    for (int i = 0; i < self->promo_count; i++) {
        long long target = offset + stride * (self->promo_start + i);
        if (target >= 0 && target < blocks)
            mask |= (uint64_t)1 << target;
    }
    if (!mask)
        return;
    /* The AT slot's key is its region (at_region column in Python). */
    int pslot = pb_slot(self, self->at.keys[slot]);
    uint64_t cand = mask & ~self->pb_issued_l1[pslot];
    if (!cand)
        return;
    uint64_t m1 = self->pb_l1[pslot];
    uint64_t m2 = self->pb_l2[pslot];
    self->pb_pending[pslot] += __builtin_popcountll(cand & ~(m1 | m2));
    self->pb_l1[pslot] = m1 | cand;
    self->pb_l2[pslot] = m2 & ~cand;
    self->pb_issued[pslot] &= ~cand;
    self->promotions++;
    if ((self->at_foot[slot] & self->full_mask) != self->full_mask)
        self->backup_activations++;
}

/* ---- region activation (second access) --------------------------- */
static PyObject *
gaze_activate(GazeKernel *self, long long region, long long trigger_pc,
              long long trigger_offset, long long second_offset,
              long long second_pc)
{
    (void)second_pc;
    int stride_flag = 0;
    if (trigger_offset == 0 && second_offset == 1) {
        if (self->enable_streaming) {
            stride_flag = 1;
            int confidence = streaming_confidence(self, trigger_pc);
            uint64_t exclude = ((uint64_t)1 << trigger_offset) |
                               ((uint64_t)1 << second_offset);
            if (confidence == 2)
                pb_add(self, region, self->head_mask, self->tail_mask, exclude);
            else if (confidence == 1)
                pb_add(self, region, 0, self->head_mask, exclude);
            if (confidence != 0)
                self->streaming_predictions++;
        } else if (self->enable_pht) {
            stride_flag = !pht_predict(self, region, trigger_offset,
                                       second_offset);
        } else {
            stride_flag = 1;
        }
    } else if (self->enable_pht) {
        int matched = pht_predict(self, region, trigger_offset, second_offset);
        stride_flag = !matched && self->stride_backup;
    } else {
        stride_flag = self->stride_backup;
    }

    int evicted;
    int slot = ft_insert(&self->at, region, &evicted);
    if (evicted) {
        /* ft_insert already displaced the victim's key, but its payload
         * is intact at `slot` -- but learn_slot needs the payload BEFORE
         * the overwrite below, which is exactly now. */
        learn_slot(self, slot);
    }
    self->at_pc[slot] = trigger_pc;
    self->at_trig[slot] = trigger_offset;
    self->at_second[slot] = second_offset;
    self->at_foot[slot] = ((uint64_t)1 << trigger_offset) |
                          ((uint64_t)1 << second_offset);
    self->at_penult[slot] = trigger_offset;
    self->at_last[slot] = second_offset;
    self->at_stride[slot] = stride_flag ? 1 : 0;

    int pslot = ft_find(&self->pb, region);
    if (pslot < 0)
        Py_RETURN_NONE;
    ft_touch(&self->pb, pslot);
    if (!self->pb_pending[pslot])
        Py_RETURN_NONE;
    self->last_pc = trigger_pc;
    self->last_meta = 0; /* "gaze" */
    return pb_pop_requests(self, pslot, region);
}

/* ---- train ------------------------------------------------------- */
static PyObject *
Gaze_train(GazeKernel *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "train(pc, address)");
        return NULL;
    }
    long long pc = PyLong_AsLongLong(args[0]);
    long long address = PyLong_AsLongLong(args[1]);
    if (PyErr_Occurred())
        return NULL;

    long long region, offset;
    if (self->region_shift >= 0) {
        region = address >> self->region_shift;
        offset = (address >> 6) & (long long)self->offset_mask;
    } else {
        region = address / self->region_size;
        offset = (address % self->region_size) >> 6;
    }

    int slot = ft_find(&self->at, region);
    if (slot >= 0) {
        ft_touch(&self->at, slot);
        if (self->at_stride[slot] && self->stride_backup)
            promote_tracked(self, slot, offset);
        self->at_foot[slot] |= (uint64_t)1 << offset;
        long long last = self->at_last[slot];
        if (offset != last) {
            self->at_penult[slot] = last;
            self->at_last[slot] = offset;
        }
        int pslot = ft_find(&self->pb, region);
        if (pslot < 0)
            Py_RETURN_NONE;
        ft_touch(&self->pb, pslot);
        if (!self->pb_pending[pslot])
            Py_RETURN_NONE;
        self->last_pc = pc;
        self->last_meta = 1; /* "gaze-promo" */
        return pb_pop_requests(self, pslot, region);
    }

    int fslot = ft_find(&self->ft, region);
    if (fslot >= 0) {
        long long trigger_offset = self->ft_off[fslot];
        if (trigger_offset == offset) {
            ft_touch(&self->ft, fslot);
            Py_RETURN_NONE;
        }
        long long trigger_pc = self->ft_pc[fslot];
        ft_drop_slot(&self->ft, fslot);
        return gaze_activate(self, region, trigger_pc, trigger_offset,
                             offset, pc);
    }

    /* First touch of an unknown region: silent LRU allocation. */
    int evicted;
    fslot = ft_insert(&self->ft, region, &evicted);
    self->ft_pc[fslot] = pc;
    self->ft_off[fslot] = offset;
    Py_RETURN_NONE;
}

static PyObject *
Gaze_evict(GazeKernel *self, PyObject *arg)
{
    long long block = PyLong_AsLongLong(arg);
    if (block == -1 && PyErr_Occurred())
        return NULL;
    long long region;
    if (self->region_shift >= 0)
        region = block >> (self->region_shift - 6);
    else
        region = (block << 6) / self->region_size;
    int slot = ft_find(&self->at, region);
    if (slot >= 0) {
        learn_slot(self, slot);
        ft_drop_slot(&self->at, slot);
    }
    Py_RETURN_NONE;
}

static PyObject *
Gaze_drain(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    /* Deactivate in LRU -> MRU order, matching FlatGazePrefetcher.drain
     * (dict insertion order). */
    while (self->at.head >= 0) {
        int slot = self->at.head;
        learn_slot(self, slot);
        ft_drop_slot(&self->at, slot);
    }
    Py_RETURN_NONE;
}

static PyObject *
Gaze_origin(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("(Li)", self->last_pc, self->last_meta);
}

static PyObject *
Gaze_counters(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "(LLLLLLL)", self->pht_lookups, self->pht_hits, self->pht_updates,
        self->pht_predictions, self->streaming_predictions,
        self->backup_activations, self->promotions);
}

static PyObject *
Gaze_reset(GazeKernel *self, PyObject *Py_UNUSED(ignored))
{
    ft_clear(&self->ft);
    ft_clear(&self->at);
    ft_clear(&self->pb);
    ft_clear(&self->dpct);
    int pb_entries = self->pb.cap;
    memset(self->pb_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_l2, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_issued_l1, 0, sizeof(uint64_t) * pb_entries);
    memset(self->pb_pending, 0, sizeof(long long) * pb_entries);
    memset(self->pht_valid, 0, self->pht_sets * self->pht_ways);
    self->pht_clock = 0;
    self->dc_value = 0;
    self->pht_lookups = self->pht_hits = self->pht_updates = 0;
    self->pht_predictions = self->streaming_predictions = 0;
    self->backup_activations = self->promotions = 0;
    Py_RETURN_NONE;
}

static PyMethodDef Gaze_methods[] = {
    {"train", (PyCFunction)(void (*)(void))Gaze_train, METH_FASTCALL,
     "One train step; returns a list of packed prefetches or None."},
    {"evict", (PyCFunction)Gaze_evict, METH_O,
     "Deactivate the region of an evicted block."},
    {"drain", (PyCFunction)Gaze_drain, METH_NOARGS,
     "Deactivate all tracked regions (learns their footprints)."},
    {"origin", (PyCFunction)Gaze_origin, METH_NOARGS,
     "(pc, meta_code) of the most recent emission; 1 means gaze-promo."},
    {"counters", (PyCFunction)Gaze_counters, METH_NOARGS,
     "(pht_lookups, pht_hits, pht_updates, pht_predictions, "
     "streaming_predictions, backup_activations, promotions)."},
    {"reset", (PyCFunction)Gaze_reset, METH_NOARGS, "Clear all state."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject GazeKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._kernels.GazeKernel",
    .tp_basicsize = sizeof(GazeKernel),
    .tp_dealloc = (destructor)Gaze_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "C twin of FlatGazePrefetcher's state machine.",
    .tp_methods = Gaze_methods,
    .tp_init = (initproc)Gaze_init,
    .tp_new = PyType_GenericNew,
};

/* ================================================================== */
static PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._kernels",
    .m_doc = "Compiled twins of the flat prefetcher train loops.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
    PyObject *m;
    if (PyType_Ready(&BertiKernelType) < 0 ||
        PyType_Ready(&GazeKernelType) < 0)
        return NULL;
    m = PyModule_Create(&kernels_module);
    if (!m)
        return NULL;
    Py_INCREF(&BertiKernelType);
    if (PyModule_AddObject(m, "BertiKernel",
                           (PyObject *)&BertiKernelType) < 0) {
        Py_DECREF(&BertiKernelType);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&GazeKernelType);
    if (PyModule_AddObject(m, "GazeKernel", (PyObject *)&GazeKernelType) < 0) {
        Py_DECREF(&GazeKernelType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "KERNELS_ABI", 1) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
