"""Command-line interface: ``python -m repro``.

Examples::

    python -m repro run --figure fig6 --jobs 4
    python -m repro run --figure fig11 --trace-length 4000
    python -m repro run --figure fig14 --jobs 4 --mix-mode epoch
    python -m repro run --suite spec17 --suite cloud --prefetchers gaze,pmp
    python -m repro run --table table5
    python -m repro run --sweep dram --jobs 8
    python -m repro run --trace-file traces/bwaves.gzt.gz --prefetchers gaze
    python -m repro trace export --generator streaming --seed 1 \
        --length 50000 -o traces/stream.champsim.xz
    python -m repro trace import raw.jsonl -o traces/raw.gzt.gz
    python -m repro trace info traces/stream.champsim.xz
    python -m repro bench
    python -m repro bench --quick --check --threshold 40
    python -m repro cache info
    python -m repro cache clear
    python -m repro list figures

``run`` builds an :class:`~repro.experiments.runner.ExperimentRunner` backed
by the job engine: ``--jobs N`` fans simulations out over N worker processes
(results are bit-identical to serial runs) and the persistent cache under
``.repro-cache/`` makes warm re-runs skip simulation entirely.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import figures, sweeps, tables
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, build_engine
from repro.experiments.executors import BatchExecutionError
from repro.experiments.reporting import render_result
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.prefetchers.registry import available_prefetchers, is_registered
from repro.workloads import formats as trace_formats
from repro.workloads.formats import (
    COMPRESSIONS,
    FORMATS,
    TraceFormatError,
    cap_instructions,
    interleave,
    remap_addresses,
    slice_accesses,
)
from repro.workloads.suites import SUITES, all_trace_specs, trace_specs_for_suite
from repro.workloads.trace import TraceSpec, make_trace, trace_statistics

#: Figures that accept a runner (and therefore honour --jobs / the cache).
_RUNNER_FIGURES: Dict[str, Callable[..., object]] = {
    "fig1": figures.fig1_characterization,
    "fig4": figures.fig4_initial_accesses,
    "fig6": figures.fig6_single_core_speedup,
    "fig7": figures.fig7_accuracy,
    "fig8": figures.fig8_coverage_timeliness,
    "fig9": figures.fig9_characterization_effect,
    "fig10": figures.fig10_streaming_module,
    "fig11": figures.fig11_comparative,
    "fig12": figures.fig12_gap_qmm,
    "fig13": figures.fig13_multilevel,
    "fig14": figures.fig14_multicore,
    "fig15": figures.fig15_four_core_mixes,
    "fig17": figures.fig17_gaze_sensitivity,
    "fig18": figures.fig18_vgaze,
    "fig19": figures.fig19_spatial_vs_temporal,
}

#: Figures over a fixed representative trace list: --traces-per-suite has no
#: effect on them (only --trace-length shrinks the run).
_FIXED_TRACE_FIGURES = ("fig10", "fig11", "fig17", "fig18", "fig19")

#: Multi-core figures: engine-backed mix jobs that honour --jobs / the
#: cache plus the mix-specific flags (--mix-mode, --epoch-instructions).
_MIX_FIGURES = ("fig14", "fig15")

_TABLES: Dict[str, Callable[..., object]] = {
    "table1": tables.table1_gaze_storage,
    "table4": tables.table4_baseline_storage,
    "table5": tables.table5_comparison,
    "table6": tables.table6_four_core_mixes,
}

#: Tables that accept a runner.
_RUNNER_TABLES = ("table5",)

_SWEEPS: Dict[str, Callable[..., object]] = {
    "dram": sweeps.sweep_dram_bandwidth,
    "llc": sweeps.sweep_llc_size,
    "l2c": sweeps.sweep_l2c_size,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Gaze prefetcher evaluation (HPCA 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a figure, table, sweep or ad-hoc grid")
    target = run.add_mutually_exclusive_group()
    target.add_argument("--figure", choices=sorted(_RUNNER_FIGURES),
                        help="figure to reproduce (fig1..fig19)")
    target.add_argument("--table", choices=sorted(_TABLES), help="table to reproduce")
    target.add_argument("--sweep", choices=sorted(_SWEEPS),
                        help="Fig. 16 system sweep to run")
    run.add_argument("--suite", action="append", default=None,
                     choices=sorted(SUITES),
                     help="suite for an ad-hoc grid (repeatable)")
    run.add_argument("--trace-file", action="append", default=None,
                     metavar="PATH",
                     help="simulate an on-disk trace file instead of a "
                          "generated suite (repeatable; streams in O(1) "
                          "memory, any supported format/compression)")
    run.add_argument("--prefetchers", default=None,
                     help="comma-separated prefetcher names for ad-hoc grids "
                          "(default gaze,vberti,pmp)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (1 = serial)")
    run.add_argument("--trace-length", type=int, default=None, metavar="L",
                     help="accesses per trace (default 12000)")
    run.add_argument("--traces-per-suite", type=int, default=None, metavar="K",
                     help="traces per suite (default 3; 0 = all)")
    run.add_argument("--mix-mode", choices=("exact", "epoch"), default="exact",
                     help="multi-core schedule for fig14/fig15: exact "
                          "access-by-access interleaving (default) or the "
                          "epoch-sharded approximation")
    run.add_argument("--epoch-instructions", type=int, default=0, metavar="E",
                     help="epoch length for --mix-mode epoch "
                          "(0 = auto: budget/8, at least 500)")
    run.add_argument("--batch", choices=("auto", "on", "off"), default="auto",
                     help="simulation kernel for single-core jobs: batched "
                          "over array-decoded traces when decodable (auto, "
                          "default), always decode incl. file traces (on), "
                          "or the scalar kernel (off); statistics are "
                          "bit-identical either way")
    run.add_argument("--kernel", choices=("auto", "python", "compiled"),
                     default="auto",
                     help="prefetcher-state tier for single-core jobs: "
                          "engine default (auto), pure Python (python), or "
                          "the optional C extension with silent fallback "
                          "when it is not built (compiled; build it with "
                          "`python setup.py build_ext --inplace`); "
                          "statistics are bit-identical either way")
    run.add_argument("--cache-dir", default=None,
                     help="persistent result cache directory (default .repro-cache)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the persistent result cache")
    run.add_argument("--precision", type=int, default=3,
                     help="decimal places in printed tables")
    run.add_argument("--retries", type=int, default=None, metavar="N",
                     help="total attempts per job before it is reported as "
                          "a failure (default 3; crashes, hangs and "
                          "transient errors each cost one attempt)")
    run.add_argument("--job-timeout", type=float, default=None, metavar="S",
                     help="per-job wall-clock bound in seconds under "
                          "--jobs N: a hung worker is terminated and the "
                          "job retried (default: no timeout)")
    run.add_argument("--strict", action="store_true",
                     help="abort with an error when any job exhausts its "
                          "retries (default: render the partial grid with "
                          "failed cells marked nan and print a failure "
                          "report)")
    run.add_argument("--faults", default=None, metavar="PLAN",
                     help="fault-injection plan spec for chaos testing, "
                          "e.g. 'seed=1;worker.crash:rate=0.3' "
                          "(default: $REPRO_FAULT_PLAN; 'off' disables)")

    cache = sub.add_parser(
        "cache", help="inspect, verify or clear the result cache"
    )
    cache.add_argument("action", choices=("info", "clear", "verify"))
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default .repro-cache)")

    bench = sub.add_parser(
        "bench",
        help="run the kernel-throughput suite and record a BENCH_<n>.json "
             "snapshot",
    )
    bench.add_argument("--quick", action="store_true",
                       help="run the 4-case subset (same case keys, "
                            "comparable against full-suite baselines)")
    bench.add_argument("--repeats", type=int, default=3, metavar="N",
                       help="runs per case; the best rate is recorded "
                            "(default 3)")
    bench.add_argument("--output-dir", default=".", metavar="DIR",
                       help="directory holding the BENCH_<n>.json "
                            "trajectory (default: repo root)")
    bench.add_argument("--no-write", action="store_true",
                       help="measure and compare only; do not write a new "
                            "snapshot")
    bench.add_argument("--baseline", default=None, metavar="PATH",
                       help="snapshot to compare against (default: latest "
                            "BENCH_<n>.json in --output-dir)")
    bench.add_argument("--check", action="store_true",
                       help="exit non-zero when any shared case regresses "
                            "beyond --threshold")
    bench.add_argument("--threshold", type=float, default=40.0,
                       metavar="PCT",
                       help="regression threshold in percent (default 40; "
                            "generous on purpose — machines differ)")
    bench.add_argument("--kind", action="append", default=None,
                       choices=("kernel", "mix", "stream"), metavar="KIND",
                       help="restrict the run to one case kind (repeatable: "
                            "kernel, mix, stream); filtered runs keep their "
                            "case keys and compare against full baselines "
                            "over the shared cases")
    bench.add_argument("--kernel", choices=("auto", "python", "compiled"),
                       default="auto",
                       help="prefetcher-state tier for single-core cases "
                            "(mix cases keep the engine default); case keys "
                            "are tier-independent, so a compiled-tier run's "
                            "per-case ratios against a pure-Python baseline "
                            "read directly as the compiled speedup")

    trace = sub.add_parser(
        "trace", help="export, convert and inspect trace files"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def _add_transform_flags(cmd):
        cmd.add_argument("--start", type=int, default=0, metavar="N",
                         help="skip the first N accesses")
        cmd.add_argument("--limit", type=int, default=None, metavar="N",
                         help="keep at most N accesses (after --start)")
        cmd.add_argument("--instr-budget", type=int, default=None, metavar="I",
                         help="stop once I instructions have been emitted")
        cmd.add_argument("--remap-offset", default=None, metavar="BYTES",
                         help="shift every address by this byte offset "
                              "(accepts hex, e.g. 0x1000000)")

    export = trace_sub.add_parser(
        "export", help="generate a synthetic trace and write it to a file"
    )
    export_source = export.add_mutually_exclusive_group(required=True)
    export_source.add_argument("--generator", metavar="KIND",
                               help="workload generator kind (see "
                                    "`repro list suites` traces)")
    export_source.add_argument("--trace", metavar="NAME",
                               help="named trace spec from the built-in "
                                    "suites (e.g. bwaves_s-like)")
    export.add_argument("--seed", type=int, default=0,
                        help="generator RNG seed (with --generator)")
    export.add_argument("--length", type=int, default=None, metavar="L",
                        help="accesses to generate (default: spec length "
                             "or 40000)")
    export.add_argument("--param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="generator parameter (repeatable, with "
                             "--generator)")
    export.add_argument("-o", "--output", required=True, metavar="PATH",
                        help="destination file (suffix selects format and "
                             "compression)")
    export.add_argument("--format", choices=sorted(FORMATS), default=None,
                        help="force the trace format (default: from suffix)")
    export.add_argument("--compression", choices=("auto",) + COMPRESSIONS,
                        default="auto",
                        help="force the compression codec (default: from "
                             "suffix)")
    _add_transform_flags(export)

    imp = trace_sub.add_parser(
        "import",
        help="convert/validate trace files (several inputs interleave "
             "deterministically)",
    )
    imp.add_argument("sources", nargs="+", metavar="SRC",
                     help="input trace file(s) in any supported format")
    imp.add_argument("-o", "--output", required=True, metavar="PATH",
                     help="destination file (suffix selects format and "
                          "compression)")
    imp.add_argument("--input-format", choices=sorted(FORMATS), default=None,
                     help="force the input format (default: sniffed)")
    imp.add_argument("--format", choices=sorted(FORMATS), default=None,
                     help="force the output format (default: from suffix)")
    imp.add_argument("--compression", choices=("auto",) + COMPRESSIONS,
                     default="auto",
                     help="force the compression codec (default: from suffix)")
    imp.add_argument("--interleave-chunk", type=int, default=1, metavar="K",
                     help="accesses taken per input per round when "
                          "interleaving several sources (default 1)")
    _add_transform_flags(imp)

    info = trace_sub.add_parser(
        "info", help="validate a trace file and print its metadata"
    )
    info.add_argument("path", metavar="PATH")
    info.add_argument("--no-stats", action="store_true",
                      help="skip the access-pattern statistics pass")

    lst = sub.add_parser("list", help="list available experiment targets")
    lst.add_argument("what", choices=("figures", "tables", "sweeps",
                                      "prefetchers", "suites"))

    lint = sub.add_parser(
        "lint",
        help="run the repo invariant lint (rules R1-R6)",
        description=(
            "Static analysis of repo-specific invariants: job-key "
            "completeness (R1), C/Python twin-constant drift (R2), "
            "hot-path hygiene (R3), golden-grid registry coverage (R4), "
            "compiled-driver decline reasons (R5) and no silent "
            "exception handlers in experiments/ (R6).  Exits non-zero "
            "when any unwaived diagnostic is found."
        ),
    )
    lint.add_argument("--check", action="store_true",
                      help="explicit CI alias; lint always exits non-zero "
                           "on findings")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule IDs to run (default: all)")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help="repository root to lint (default: the checkout "
                           "that owns the running repro package)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    return parser


def _make_scale(args: argparse.Namespace) -> Optional[RunScale]:
    if args.trace_length is None and args.traces_per_suite is None:
        return None
    defaults = RunScale()
    traces_per_suite = defaults.traces_per_suite
    if args.traces_per_suite is not None:
        traces_per_suite = args.traces_per_suite if args.traces_per_suite > 0 else None
    return RunScale(
        trace_length=(
            args.trace_length if args.trace_length is not None
            else defaults.trace_length
        ),
        traces_per_suite=traces_per_suite,
    )


def _warn_ignored_engine_flags(args: argparse.Namespace, reason: str) -> None:
    """Tell the user which engine flags a non-engine target will ignore."""
    ignored = [
        flag
        for flag, is_set in (
            ("--jobs", args.jobs not in (None, 1)),
            ("--trace-length", args.trace_length is not None),
            ("--traces-per-suite", args.traces_per_suite is not None),
            ("--cache-dir", args.cache_dir is not None),
            ("--no-cache", args.no_cache),
        )
        if is_set
    ]
    if ignored:
        print(f"note: {reason}; {', '.join(ignored)} ignored", file=sys.stderr)


def _print_engine_summary(engine: ExperimentEngine, elapsed: float) -> None:
    counters = engine.counters()
    cache_root = engine.cache.root if engine.cache is not None else "disabled"
    print(
        f"\n# {counters['simulations_run']} simulated, "
        f"{counters['cache_hits']} cache hits, "
        f"{counters['memo_hits']} memo hits in {elapsed:.1f}s "
        f"(cache: {cache_root})"
    )
    recovery = {
        key: counters[key]
        for key in ("retries", "crashes", "timeouts", "cache_quarantined")
        if counters[key]
    }
    if recovery:
        detail = ", ".join(f"{value} {key}" for key, value in recovery.items())
        print(f"# fault recovery: {detail}")


def _print_failure_report(engine: ExperimentEngine) -> None:
    """Structured report of every cell that exhausted its retries."""
    if not engine.job_failures:
        return
    print(
        f"# {len(engine.job_failures)} job(s) failed after retries "
        "(cells marked nan):",
        file=sys.stderr,
    )
    for failure in engine.job_failures:
        print(f"#   {failure} [key {failure.key[:16]}…]", file=sys.stderr)


def _file_trace_specs(paths: List[str]) -> List[TraceSpec]:
    """Build file-backed specs for ``run --trace-file`` arguments."""
    specs = []
    for path in paths:
        spec = TraceSpec.from_file(path)
        if spec.length == 0:
            raise TraceFormatError(
                f"trace file {path} is empty (0 records); nothing to simulate"
            )
        specs.append(spec)
    return specs


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        return _cmd_run_inner(args)
    except BatchExecutionError as exc:
        # --strict: a job exhausted its retries; the structured failures
        # are the error message.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_run_inner(args: argparse.Namespace) -> int:
    if args.trace_file and (args.figure or args.table or args.sweep):
        target = args.figure or args.table or f"sweep {args.sweep}"
        print(
            f"error: --trace-file defines an ad-hoc grid and cannot be "
            f"combined with {target}",
            file=sys.stderr,
        )
        return 2
    file_specs: List[TraceSpec] = []
    if args.trace_file:
        try:
            file_specs = _file_trace_specs(args.trace_file)
        except TraceFormatError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.retries is not None and args.retries < 1:
        print("error: --retries must be >= 1", file=sys.stderr)
        return 2
    engine = build_engine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=False if args.no_cache else None,
        retries=args.retries,
        job_timeout=args.job_timeout,
        faults=args.faults,
        strict=args.strict,
    )
    scale = _make_scale(args)
    if file_specs and args.trace_length is None:
        if args.suite:
            # One scale drives every job in a grid, so stretching it to
            # the file length would silently inflate the suite's synthetic
            # traces too; keep the default and tell the user.
            default_length = (scale if scale is not None else RunScale()).trace_length
            if any(spec.length > default_length for spec in file_specs):
                print(
                    f"note: combined with --suite, file traces are capped at "
                    f"the grid trace length ({default_length} accesses); "
                    "pass --trace-length to simulate more",
                    file=sys.stderr,
                )
        else:
            # Default to simulating each file trace in full rather than
            # truncating at the synthetic-grid default length.
            base = scale if scale is not None else RunScale()
            scale = RunScale(
                trace_length=max(spec.length for spec in file_specs),
                traces_per_suite=base.traces_per_suite,
            )
    runner = ExperimentRunner(
        scale=scale, engine=engine, batch=args.batch, kernel=args.kernel
    )

    if args.figure in _FIXED_TRACE_FIGURES and args.traces_per_suite is not None:
        print(
            f"note: {args.figure} uses a fixed trace list; "
            "--traces-per-suite ignored (use --trace-length to shrink the run)",
            file=sys.stderr,
        )
    if args.figure in _MIX_FIGURES and args.traces_per_suite is not None:
        print(
            f"note: {args.figure} uses fixed mix compositions; "
            "--traces-per-suite ignored (use --trace-length to shrink the run)",
            file=sys.stderr,
        )
    if (args.figure or args.table or args.sweep) and (
        args.suite or args.prefetchers is not None
    ):
        target = args.figure or args.table or f"sweep {args.sweep}"
        print(
            f"note: --suite/--prefetchers only apply to ad-hoc grids; "
            f"{target} defines its own workloads, flags ignored",
            file=sys.stderr,
        )
    if args.figure not in _MIX_FIGURES and (
        args.mix_mode != "exact" or args.epoch_instructions
    ):
        print(
            "note: --mix-mode/--epoch-instructions only apply to the "
            f"multi-core figures ({', '.join(_MIX_FIGURES)}); flags ignored",
            file=sys.stderr,
        )

    start = time.perf_counter()
    engine_used = True
    if args.figure in _MIX_FIGURES:
        title = args.figure
        mix_kwargs: Dict[str, object] = {
            "mode": args.mix_mode,
            "epoch_instructions": args.epoch_instructions,
        }
        if args.trace_length is not None:
            # Mixes scale independently of the single-core grids, so the
            # flag maps onto the mix's own trace length.
            mix_kwargs["trace_length"] = args.trace_length
        result = _RUNNER_FIGURES[args.figure](runner, **mix_kwargs)
    elif args.figure:
        title = args.figure
        result = _RUNNER_FIGURES[args.figure](runner)
    elif args.table:
        title = args.table
        func = _TABLES[args.table]
        if args.table in _RUNNER_TABLES:
            result = func(runner)
        else:
            _warn_ignored_engine_flags(args, f"{args.table} runs no simulations")
            engine_used = False
            result = func()
    elif args.sweep:
        title = f"sweep-{args.sweep}"
        result = _SWEEPS[args.sweep](scale=scale, engine=engine)
    else:
        requested = (
            args.prefetchers if args.prefetchers is not None else "gaze,vberti,pmp"
        )
        prefetchers = [
            name.strip() for name in requested.split(",") if name.strip()
        ]
        if not prefetchers:
            print("error: --prefetchers selected no prefetchers", file=sys.stderr)
            return 2
        for name in prefetchers:
            if not is_registered(name):
                print(
                    f"error: unknown prefetcher {name!r}; "
                    f"known: {', '.join(available_prefetchers())}",
                    file=sys.stderr,
                )
                return 2
        if file_specs:
            sources = [spec.name for spec in file_specs]
            if args.suite:
                for suite in args.suite:
                    file_specs.extend(
                        runner.scale.select(trace_specs_for_suite(suite))
                    )
                sources.extend(args.suite)
            title = f"grid: {','.join(sources)} x {','.join(prefetchers)}"
            results = runner.run_grid(file_specs, prefetchers)
        else:
            suites = args.suite if args.suite else ["spec17"]
            title = f"grid: {','.join(suites)} x {','.join(prefetchers)}"
            results = runner.run_suites(suites, prefetchers)
        result = [r.row() for r in results]
    elapsed = time.perf_counter() - start

    print(f"== {title} ==")
    print(render_result(result, precision=args.precision))
    if engine_used:
        _print_engine_summary(engine, elapsed)
        _print_failure_report(engine)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments import bench as bench_mod

    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 < args.threshold < 100.0:
        print("error: --threshold must be in (0, 100)", file=sys.stderr)
        return 2

    kinds = tuple(dict.fromkeys(args.kind)) if args.kind else None
    suite = "quick subset" if args.quick else "full suite"
    if kinds is not None:
        suite += f", kinds: {','.join(kinds)}"
    if args.kernel != "auto":
        suite += f", kernel={args.kernel}"
    print(f"== throughput bench ({suite}, best of {args.repeats}) ==")
    result = bench_mod.run_bench(
        quick=args.quick,
        repeats=args.repeats,
        progress=print,
        kernel=args.kernel,
        kinds=kinds,
    )
    if args.kernel == "compiled" and not result.get("compiled_kernel_available"):
        print(
            "note: compiled kernel extension not built; single-core cases "
            "fell back to the pure-Python flat tier "
            "(`python setup.py build_ext --inplace` to build it)",
            file=sys.stderr,
        )
    print(f"{'geomean':40s} {result['geomean_accesses_per_sec']:12,.0f} acc/s")
    for kind, value in result.get("geomean_by_kind", {}).items():
        print(f"{'geomean/' + kind:40s} {value:12,.0f} acc/s")
    if args.check or args.kernel == "compiled":
        # Which tier actually executed each single-core case — a
        # ``--kernel compiled`` run that silently fell back to the Python
        # driver is visible here, not masquerading as a tier win.
        for key, payload in result.get("cases", {}).items():
            tier = payload.get("tier")
            if tier is None:
                continue  # mix cases have no single-core tier
            line = f"# tier[{key}] = {tier}"
            reason = payload.get("tier_decline_reason")
            if reason:
                line += f" ({reason})"
            print(line)
    compiled_tier = result.get("compiled_tier")
    if compiled_tier:
        print(
            f"# compiled tier: geomean "
            f"{compiled_tier['geomean_ratio_vs_default']:.2f}x vs default "
            f"over {len(compiled_tier['cases'])} driver case(s)"
        )

    baseline_path = args.baseline
    if baseline_path is None:
        latest = bench_mod.latest_bench_file(args.output_dir)
        baseline_path = str(latest) if latest is not None else None
    exit_code = 0
    if baseline_path is not None:
        baseline = bench_mod.load_bench_file(baseline_path)
        report = bench_mod.compare_bench(
            result, baseline, threshold=args.threshold / 100.0
        )
        print(f"\n# vs {baseline_path} "
              f"({len(report['shared_cases'])} shared cases): "
              f"geomean {report['geomean_ratio']:.2f}x")
        # Per-kind geomeans: a mix/stream regression cannot hide behind a
        # kernel-case win (each kind is checked against the threshold).
        for kind, value in report.get("geomean_ratio_by_kind", {}).items():
            marker = (
                " <-- REGRESSION"
                if kind in report.get("kind_regressions", ())
                else ""
            )
            print(f"#   geomean[{kind}] {value:.2f}x{marker}")
        for key in report["shared_cases"]:
            marker = " <-- REGRESSION" if key in report["regressions"] else ""
            print(f"  {key:38s} {report['ratios'][key]:6.2f}x{marker}")
        if report["only_in_baseline"]:
            print(f"# {len(report['only_in_baseline'])} baseline case(s) "
                  "not measured this run (no regression coverage): "
                  + ", ".join(report["only_in_baseline"]))
        if report["only_in_new"]:
            print(f"# {len(report['only_in_new'])} new case(s) without a "
                  "baseline: " + ", ".join(report["only_in_new"]))
        if not report["ok"]:
            kind_note = (
                f" + {len(report['kind_regressions'])} kind geomean(s)"
                if report.get("kind_regressions")
                else ""
            )
            print(
                f"\nerror: {len(report['regressions'])} case(s){kind_note} "
                f"regressed beyond {args.threshold:.0f}%",
                file=sys.stderr,
            )
            if args.check:
                exit_code = 1
    else:
        print("\n# no baseline snapshot found; this run establishes one")

    if not args.no_write:
        path = bench_mod.write_bench_file(result, args.output_dir)
        print(f"\nwrote {path}")
    return exit_code


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        info = cache.info()
        for key in ("root", "entries", "bytes", "quarantine_entries",
                    "quarantine_bytes", "tmp_files", "schema"):
            print(f"{key}: {info[key]}")
    elif args.action == "verify":
        report = cache.verify()
        for key in ("scanned", "ok", "legacy", "quarantined", "tmp_removed"):
            print(f"{key}: {report[key]}")
        if report["quarantined"]:
            print(
                f"# {report['quarantined']} corrupt entr(ies) moved to "
                f"{cache.quarantine_root}; they will re-simulate as misses"
            )
    else:
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
    return 0


def _parse_generator_params(pairs: List[str]) -> Dict[str, object]:
    """Parse repeated ``--param key=value`` flags (int/float/str coercion)."""
    params: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"expected KEY=VALUE, got {pair!r}")
        for convert in (lambda v: int(v, 0), float):
            try:
                params[key] = convert(raw)
                break
            except ValueError:
                continue
        else:
            params[key] = raw
    return params


def _apply_transform_flags(accesses, args: argparse.Namespace):
    """Chain the slice/cap/remap streaming transforms selected by flags."""
    if args.start or args.limit is not None:
        stop = None if args.limit is None else args.start + args.limit
        accesses = slice_accesses(accesses, args.start, stop)
    if args.instr_budget is not None:
        accesses = cap_instructions(accesses, args.instr_budget)
    if args.remap_offset is not None:
        try:
            offset = int(args.remap_offset, 0)
        except ValueError:
            raise TraceFormatError(
                f"--remap-offset must be an integer (decimal or 0x-hex), "
                f"got {args.remap_offset!r}"
            ) from None
        accesses = remap_addresses(accesses, offset=offset)
    return accesses


def _cmd_trace_export(args: argparse.Namespace) -> int:
    if args.trace is not None:
        matches = [
            spec for spec in all_trace_specs(main_only=False)
            if spec.name == args.trace
        ]
        if not matches:
            print(f"error: unknown trace {args.trace!r}; see "
                  "`python -m repro list suites`", file=sys.stderr)
            return 2
        spec = matches[0]
        accesses = iter(spec.build(length=args.length))
    else:
        try:
            params = _parse_generator_params(args.param)
            accesses = iter(make_trace(
                args.generator,
                seed=args.seed,
                length=args.length if args.length is not None else 40_000,
                **params,
            ))
        except (KeyError, ValueError, TypeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    accesses = _apply_transform_flags(accesses, args)
    count = trace_formats.save_trace_file(
        accesses, args.output, format=args.format, compression=args.compression
    )
    digest = trace_formats.file_digest(args.output)
    print(f"wrote {count} accesses to {args.output} (sha256 {digest[:16]}…)")
    return 0


def _cmd_trace_import(args: argparse.Namespace) -> int:
    streams = [
        trace_formats.read_trace_stream(source, format=args.input_format)
        for source in args.sources
    ]
    if len(streams) == 1:
        combined = streams[0]
    else:
        combined = interleave(streams, chunk=args.interleave_chunk)
    combined = _apply_transform_flags(combined, args)
    count = trace_formats.save_trace_file(
        combined, args.output, format=args.format, compression=args.compression
    )
    digest = trace_formats.file_digest(args.output)
    print(
        f"wrote {count} accesses from {len(args.sources)} source(s) to "
        f"{args.output} (sha256 {digest[:16]}…)"
    )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.no_stats:
        info = trace_formats.describe_trace_file(args.path)
        for key, value in info.items():
            print(f"{key}: {value}")
        return 0

    # One decode pass serves both the record/instruction counts and the
    # access-pattern statistics (decompression dominates on large traces).
    fmt = trace_formats.sniff_format(args.path)
    with trace_formats.open_for_read(args.path) as stream:
        header = fmt.describe(stream)
    stats = trace_statistics(
        trace_formats.read_trace_stream(args.path, format=fmt.name)
    )
    info = {
        "path": str(args.path),
        "format": fmt.name,
        "compression": trace_formats.sniff_compression(args.path),
        "bytes": Path(args.path).stat().st_size,
        "records": int(stats["accesses"]),
        "instructions": int(stats["instructions"]),
        "digest": trace_formats.file_digest(args.path),
    }
    info.update(header)
    for key, value in info.items():
        print(f"{key}: {value}")
    for key, value in stats.items():
        if key in ("accesses", "instructions"):
            continue  # already printed as records/instructions above
        print(f"{key}: {value:g}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    handlers = {
        "export": _cmd_trace_export,
        "import": _cmd_trace_import,
        "info": _cmd_trace_info,
    }
    try:
        return handlers[args.trace_command](args)
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "figures":
        names: List[str] = sorted(_RUNNER_FIGURES)
    elif args.what == "tables":
        names = sorted(_TABLES)
    elif args.what == "sweeps":
        names = sorted(_SWEEPS)
    elif args.what == "prefetchers":
        names = available_prefetchers()
    else:
        names = sorted(SUITES)
    for name in names:
        print(name)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.lint import RULES, run_lint

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].summary}")
        return 0
    rules = None
    if args.rules:
        rules = [token.strip().upper() for token in args.rules.split(",") if token.strip()]
    try:
        report = run_lint(
            root=Path(args.root) if args.root else None, rules=rules
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for diagnostic in report.diagnostics:
        print(diagnostic.format())
    waived = f", {len(report.waived)} waived" if report.waived else ""
    if report.diagnostics:
        print(
            f"repro lint: {len(report.diagnostics)} problem(s) "
            f"[{', '.join(report.rules_run)}{waived}]"
        )
        return 1
    print(f"repro lint: clean [{', '.join(report.rules_run)}{waived}]")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    return _cmd_list(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
