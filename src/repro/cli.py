"""Command-line interface: ``python -m repro``.

Examples::

    python -m repro run --figure fig6 --jobs 4
    python -m repro run --figure fig11 --trace-length 4000
    python -m repro run --suite spec17 --suite cloud --prefetchers gaze,pmp
    python -m repro run --table table5
    python -m repro run --sweep dram --jobs 8
    python -m repro cache info
    python -m repro cache clear
    python -m repro list figures

``run`` builds an :class:`~repro.experiments.runner.ExperimentRunner` backed
by the job engine: ``--jobs N`` fans simulations out over N worker processes
(results are bit-identical to serial runs) and the persistent cache under
``.repro-cache/`` makes warm re-runs skip simulation entirely.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import figures, sweeps, tables
from repro.experiments.cache import ResultCache
from repro.experiments.engine import ExperimentEngine, build_engine
from repro.experiments.reporting import render_result
from repro.experiments.runner import ExperimentRunner, RunScale
from repro.prefetchers.registry import available_prefetchers, is_registered
from repro.workloads.suites import SUITES

#: Figures that accept a runner (and therefore honour --jobs / the cache).
_RUNNER_FIGURES: Dict[str, Callable[..., object]] = {
    "fig1": figures.fig1_characterization,
    "fig4": figures.fig4_initial_accesses,
    "fig6": figures.fig6_single_core_speedup,
    "fig7": figures.fig7_accuracy,
    "fig8": figures.fig8_coverage_timeliness,
    "fig9": figures.fig9_characterization_effect,
    "fig10": figures.fig10_streaming_module,
    "fig11": figures.fig11_comparative,
    "fig12": figures.fig12_gap_qmm,
    "fig13": figures.fig13_multilevel,
    "fig17": figures.fig17_gaze_sensitivity,
    "fig18": figures.fig18_vgaze,
}

#: Figures over a fixed representative trace list: --traces-per-suite has no
#: effect on them (only --trace-length shrinks the run).
_FIXED_TRACE_FIGURES = ("fig10", "fig11", "fig17", "fig18")

#: Multi-core figures run through ``simulate_mix`` (always in-process).
_STANDALONE_FIGURES: Dict[str, Callable[[], object]] = {
    "fig14": figures.fig14_multicore,
    "fig15": figures.fig15_four_core_mixes,
}

_TABLES: Dict[str, Callable[..., object]] = {
    "table1": tables.table1_gaze_storage,
    "table4": tables.table4_baseline_storage,
    "table5": tables.table5_comparison,
    "table6": tables.table6_four_core_mixes,
}

#: Tables that accept a runner.
_RUNNER_TABLES = ("table5",)

_SWEEPS: Dict[str, Callable[..., object]] = {
    "dram": sweeps.sweep_dram_bandwidth,
    "llc": sweeps.sweep_llc_size,
    "l2c": sweeps.sweep_l2c_size,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Gaze prefetcher evaluation (HPCA 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a figure, table, sweep or ad-hoc grid")
    target = run.add_mutually_exclusive_group()
    target.add_argument("--figure", choices=sorted(
        list(_RUNNER_FIGURES) + list(_STANDALONE_FIGURES)
    ), help="figure to reproduce (fig1..fig18)")
    target.add_argument("--table", choices=sorted(_TABLES), help="table to reproduce")
    target.add_argument("--sweep", choices=sorted(_SWEEPS),
                        help="Fig. 16 system sweep to run")
    run.add_argument("--suite", action="append", default=None,
                     choices=sorted(SUITES),
                     help="suite for an ad-hoc grid (repeatable)")
    run.add_argument("--prefetchers", default=None,
                     help="comma-separated prefetcher names for ad-hoc grids "
                          "(default gaze,vberti,pmp)")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (1 = serial)")
    run.add_argument("--trace-length", type=int, default=None, metavar="L",
                     help="accesses per trace (default 12000)")
    run.add_argument("--traces-per-suite", type=int, default=None, metavar="K",
                     help="traces per suite (default 3; 0 = all)")
    run.add_argument("--cache-dir", default=None,
                     help="persistent result cache directory (default .repro-cache)")
    run.add_argument("--no-cache", action="store_true",
                     help="disable the persistent result cache")
    run.add_argument("--precision", type=int, default=3,
                     help="decimal places in printed tables")

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument("--cache-dir", default=None,
                       help="cache directory (default .repro-cache)")

    lst = sub.add_parser("list", help="list available experiment targets")
    lst.add_argument("what", choices=("figures", "tables", "sweeps",
                                      "prefetchers", "suites"))
    return parser


def _make_scale(args: argparse.Namespace) -> Optional[RunScale]:
    if args.trace_length is None and args.traces_per_suite is None:
        return None
    defaults = RunScale()
    traces_per_suite = defaults.traces_per_suite
    if args.traces_per_suite is not None:
        traces_per_suite = args.traces_per_suite if args.traces_per_suite > 0 else None
    return RunScale(
        trace_length=(
            args.trace_length if args.trace_length is not None
            else defaults.trace_length
        ),
        traces_per_suite=traces_per_suite,
    )


def _warn_ignored_engine_flags(args: argparse.Namespace, reason: str) -> None:
    """Tell the user which engine flags a non-engine target will ignore."""
    ignored = [
        flag
        for flag, is_set in (
            ("--jobs", args.jobs not in (None, 1)),
            ("--trace-length", args.trace_length is not None),
            ("--traces-per-suite", args.traces_per_suite is not None),
            ("--cache-dir", args.cache_dir is not None),
            ("--no-cache", args.no_cache),
        )
        if is_set
    ]
    if ignored:
        print(f"note: {reason}; {', '.join(ignored)} ignored", file=sys.stderr)


def _print_engine_summary(engine: ExperimentEngine, elapsed: float) -> None:
    counters = engine.counters()
    cache_root = engine.cache.root if engine.cache is not None else "disabled"
    print(
        f"\n# {counters['simulations_run']} simulated, "
        f"{counters['cache_hits']} cache hits, "
        f"{counters['memo_hits']} memo hits in {elapsed:.1f}s "
        f"(cache: {cache_root})"
    )


def _cmd_run(args: argparse.Namespace) -> int:
    engine = build_engine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=False if args.no_cache else None,
    )
    scale = _make_scale(args)
    runner = ExperimentRunner(scale=scale, engine=engine)

    if args.figure in _FIXED_TRACE_FIGURES and args.traces_per_suite is not None:
        print(
            f"note: {args.figure} uses a fixed trace list; "
            "--traces-per-suite ignored (use --trace-length to shrink the run)",
            file=sys.stderr,
        )
    if (args.figure or args.table or args.sweep) and (
        args.suite or args.prefetchers is not None
    ):
        target = args.figure or args.table or f"sweep {args.sweep}"
        print(
            f"note: --suite/--prefetchers only apply to ad-hoc grids; "
            f"{target} defines its own workloads, flags ignored",
            file=sys.stderr,
        )

    start = time.perf_counter()
    engine_used = True
    if args.figure in _STANDALONE_FIGURES:
        _warn_ignored_engine_flags(
            args, f"{args.figure} runs through the multi-core driver"
        )
        engine_used = False
        title = args.figure
        result = _STANDALONE_FIGURES[args.figure]()
    elif args.figure:
        title = args.figure
        result = _RUNNER_FIGURES[args.figure](runner)
    elif args.table:
        title = args.table
        func = _TABLES[args.table]
        if args.table in _RUNNER_TABLES:
            result = func(runner)
        else:
            _warn_ignored_engine_flags(args, f"{args.table} runs no simulations")
            engine_used = False
            result = func()
    elif args.sweep:
        title = f"sweep-{args.sweep}"
        result = _SWEEPS[args.sweep](scale=scale, engine=engine)
    else:
        suites = args.suite if args.suite else ["spec17"]
        requested = (
            args.prefetchers if args.prefetchers is not None else "gaze,vberti,pmp"
        )
        prefetchers = [
            name.strip() for name in requested.split(",") if name.strip()
        ]
        if not prefetchers:
            print("error: --prefetchers selected no prefetchers", file=sys.stderr)
            return 2
        for name in prefetchers:
            if not is_registered(name):
                print(
                    f"error: unknown prefetcher {name!r}; "
                    f"known: {', '.join(available_prefetchers())}",
                    file=sys.stderr,
                )
                return 2
        title = f"grid: {','.join(suites)} x {','.join(prefetchers)}"
        results = runner.run_suites(suites, prefetchers)
        result = [r.row() for r in results]
    elapsed = time.perf_counter() - start

    print(f"== {title} ==")
    print(render_result(result, precision=args.precision))
    if engine_used:
        _print_engine_summary(engine, elapsed)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "info":
        info = cache.info()
        for key in ("root", "entries", "bytes", "schema"):
            print(f"{key}: {info[key]}")
    else:
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.what == "figures":
        names: List[str] = sorted(list(_RUNNER_FIGURES) + list(_STANDALONE_FIGURES))
    elif args.what == "tables":
        names = sorted(_TABLES)
    elif args.what == "sweeps":
        names = sorted(_SWEEPS)
    elif args.what == "prefetchers":
        names = available_prefetchers()
    else:
        names = sorted(SUITES)
    for name in names:
        print(name)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return _cmd_list(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
