"""Storage accounting (Table I and Table IV).

Table I of the paper breaks down Gaze's 4.46 KB of metadata storage across
the Filter Table, Accumulation Table, Pattern History Table, Dense PC Table
and Prefetch Buffer.  The numbers here are produced by the same bit-level
accounting the hardware structures expose through ``storage_bits()``, so a
change to any structure automatically shows up in the table reproduction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.prefetchers.registry import available_prefetchers, create_prefetcher


#: Paper Table I reference values in bytes (for comparison in reports/tests).
GAZE_STORAGE_BREAKDOWN: Dict[str, int] = {
    "FT": 456,
    "AT": 1128,
    "PHT": 2304,
    "DPCT": 15,
    "PB": 668,
}

#: Paper Table IV storage overheads in KiB (reference values).
PAPER_TABLE4_STORAGE_KIB: Dict[str, float] = {
    "sms": 116.6,
    "bingo": 138.6,
    "dspatch": 4.25,
    "pmp": 5.0,
    "ipcp": 0.7,
    "spp-ppf": 39.3,
    "vberti": 2.55,
    "gaze": 4.46,
}


def gaze_storage_breakdown() -> Dict[str, float]:
    """Per-structure storage of the default Gaze configuration, in bytes."""
    from repro.core.gaze import GazePrefetcher

    gaze = GazePrefetcher()
    return {
        "FT": gaze.filter_table.storage_bits() / 8.0,
        "AT": gaze.accumulation_table.storage_bits() / 8.0,
        "PHT": gaze.pht.storage_bits() / 8.0,
        "DPCT": gaze.streaming.dpct.storage_bits() / 8.0,
        "DC": gaze.streaming.dc.storage_bits() / 8.0,
        "PB": gaze.prefetch_buffer.storage_bits() / 8.0,
        "Total": gaze.storage_bits() / 8.0,
    }


def prefetcher_storage_kib(name: str) -> float:
    """Storage requirement of a registered prefetcher, in KiB."""
    return create_prefetcher(name).storage_kib()


def baseline_storage_table(
    names: Tuple[str, ...] = (
        "sms",
        "bingo",
        "dspatch",
        "pmp",
        "ipcp",
        "spp-ppf",
        "vberti",
        "gaze",
    ),
) -> List[Dict[str, float]]:
    """Reproduce Table IV: measured vs paper storage for each prefetcher."""
    rows: List[Dict[str, float]] = []
    for name in names:
        measured = prefetcher_storage_kib(name)
        rows.append(
            {
                "prefetcher": name,
                "measured_kib": round(measured, 2),
                "paper_kib": PAPER_TABLE4_STORAGE_KIB.get(name, float("nan")),
            }
        )
    return rows


def storage_ratio_vs(name_a: str = "bingo", name_b: str = "gaze") -> float:
    """Storage ratio between two prefetchers (paper: Bingo is ~31x Gaze)."""
    return prefetcher_storage_kib(name_a) / prefetcher_storage_kib(name_b)
