"""Lint engine: repo context, rule registry and the ``run_lint`` driver."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.lint.diagnostics import Diagnostic, is_waived


class LintContext:
    """Cached file/AST access rooted at one repository checkout.

    Rules address files by repo-relative POSIX paths (``src/repro/...``)
    so the same rule runs unchanged against the real repository and
    against the miniature fixture trees the lint test suite builds.
    """

    __slots__ = ("root", "_text", "_tree")

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self._text: Dict[str, str] = {}
        self._tree: Dict[str, ast.Module] = {}

    def path(self, rel: str) -> Path:
        """Absolute path of a repo-relative file."""
        return self.root / rel

    def exists(self, rel: str) -> bool:
        """Whether the repo-relative file exists."""
        return self.path(rel).is_file()

    def text(self, rel: str) -> str:
        """The file's text (cached; UTF-8)."""
        cached = self._text.get(rel)
        if cached is None:
            cached = self.path(rel).read_text(encoding="utf-8")
            self._text[rel] = cached
        return cached

    def lines(self, rel: str) -> List[str]:
        """The file's lines (no trailing newlines)."""
        return self.text(rel).splitlines()

    def tree(self, rel: str) -> ast.Module:
        """The parsed AST of a repo-relative Python file (cached)."""
        cached = self._tree.get(rel)
        if cached is None:
            cached = ast.parse(self.text(rel), filename=rel)
            self._tree[rel] = cached
        return cached

    def py_files(self, rel_dir: str) -> List[str]:
        """Sorted repo-relative paths of every ``.py`` file under a dir."""
        base = self.path(rel_dir)
        if not base.is_dir():
            return []
        return sorted(
            p.relative_to(self.root).as_posix() for p in base.rglob("*.py")
        )


RuleFunc = Callable[[LintContext], List[Diagnostic]]


@dataclass(frozen=True, slots=True)
class Rule:
    """One registered lint rule: stable ID, one-line summary, checker."""

    rule_id: str
    summary: str
    check: RuleFunc


def _load_rules() -> Dict[str, Rule]:
    # Imported lazily so the rule modules can import this one for
    # shared helpers without a cycle at package-import time.
    from repro.analysis.lint import (
        rule_hygiene,
        rule_keys,
        rule_reasons,
        rule_registry,
        rule_silent,
        rule_twins,
    )

    rules = (
        Rule("R1", "job-key completeness of frozen keyed dataclasses",
             rule_keys.check),
        Rule("R2", "twin-constant drift between _kernels.c and Python",
             rule_twins.check),
        Rule("R3", "hot-path hygiene (__slots__, module state, randomness)",
             rule_hygiene.check),
        Rule("R4", "golden-grid coverage of every registered prefetcher",
             rule_registry.check),
        Rule("R5", "non-empty decline reasons in sim/driver.py",
             rule_reasons.check),
        Rule("R6", "no bare/silent except handlers in experiments/",
             rule_silent.check),
    )
    return {rule.rule_id: rule for rule in rules}


#: Rule registry, keyed by stable rule ID.
RULES: Dict[str, Rule] = _load_rules()


@dataclass(slots=True)
class LintReport:
    """Outcome of one lint run: surviving diagnostics plus waived ones."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    waived: List[Diagnostic] = field(default_factory=list)
    rules_run: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no (unwaived) diagnostic survived."""
        return not self.diagnostics


def default_root() -> Path:
    """The repository root that owns the running ``repro`` package.

    ``src/repro/analysis/lint/engine.py`` sits four levels below the
    root, so walking up is exact for both editable installs and plain
    ``PYTHONPATH=src`` checkouts.
    """
    here = Path(__file__).resolve()
    root = here.parents[4]
    if (root / "src" / "repro").is_dir():
        return root
    return Path.cwd()


def run_lint(
    root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the selected rules (default: all) against ``root``.

    Waivers are applied centrally: a rule reports every violation it
    sees, and diagnostics whose flagged line (or the line above it)
    carries a matching ``repro-lint: waive`` comment are moved to the
    report's ``waived`` list instead of failing the run.
    """
    context = LintContext(root if root is not None else default_root())
    selected = tuple(rules) if rules is not None else tuple(sorted(RULES))
    unknown = [rule_id for rule_id in selected if rule_id not in RULES]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown}; known: {sorted(RULES)}"
        )

    report = LintReport(rules_run=selected)
    for rule_id in selected:
        for diagnostic in RULES[rule_id].check(context):
            try:
                lines = context.lines(diagnostic.path)
            except OSError:
                lines = []
            if is_waived(diagnostic, lines):
                report.waived.append(diagnostic)
            else:
                report.diagnostics.append(diagnostic)
    report.diagnostics.sort(key=lambda d: (d.path, d.line, d.rule, d.message))
    report.waived.sort(key=lambda d: (d.path, d.line, d.rule, d.message))
    return report
