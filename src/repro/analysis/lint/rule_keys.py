"""R1 — job-key completeness of frozen, keyed dataclasses.

The persistent result cache is only sound if every behaviour-relevant
field of a job/config dataclass is folded into its content key.  This
rule finds every *frozen* dataclass under ``src/repro`` that defines a
``to_dict`` method (``SimulationJob``, ``MixSimulationJob``,
``SystemConfig``, ``TraceSpec``, ``TraceSource``, and anything added
later) and requires each field to be either

- consumed — read as ``self.<field>`` somewhere in the transitive
  closure of methods reachable from ``to_dict`` / ``identity_dict`` /
  ``content_key`` / ``key`` (an ``asdict(self)`` call consumes every
  field at once), or
- excluded — named on a class-level ``KEY_EXCLUDED`` tuple, the
  explicit "execution detail, never affects results" list.

Stale ``KEY_EXCLUDED`` entries are violations too: naming a field that
no longer exists, or one the key methods actually consume, means the
exclusion list has drifted from the code.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintContext

#: Methods whose attribute reads (transitively) count as key consumption.
_KEY_METHODS = ("to_dict", "identity_dict", "content_key", "key")


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return decorator
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return isinstance(keyword.value, ast.Constant) and keyword.value.value is True
    return False


def _fields(node: ast.ClassDef) -> Dict[str, int]:
    """Dataclass fields (annotated, non-ClassVar) mapped to line numbers."""
    fields: Dict[str, int] = {}
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        fields[statement.target.id] = statement.lineno
    return fields


def _key_excluded(node: ast.ClassDef) -> Optional[Tuple[List[str], int]]:
    """The ``KEY_EXCLUDED`` entries and their line, if declared."""
    for statement in node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "KEY_EXCLUDED":
                names: List[str] = []
                if isinstance(value, (ast.Tuple, ast.List)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.append(element.value)
                return names, statement.lineno
    return None


def _methods(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        statement.name: statement
        for statement in node.body
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _consumed_fields(
    node: ast.ClassDef, fields: Dict[str, int]
) -> Set[str]:
    """Field names read via ``self.`` in the key-method closure."""
    methods = _methods(node)
    consumed: Set[str] = set()
    visited: Set[str] = set()
    worklist = [name for name in _KEY_METHODS if name in methods]
    while worklist:
        method = methods[worklist.pop()]
        if method.name in visited:
            continue
        visited.add(method.name)
        arguments = method.args.posonlyargs + method.args.args
        self_name = arguments[0].arg if arguments else "self"
        for inner in ast.walk(method):
            if isinstance(inner, ast.Attribute) and isinstance(
                inner.value, ast.Name
            ) and inner.value.id == self_name:
                if inner.attr in fields:
                    consumed.add(inner.attr)
                elif inner.attr in methods and inner.attr not in visited:
                    worklist.append(inner.attr)
            elif isinstance(inner, ast.Call):
                target = inner.func
                callee = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr if isinstance(target, ast.Attribute) else ""
                )
                if callee == "asdict" and any(
                    isinstance(argument, ast.Name) and argument.id == self_name
                    for argument in inner.args
                ):
                    consumed.update(fields)
    return consumed


def check(context: LintContext) -> List[Diagnostic]:
    """Run R1 over every frozen keyed dataclass under ``src/repro``."""
    diagnostics: List[Diagnostic] = []
    for path in context.py_files("src/repro"):
        tree = context.tree(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None or not _is_frozen(decorator):
                continue
            methods = _methods(node)
            if "to_dict" not in methods:
                continue

            fields = _fields(node)
            consumed = _consumed_fields(node, fields)
            declared = _key_excluded(node)
            excluded, excluded_line = declared if declared else ([], node.lineno)

            for name, lineno in sorted(fields.items(), key=lambda kv: kv[1]):
                if name in consumed or name in excluded:
                    continue
                diagnostics.append(
                    Diagnostic(
                        "R1",
                        path,
                        lineno,
                        f"field {name!r} of {node.name} is not consumed by "
                        "to_dict()/content_key() and is not listed in "
                        "KEY_EXCLUDED",
                    )
                )
            for name in excluded:
                if name not in fields:
                    diagnostics.append(
                        Diagnostic(
                            "R1",
                            path,
                            excluded_line,
                            f"stale KEY_EXCLUDED entry {name!r} on {node.name}: "
                            "no such field",
                        )
                    )
                elif name in consumed:
                    diagnostics.append(
                        Diagnostic(
                            "R1",
                            path,
                            excluded_line,
                            f"stale KEY_EXCLUDED entry {name!r} on {node.name}: "
                            "the field is consumed by the key methods",
                        )
                    )
    return diagnostics
