"""R4 — golden-grid coverage of every registered prefetcher.

``tests/goldens/spatial-s3.json`` is the full-grid golden snapshot: the
golden test suite runs *every* registered prefetcher against the
``spatial-s3`` trace and compares bit-exact statistics.  A design that
is registered but absent from that snapshot is unpinned — its behaviour
can drift (or break under a new kernel tier) without any test noticing.

This rule diffs the live registry (``available_prefetchers()``) against
the snapshot's keys in both directions: registered-but-unpinned designs
and stale snapshot entries for names that no longer exist are both
violations.  Refresh protocol: ``REFRESH_GOLDENS=1 python -m pytest
tests/test_goldens.py``.
"""

from __future__ import annotations

import json
from typing import List

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintContext

_GRID_GOLDEN = "tests/goldens/spatial-s3.json"
_REGISTRY_PY = "src/repro/prefetchers/registry.py"


def _anchor_line(context: LintContext, name: str) -> int:
    """Best-effort line anchor for a prefetcher name in ``registry.py``."""
    if context.exists(_REGISTRY_PY):
        needle = f'"{name}"'
        for index, line in enumerate(context.lines(_REGISTRY_PY), start=1):
            if needle in line:
                return index
    return 1


def check(context: LintContext) -> List[Diagnostic]:
    """Run R4: registry names vs the full-grid golden snapshot."""
    from repro.prefetchers.registry import available_prefetchers

    diagnostics: List[Diagnostic] = []
    registered = set(available_prefetchers())

    if not context.exists(_GRID_GOLDEN):
        diagnostics.append(
            Diagnostic(
                "R4", _GRID_GOLDEN, 1,
                "full-grid golden snapshot not found; every registered "
                "prefetcher must be pinned by the golden grid",
            )
        )
        return diagnostics

    try:
        snapshot = json.loads(context.text(_GRID_GOLDEN))
    except json.JSONDecodeError as error:
        diagnostics.append(
            Diagnostic("R4", _GRID_GOLDEN, 1, f"unparseable golden snapshot: {error}")
        )
        return diagnostics
    pinned = set(snapshot)

    for name in sorted(registered - pinned):
        diagnostics.append(
            Diagnostic(
                "R4", _GRID_GOLDEN, _anchor_line(context, name),
                f"registered prefetcher {name!r} has no golden-grid entry; "
                "run REFRESH_GOLDENS=1 python -m pytest tests/test_goldens.py",
            )
        )
    for name in sorted(pinned - registered):
        diagnostics.append(
            Diagnostic(
                "R4", _GRID_GOLDEN, 1,
                f"stale golden-grid entry {name!r}: no such registered "
                "prefetcher",
            )
        )
    return diagnostics
