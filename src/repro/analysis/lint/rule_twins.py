"""R2 — twin-constant drift between ``_kernels.c`` and its Python oracles.

The C kernels are bit-exact *twins* of Python reference implementations.
Most geometry and thresholds are computed in Python and passed in at
construction time (those cannot drift), but a handful of constants are
spelled on both sides and only reviewer memory kept them equal.  This
rule extracts each mirrored constant from both languages (regex on the C
source, AST on the Python source) and fails on any mismatch:

- ``ptype`` codes: ``driver.PF_*`` vs the C ``DRV_PF_*`` enum
- cache-block flag bits: ``driver._F_*`` vs the C ``CB_*`` defines
- the LRU stamp ceiling: ``arrays.DEFAULT_STAMP_LIMIT`` vs ``STAMP_LIMIT``
- the Berti PC hash mask (``pc & 0xFFFF``) on both sides
- the block shift: every literal ``address >> s`` in C vs ``BLOCK_SIZE``
- Berti threshold-table length: the C ``!= 64`` check vs the
  ``[...] * 64`` table builders in ``arrays.py``
- geometry caps (history/deltas/blocks/degree <= 64): the C ``_init``
  guards vs the fallback gates in ``compiled.py``
- keyword-argument lists: each C ``kwlist`` vs the keyword names used at
  the Python construction sites (``compiled.py`` / ``sim/driver.py``)

A missing anchor (file, pattern or call site) is itself a diagnostic:
if a refactor moves one of these constants, the rule must be told, not
silently stop checking.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintContext

_KERNELS_C = "src/repro/_kernels.c"
_DRIVER_PY = "src/repro/sim/driver.py"
_ARRAYS_PY = "src/repro/prefetchers/arrays.py"
_TYPES_PY = "src/repro/sim/types.py"
_COMPILED_PY = "src/repro/prefetchers/compiled.py"

#: C ``_init`` function marker -> extension type name at Python call sites.
_KERNEL_INITS = (
    ("Berti_init", "BertiKernel"),
    ("Gaze_init", "GazeKernel"),
    ("PMP_init", "PMPKernel"),
    ("Triangel_init", "TriangelKernel"),
    ("Driver_init", "DriverKernel"),
)

#: C geometry-cap regex -> the gate attribute names in ``compiled.py``.
_GEOMETRY_CAPS = (
    (r"self->hist_cap > (\d+)", ("history_per_pc",)),
    (r"self->max_deltas > (\d+)", ("max_deltas_per_pc",)),
    (r"self->blocks > (\d+)", ("blocks_per_region", "blocks")),
    (r"self->degree > (\d+)", ("degree",)),
)


def _line_of(text: str, position: int) -> int:
    return text.count("\n", 0, position) + 1


def _const_int(node: ast.expr) -> Optional[int]:
    """Evaluate a small constant integer expression (``1 << 60`` etc.)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.BinOp):
        left, right = _const_int(node.left), _const_int(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.LShift):
            return left << right
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
    return None


def _module_int_constants(tree: ast.Module, prefix: str) -> Dict[str, Tuple[int, int]]:
    """Module-level ``NAME = <int>`` assignments matching a name prefix."""
    found: Dict[str, Tuple[int, int]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id.startswith(prefix):
                value = _const_int(node.value)
                if value is not None:
                    found[target.id] = (value, node.lineno)
    return found


def _require(
    context: LintContext, path: str, diagnostics: List[Diagnostic]
) -> bool:
    if context.exists(path):
        return True
    diagnostics.append(
        Diagnostic(
            "R2",
            _KERNELS_C,
            1,
            f"twin anchor file {path!r} is missing; update rule_twins.py "
            "if the constants moved",
        )
    )
    return False


def _anchor_failure(path: str, what: str) -> Diagnostic:
    return Diagnostic(
        "R2", path, 1,
        f"could not locate {what}; update rule_twins.py if it moved",
    )


def _check_enum_mirror(
    c_text: str,
    c_pattern: str,
    c_rename: str,
    py_constants: Dict[str, Tuple[int, int]],
    py_path: str,
    py_label: str,
    diagnostics: List[Diagnostic],
) -> None:
    """Diff ``NAME -> value`` maps extracted from C and Python."""
    c_values: Dict[str, Tuple[int, int]] = {}
    for match in re.finditer(c_pattern, c_text):
        c_values[c_rename + match.group(1)] = (
            int(match.group(2)),
            _line_of(c_text, match.start()),
        )
    if not c_values:
        diagnostics.append(_anchor_failure(_KERNELS_C, f"the {c_rename}* constants"))
        return
    if not py_constants:
        diagnostics.append(_anchor_failure(py_path, f"the {py_label}* constants"))
        return
    for name, (c_value, c_line) in sorted(c_values.items()):
        python = py_constants.get(name)
        if python is None:
            diagnostics.append(
                Diagnostic(
                    "R2", _KERNELS_C, c_line,
                    f"C constant {name} has no Python mirror in {py_path}",
                )
            )
        elif python[0] != c_value:
            diagnostics.append(
                Diagnostic(
                    "R2", _KERNELS_C, c_line,
                    f"twin drift: C {name} = {c_value} but {py_path} has "
                    f"{name} = {python[0]}",
                )
            )
    for name, (_value, line) in sorted(py_constants.items()):
        if name not in c_values:
            diagnostics.append(
                Diagnostic(
                    "R2", py_path, line,
                    f"Python constant {name} has no C mirror in {_KERNELS_C}",
                )
            )


def _gate_values(tree: ast.Module, attribute: str) -> Set[int]:
    """Constants N from every ``<x>.<attribute> > N`` comparison."""
    values: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], ast.Gt):
            continue
        left = node.left
        name = (
            left.attr if isinstance(left, ast.Attribute)
            else left.id if isinstance(left, ast.Name) else None
        )
        if name != attribute:
            continue
        value = _const_int(node.comparators[0])
        if value is not None:
            values.add(value)
    return values


def _c_kwlist(c_text: str, init_marker: str) -> Optional[Tuple[List[str], int]]:
    start = c_text.find(init_marker + "(")
    if start < 0:
        return None
    open_brace = c_text.find("kwlist[] = {", start)
    if open_brace < 0:
        return None
    close_brace = c_text.find("}", open_brace)
    if close_brace < 0:
        return None
    names = re.findall(r'"(\w+)"', c_text[open_brace:close_brace])
    return names, _line_of(c_text, open_brace)


def _python_call_sites(
    context: LintContext, class_name: str
) -> List[Tuple[str, int, Set[str], bool]]:
    """Every ``<x>.ClassName(...)`` call: path, line, kwargs, positional?"""
    sites: List[Tuple[str, int, Set[str], bool]] = []
    for path in (_COMPILED_PY, _DRIVER_PY):
        if not context.exists(path):
            continue
        for node in ast.walk(context.tree(path)):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name != class_name:
                continue
            keywords = {
                keyword.arg for keyword in node.keywords if keyword.arg is not None
            }
            sites.append((path, node.lineno, keywords, bool(node.args)))
    return sites


def check(context: LintContext) -> List[Diagnostic]:
    """Run R2: diff every mirrored constant between C and Python."""
    diagnostics: List[Diagnostic] = []
    if not context.exists(_KERNELS_C):
        # Pure-Python checkout (no extension source): nothing to mirror.
        return diagnostics
    c_text = context.text(_KERNELS_C)

    # --- ptype codes and cache-block flag bits (driver.py) ------------- #
    if _require(context, _DRIVER_PY, diagnostics):
        driver_tree = context.tree(_DRIVER_PY)
        _check_enum_mirror(
            c_text,
            r"DRV_(PF_\w+) = (\d+)",
            "",
            _module_int_constants(driver_tree, "PF_"),
            _DRIVER_PY,
            "PF_",
            diagnostics,
        )
        _check_enum_mirror(
            c_text,
            r"#define CB_(\w+) (\d+)u",
            "_F_",
            _module_int_constants(driver_tree, "_F_"),
            _DRIVER_PY,
            "_F_",
            diagnostics,
        )

    # --- stamp ceiling, PC mask, threshold tables (arrays.py) ---------- #
    if _require(context, _ARRAYS_PY, diagnostics):
        arrays_tree = context.tree(_ARRAYS_PY)
        arrays_text = context.text(_ARRAYS_PY)

        stamp = _module_int_constants(arrays_tree, "DEFAULT_STAMP_LIMIT").get(
            "DEFAULT_STAMP_LIMIT"
        )
        c_stamp = re.search(r"#define STAMP_LIMIT \(1LL << (\d+)\)", c_text)
        if stamp is None:
            diagnostics.append(_anchor_failure(_ARRAYS_PY, "DEFAULT_STAMP_LIMIT"))
        elif c_stamp is None:
            diagnostics.append(_anchor_failure(_KERNELS_C, "#define STAMP_LIMIT"))
        elif (1 << int(c_stamp.group(1))) != stamp[0]:
            diagnostics.append(
                Diagnostic(
                    "R2", _KERNELS_C, _line_of(c_text, c_stamp.start()),
                    f"twin drift: C STAMP_LIMIT is 1 << {c_stamp.group(1)} but "
                    f"arrays.DEFAULT_STAMP_LIMIT is {stamp[0]}",
                )
            )

        py_masks = {
            match.group(1).upper()
            for match in re.finditer(r"\bpc & (0x[0-9A-Fa-f]+)", arrays_text)
        }
        c_masks = {
            (match.group(1).upper(), _line_of(c_text, match.start()))
            for match in re.finditer(r"\bpc & (0x[0-9A-Fa-f]+)", c_text)
        }
        if not py_masks:
            diagnostics.append(_anchor_failure(_ARRAYS_PY, "the Berti PC mask (pc & 0x...)"))
        elif not c_masks:
            diagnostics.append(_anchor_failure(_KERNELS_C, "the Berti PC mask (pc & 0x...)"))
        else:
            for mask, line in sorted(c_masks):
                if mask not in py_masks:
                    diagnostics.append(
                        Diagnostic(
                            "R2", _KERNELS_C, line,
                            f"twin drift: C Berti PC mask {mask} has no match "
                            f"in {_ARRAYS_PY} (Python uses {sorted(py_masks)})",
                        )
                    )

        table_lengths: Dict[str, Tuple[int, int]] = {}
        for node in ast.walk(arrays_tree):
            if not isinstance(node, ast.Assign):
                continue
            named = {
                target.attr
                for target in node.targets
                if isinstance(target, ast.Attribute)
            }
            if not named & {"_l1_occ_thr", "_l2_occ_thr"}:
                continue
            if isinstance(node.value, ast.BinOp) and isinstance(node.value.op, ast.Mult):
                length = _const_int(node.value.right)
                if length is not None:
                    for name in named:
                        table_lengths[name] = (length, node.lineno)
        c_table = re.search(r"PySequence_Fast_GET_SIZE\(fast\) != (\d+)", c_text)
        if not table_lengths:
            diagnostics.append(
                _anchor_failure(_ARRAYS_PY, "the _l1/_l2_occ_thr table builders")
            )
        elif c_table is None:
            diagnostics.append(
                _anchor_failure(_KERNELS_C, "the threshold-table length check")
            )
        else:
            c_length = int(c_table.group(1))
            for name, (length, line) in sorted(table_lengths.items()):
                if length != c_length:
                    diagnostics.append(
                        Diagnostic(
                            "R2", _ARRAYS_PY, line,
                            f"twin drift: {name} is built with {length} entries "
                            f"but the C kernel requires {c_length}",
                        )
                    )

    # --- block shift vs BLOCK_SIZE (types.py) -------------------------- #
    if _require(context, _TYPES_PY, diagnostics):
        block_size = _module_int_constants(
            context.tree(_TYPES_PY), "BLOCK_SIZE"
        ).get("BLOCK_SIZE")
        if block_size is None:
            diagnostics.append(_anchor_failure(_TYPES_PY, "BLOCK_SIZE"))
        else:
            shifts = [
                (int(match.group(1)), _line_of(c_text, match.start()))
                for match in re.finditer(r"\baddress >> (\d+)", c_text)
            ]
            if not shifts:
                diagnostics.append(
                    _anchor_failure(_KERNELS_C, "the block shift (address >> s)")
                )
            for shift, line in shifts:
                if (1 << shift) != block_size[0]:
                    diagnostics.append(
                        Diagnostic(
                            "R2", _KERNELS_C, line,
                            f"twin drift: C shifts addresses by {shift} "
                            f"(block size {1 << shift}) but types.BLOCK_SIZE "
                            f"is {block_size[0]}",
                        )
                    )

    # --- geometry caps (compiled.py fallback gates) -------------------- #
    if _require(context, _COMPILED_PY, diagnostics):
        compiled_tree = context.tree(_COMPILED_PY)
        for c_pattern, gate_names in _GEOMETRY_CAPS:
            c_caps = [
                (int(match.group(1)), _line_of(c_text, match.start()))
                for match in re.finditer(c_pattern, c_text)
            ]
            if not c_caps:
                diagnostics.append(
                    _anchor_failure(_KERNELS_C, f"the cap guard /{c_pattern}/")
                )
                continue
            for gate in gate_names:
                gate_values = _gate_values(compiled_tree, gate)
                if not gate_values:
                    diagnostics.append(
                        _anchor_failure(_COMPILED_PY, f"a '{gate} > N' fallback gate")
                    )
                    continue
                for cap, line in c_caps:
                    if gate_values != {cap}:
                        diagnostics.append(
                            Diagnostic(
                                "R2", _KERNELS_C, line,
                                f"twin drift: C caps at {cap} but "
                                f"{_COMPILED_PY} gates {gate} at "
                                f"{sorted(gate_values)}",
                            )
                        )

    # --- kwlists vs Python construction sites -------------------------- #
    for init_marker, class_name in _KERNEL_INITS:
        parsed = _c_kwlist(c_text, init_marker)
        if parsed is None:
            diagnostics.append(
                _anchor_failure(_KERNELS_C, f"the {init_marker} kwlist")
            )
            continue
        c_names, c_line = parsed
        sites = _python_call_sites(context, class_name)
        if not sites:
            diagnostics.append(
                _anchor_failure(
                    _COMPILED_PY, f"a {class_name}(...) construction site"
                )
            )
            continue
        for path, line, keywords, has_positional in sites:
            if has_positional:
                diagnostics.append(
                    Diagnostic(
                        "R2", path, line,
                        f"{class_name}(...) uses positional arguments; keyword"
                        " arguments are required so kwlist drift is checkable",
                    )
                )
                continue
            if keywords != set(c_names):
                missing = sorted(set(c_names) - keywords)
                extra = sorted(keywords - set(c_names))
                detail = []
                if missing:
                    detail.append(f"missing {missing}")
                if extra:
                    detail.append(f"unknown {extra}")
                diagnostics.append(
                    Diagnostic(
                        "R2", path, line,
                        f"twin drift: {class_name}(...) keywords disagree with "
                        f"the C kwlist at {_KERNELS_C}:{c_line} "
                        f"({'; '.join(detail)})",
                    )
                )
    return diagnostics
