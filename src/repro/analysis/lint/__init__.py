"""``repro lint``: repo-specific invariant lint (rules R1-R6).

The rules encode cross-cutting invariants that ordinary linters cannot
see because they span files, languages and runtime registries:

========  ==========================================================
rule ID   invariant
========  ==========================================================
``R1``    job-key completeness: every field of a frozen, keyed
          dataclass is folded into ``to_dict``/``content_key`` or
          explicitly listed in ``KEY_EXCLUDED``
``R2``    twin-constant drift: constants mirrored between
          ``_kernels.c`` and the Python oracles stay equal
``R3``    hot-path hygiene: ``__slots__`` in hot modules,
          ``slots=True`` dataclasses, no module-level mutable state
          and no unseeded randomness in ``sim/``
``R4``    registry coverage: every registered prefetcher is pinned
          by the golden grid (``tests/goldens/spatial-s3.json``)
``R5``    decline reasons: every decline return in ``sim/driver.py``
          carries a non-empty reason string
``R6``    no silent failure in ``experiments/``: every exception
          handler re-raises, returns/records a structured failure,
          or carries an explicit waiver with a reason
========  ==========================================================

Any diagnostic can be silenced with an inline waiver comment on the
flagged line or the line directly above it::

    _TABLE = {...}  # repro-lint: waive R3
    /* repro-lint: waive R2 */   (C sources)

Use :func:`run_lint` programmatically or ``python -m repro lint`` from
the command line.
"""

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintContext, LintReport, RULES, run_lint

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintReport",
    "RULES",
    "run_lint",
]
