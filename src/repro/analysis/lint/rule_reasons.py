"""R5 — every decline path in ``sim/driver.py`` carries a reason.

The compiled driver's contract is *conservative with receipts*: when
``try_attach``/``_classify`` decline a configuration, the caller records
a human-readable ``kernel_decline_reason`` that surfaces in
``stats.extra``, engine rows and bench per-case tiers.  A decline branch
that returns ``None`` without a reason (or with an empty string) breaks
that contract silently — nothing crashes, the tier just becomes
undiagnosable.

Statically: every ``return`` of a tuple whose first element is the
literal ``None`` is a decline, and its *last* element is the reason
slot.  The reason must not be ``None``, an empty string, or any other
non-string literal; dynamic expressions (names, calls, f-strings) are
trusted — their sources are themselves decline returns this rule checks.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintContext

_DRIVER_PY = "src/repro/sim/driver.py"


def _reason_problem(node: ast.expr) -> str:
    """Why this reason expression is unacceptable ('' when fine)."""
    if isinstance(node, ast.Constant):
        if node.value is None:
            return "the reason slot is None"
        if node.value == "":
            return "the reason slot is an empty string"
        if not isinstance(node.value, str):
            return f"the reason slot is a non-string literal ({node.value!r})"
        return ""
    if isinstance(node, ast.JoinedStr):
        if not node.values:
            return "the reason slot is an empty f-string"
        return ""
    # Names, attributes, calls, concatenations: trusted dynamic reasons.
    return ""


def check(context: LintContext) -> List[Diagnostic]:
    """Run R5 over the decline returns of ``sim/driver.py``."""
    diagnostics: List[Diagnostic] = []
    if not context.exists(_DRIVER_PY):
        return diagnostics
    for node in ast.walk(context.tree(_DRIVER_PY)):
        if not isinstance(node, ast.Return):
            continue
        value = node.value
        if not isinstance(value, ast.Tuple) or len(value.elts) < 2:
            continue
        first = value.elts[0]
        if not (isinstance(first, ast.Constant) and first.value is None):
            continue
        problem = _reason_problem(value.elts[-1])
        if problem:
            diagnostics.append(
                Diagnostic(
                    "R5", _DRIVER_PY, node.lineno,
                    f"decline return without a recorded reason: {problem} "
                    "(every decline must explain itself — it surfaces as "
                    "kernel_decline_reason)",
                )
            )
    return diagnostics
