"""Diagnostics and the inline waiver syntax shared by every lint rule."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence

#: Matches ``repro-lint: waive R1`` / ``repro-lint: waive R2, R3`` /
#: ``repro-lint: waive all`` inside any comment style (``#``, ``/* */``,
#: ``//``) — the rule list is whatever ``R<n>`` tokens (or ``all``)
#: follow the marker on that line.
_WAIVER_MARKER = re.compile(r"repro-lint:\s*waive\b(?P<rules>[^\n]*)", re.IGNORECASE)
_WAIVER_TOKEN = re.compile(r"\b(R\d+|all)\b", re.IGNORECASE)


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding: rule ID, repo-relative location and message."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        """The canonical ``path:line: RULE: message`` rendering."""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def waived_rules(line_text: str) -> Optional[FrozenSet[str]]:
    """The rule IDs waived by an inline comment on ``line_text``.

    Returns ``None`` when the line carries no waiver marker; otherwise a
    frozenset of upper-cased rule IDs (``{"all"}`` waives everything).
    A marker with no parseable rule tokens waives nothing — a loud
    no-op is safer than an accidental blanket waiver.
    """
    marker = _WAIVER_MARKER.search(line_text)
    if marker is None:
        return None
    tokens = _WAIVER_TOKEN.findall(marker.group("rules"))
    return frozenset(token.lower() if token.lower() == "all" else token.upper()
                     for token in tokens)


def is_waived(diagnostic: Diagnostic, lines: Sequence[str]) -> bool:
    """Whether ``diagnostic`` is silenced by a waiver comment.

    A waiver counts when it sits on the flagged line itself or on the
    line immediately above (``lines`` is the flagged file's content;
    diagnostics use 1-based line numbers).
    """
    for lineno in (diagnostic.line, diagnostic.line - 1):
        if 1 <= lineno <= len(lines):
            waived = waived_rules(lines[lineno - 1])
            if waived is not None and (diagnostic.rule in waived or "all" in waived):
                return True
    return False
