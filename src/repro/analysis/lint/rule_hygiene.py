"""R3 — hot-path hygiene in ``sim/`` and ``prefetchers/``.

Four sub-checks, all motivated by the kernel work of PRs 3-8:

- **Slots in hot modules.**  The modules whose instances are created or
  touched per simulated access (caches, core model, batch kernel,
  driver glue, array tables, the shared spatial front end) must keep
  every self-contained class slotted: an accidental ``__dict__`` on a
  per-access type is an easy 2x memory/miss regression.  Classes whose
  bases live outside the module (ABCs, Enums, the dict-based
  ``Prefetcher`` hierarchy) are exempt — their layout is dictated by
  the base class.
- **Dataclass slots.**  Every ``@dataclass`` anywhere under ``sim/`` or
  ``prefetchers/`` must pass ``slots=True`` (table entries are created
  in the millions; there is no reason for any of them to carry a dict).
- **No module-level mutable state in ``sim/``.**  Simulator results
  must be a pure function of the job; a module-level dict/list/set is
  cross-job state by construction.  Lookup *tables* that are
  initialised once and never mutated can carry an explicit
  ``repro-lint: waive R3`` comment.
- **No unseeded randomness in ``sim/``.**  Module-level ``random.*``
  functions (and zero-argument ``random.Random()``) draw from global
  process state and break run-to-run determinism; simulator code must
  thread an explicitly seeded ``random.Random(seed)``.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintContext
from repro.analysis.lint.rule_keys import _dataclass_decorator

#: Modules where every self-contained class must be slotted.
HOT_MODULES = frozenset(
    {
        "src/repro/sim/batch.py",
        "src/repro/sim/cache.py",
        "src/repro/sim/cpu.py",
        "src/repro/sim/dram.py",
        "src/repro/sim/driver.py",
        "src/repro/sim/hierarchy.py",
        "src/repro/sim/prefetch_queue.py",
        "src/repro/sim/sharding.py",
        "src/repro/sim/stats.py",
        "src/repro/sim/types.py",
        "src/repro/prefetchers/arrays.py",
        "src/repro/prefetchers/tables.py",
        "src/repro/prefetchers/spatial_common.py",
    }
)

#: Builtin constructors whose module-level call creates mutable state.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

#: ``random``-module functions that draw from the unseeded global RNG.
_RANDOM_OK = frozenset({"Random", "SystemRandom"})


def _has_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            if any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in statement.targets
            ):
                return True
        elif isinstance(statement, ast.AnnAssign):
            target = statement.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_slots(node: ast.ClassDef) -> Optional[bool]:
    """None if not a dataclass, else whether it passes ``slots=True``."""
    decorator = _dataclass_decorator(node)
    if decorator is None:
        return None
    if isinstance(decorator, ast.Call):
        for keyword in decorator.keywords:
            if keyword.arg == "slots":
                return (
                    isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                )
    return False


def _self_contained(node: ast.ClassDef, local_classes: Set[str]) -> bool:
    """Whether every base of the class is local (or ``object``)."""
    for base in node.bases:
        if isinstance(base, ast.Name) and (
            base.id == "object" or base.id in local_classes
        ):
            continue
        return False
    return True


def _check_slots(context: LintContext, path: str, out: List[Diagnostic]) -> None:
    tree = context.tree(path)
    local_classes = {
        node.name for node in ast.walk(tree) if isinstance(node, ast.ClassDef)
    }
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _self_contained(node, local_classes):
            continue
        slots = _dataclass_slots(node)
        if slots is None:
            if not _has_slots(node):
                out.append(
                    Diagnostic(
                        "R3", path, node.lineno,
                        f"class {node.name} lives in a hot module and must "
                        "define __slots__",
                    )
                )
        # slots=True dataclasses are handled by the dataclass sub-check
        # (which also covers non-hot modules), so nothing more here.


def _check_dataclasses(
    context: LintContext, path: str, out: List[Diagnostic]
) -> None:
    for node in ast.walk(context.tree(path)):
        if isinstance(node, ast.ClassDef) and _dataclass_slots(node) is False:
            out.append(
                Diagnostic(
                    "R3", path, node.lineno,
                    f"dataclass {node.name} must pass slots=True "
                    "(per-entry types must not carry an instance dict)",
                )
            )


def _check_module_state(
    context: LintContext, path: str, out: List[Diagnostic]
) -> None:
    for node in context.tree(path).body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        names = [
            target.id for target in targets if isinstance(target, ast.Name)
        ]
        if not names or all(
            name.startswith("__") and name.endswith("__") for name in names
        ):
            continue
        mutable = isinstance(
            value,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        )
        if isinstance(value, ast.Call):
            func = value.func
            callee = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else ""
            )
            mutable = mutable or callee in _MUTABLE_CALLS
        if mutable:
            out.append(
                Diagnostic(
                    "R3", path, node.lineno,
                    f"module-level mutable state {names[0]!r} in sim/ "
                    "(simulation results must be a pure function of the "
                    "job; waive only for init-once lookup tables)",
                )
            )


def _check_randomness(
    context: LintContext, path: str, out: List[Diagnostic]
) -> None:
    tree = context.tree(path)
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            imported = ", ".join(alias.name for alias in node.names)
            out.append(
                Diagnostic(
                    "R3", path, node.lineno,
                    f"'from random import {imported}' in sim/: thread an "
                    "explicitly seeded random.Random(seed) instead",
                )
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                if func.attr not in _RANDOM_OK:
                    out.append(
                        Diagnostic(
                            "R3", path, node.lineno,
                            f"unseeded randomness: random.{func.attr}() draws "
                            "from global RNG state; use a seeded "
                            "random.Random(seed)",
                        )
                    )
                elif func.attr == "Random" and not node.args and not node.keywords:
                    out.append(
                        Diagnostic(
                            "R3", path, node.lineno,
                            "unseeded randomness: random.Random() without a "
                            "seed argument",
                        )
                    )


def check(context: LintContext) -> List[Diagnostic]:
    """Run R3 over ``sim/`` and ``prefetchers/``."""
    diagnostics: List[Diagnostic] = []
    sim_files = context.py_files("src/repro/sim")
    prefetcher_files = context.py_files("src/repro/prefetchers")

    for path in sim_files + prefetcher_files:
        if path in HOT_MODULES:
            _check_slots(context, path, diagnostics)
        _check_dataclasses(context, path, diagnostics)
    for path in sim_files:
        _check_module_state(context, path, diagnostics)
        _check_randomness(context, path, diagnostics)
    return diagnostics
