"""R6 — no bare/silent ``except`` handlers in ``experiments/``.

The fault-tolerance layer's whole claim is that nothing fails *silently*:
a job that cannot complete becomes a structured
:class:`~repro.experiments.executors.JobFailure`, a corrupt cache entry
is quarantined and counted, a transient I/O error is retried or recorded.
A handler that swallows an exception without re-raising, returning a
failure, or at least recording what happened punches a hole in that
claim — the classic way a "fault-tolerant" system degrades into a
wrong-answers-quietly system.

Statically, a handler is flagged when either:

* it is a **bare** ``except:`` (or ``except BaseException``) containing
  no ``raise`` anywhere — it intercepts ``KeyboardInterrupt`` and
  ``SystemExit`` and drops them; or
* its body is **trivially silent**: nothing but ``pass``, ``continue``,
  ``break``, ``...`` or docstring-style constant expressions — the
  exception vanishes without a trace.

Handlers that re-raise, return/record something, or call into real logic
pass.  Intentional swallows (best-effort cleanup where the exception
really is meaningless) must carry an inline
``repro-lint: waive R6 — <reason>`` on the ``except`` line or the line
above, so the intent is reviewable instead of implicit.

Scope: ``src/repro/experiments/`` only — that is where the
fault-tolerance contract lives.  The simulator and workload layers
predate it and raise through naturally.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.lint.diagnostics import Diagnostic
from repro.analysis.lint.engine import LintContext

_EXPERIMENTS_DIR = "src/repro/experiments"


def _is_bare(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or the equivalent ``except BaseException``."""
    if handler.type is None:
        return True
    return isinstance(handler.type, ast.Name) and handler.type.id == "BaseException"


def _has_raise(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


def _is_trivially_silent(handler: ast.ExceptHandler) -> bool:
    """True when the body cannot possibly act on the exception."""
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


def check(context: LintContext) -> List[Diagnostic]:
    """Run R6 over every exception handler under ``experiments/``."""
    diagnostics: List[Diagnostic] = []
    for rel in context.py_files(_EXPERIMENTS_DIR):
        for node in ast.walk(context.tree(rel)):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_bare(node) and not _has_raise(node):
                diagnostics.append(
                    Diagnostic(
                        "R6", rel, node.lineno,
                        "bare except without a re-raise swallows "
                        "KeyboardInterrupt/SystemExit too — catch a "
                        "concrete exception type, or re-raise (waive with "
                        "a reason if the swallow is truly intended)",
                    )
                )
                continue
            if _is_trivially_silent(node) and not _has_raise(node):
                diagnostics.append(
                    Diagnostic(
                        "R6", rel, node.lineno,
                        "silent exception handler (body is only "
                        "pass/continue/break): re-raise, return a "
                        "JobFailure, or record the failure — or waive "
                        "with a reason if discarding it is intended",
                    )
                )
    return diagnostics
