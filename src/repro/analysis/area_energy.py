"""Area and access-energy proxy model (paper §III-E).

The paper uses CACTI 6.0 at 22 nm to estimate the area and read/write energy
of the *pattern history modules*: Gaze's PHT + DPCT against PMP's OPT + PPT,
and both against Berti's per-L1-line latency extension.  CACTI is not
available offline, so this module provides a first-order SRAM proxy:

* area scales with the number of bits plus a per-line peripheral overhead
  proportional to the number of lines;
* access energy scales with the number of bits read per access (the line
  width) plus a term for the tag match across the ways of the indexed set.

The proxy is calibrated so that the *ratios* the paper reports (Gaze ~29%
of PMP's area, <46% of PMP's access energy; Berti's L1-extension more than
10x the Gaze PHM) hold; the absolute values are indicative only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


#: Proxy constants (arbitrary-but-fixed units).  Small SRAM arrays are
#: dominated by per-column periphery (sense amplifiers, write drivers), so
#: the per-column term is the largest contributor -- this is what makes a
#: narrow-line table (Gaze's 64-bit pattern lines) much cheaper than a
#: wide-line one (PMP's 320-bit counter-vector lines), mirroring CACTI.
AREA_PER_BIT_UM2 = 0.30
AREA_PER_LINE_UM2 = 4.0
AREA_PER_COLUMN_UM2 = 60.0
ENERGY_PER_BIT_READ_PJ = 0.012
ENERGY_PER_WAY_COMPARE_PJ = 0.35


@dataclass(frozen=True)
class AreaEnergyEstimate:
    """Result of the SRAM proxy for one structure."""

    name: str
    lines: int
    bits_per_line: int
    ways: int

    @property
    def total_bits(self) -> int:
        """Total storage bits of the structure."""
        return self.lines * self.bits_per_line

    @property
    def area_mm2(self) -> float:
        """Estimated area in mm^2."""
        um2 = (
            self.total_bits * AREA_PER_BIT_UM2
            + self.lines * AREA_PER_LINE_UM2
            + self.bits_per_line * AREA_PER_COLUMN_UM2
        )
        return um2 / 1e6

    @property
    def access_energy_pj(self) -> float:
        """Estimated per-access (read) energy in pJ."""
        return (
            self.bits_per_line * ENERGY_PER_BIT_READ_PJ
            + self.ways * ENERGY_PER_WAY_COMPARE_PJ
        )


def estimate_pattern_module_cost(design: str) -> Dict[str, AreaEnergyEstimate]:
    """Estimate the pattern-history-module structures of a design.

    Supported designs: ``"gaze"`` (PHT + DPCT), ``"pmp"`` (OPT + PPT) and
    ``"berti"`` (the 12-bit-per-L1-line latency extension over a 48 KB L1D).
    """
    design = design.lower()
    if design == "gaze":
        return {
            "PHT": AreaEnergyEstimate(name="PHT", lines=256, bits_per_line=6 + 2 + 64, ways=4),
            "DPCT": AreaEnergyEstimate(name="DPCT", lines=8, bits_per_line=12 + 3, ways=8),
        }
    if design == "pmp":
        # PMP lines store counter vectors: 64 x 5b = 320b (OPT) and a coarse
        # 160b counter vector (PPT).
        return {
            "OPT": AreaEnergyEstimate(name="OPT", lines=64, bits_per_line=320, ways=1),
            "PPT": AreaEnergyEstimate(name="PPT", lines=32, bits_per_line=160, ways=1),
        }
    if design in ("berti", "vberti"):
        # Berti widens every L1D line (plus MSHRs and PQ entries) by 12 bits
        # to record fetch latencies.  The incremental cost is charged against
        # the widened L1D rows: every L1 access now reads/writes the extra
        # bits, so the per-access structure is the full widened data row.
        l1_lines = 48 * 1024 // 64
        return {
            "L1-extension": AreaEnergyEstimate(
                name="L1-extension", lines=l1_lines, bits_per_line=512 + 12, ways=12
            ),
        }
    raise ValueError(f"unknown design {design!r}")


def _total_area(estimates: Dict[str, AreaEnergyEstimate]) -> float:
    return sum(e.area_mm2 for e in estimates.values())


def _max_access_energy(estimates: Dict[str, AreaEnergyEstimate]) -> float:
    return max(e.access_energy_pj for e in estimates.values())


def gaze_vs_pmp_comparison() -> Dict[str, float]:
    """Reproduce the §III-E comparison: area/energy ratios of Gaze vs PMP/Berti."""
    gaze = estimate_pattern_module_cost("gaze")
    pmp = estimate_pattern_module_cost("pmp")
    berti = estimate_pattern_module_cost("berti")
    gaze_area = _total_area(gaze)
    pmp_area = _total_area(pmp)
    berti_area = _total_area(berti)
    return {
        "gaze_area_mm2": gaze_area,
        "pmp_area_mm2": pmp_area,
        "berti_area_mm2": berti_area,
        "gaze_over_pmp_area": gaze_area / pmp_area,
        "gaze_over_pmp_energy": _max_access_energy(gaze) / _max_access_energy(pmp),
        "berti_over_gaze_area": berti_area / gaze_area,
    }
