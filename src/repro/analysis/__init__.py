"""Hardware-cost analysis: storage, area and energy accounting.

Reproduces Table I (Gaze's storage breakdown), Table IV (baseline
configurations and storage overheads) and the CACTI-based area/energy
comparison of §III-E.
"""

from repro.analysis.storage import (
    GAZE_STORAGE_BREAKDOWN,
    baseline_storage_table,
    gaze_storage_breakdown,
    prefetcher_storage_kib,
)
from repro.analysis.area_energy import (
    AreaEnergyEstimate,
    estimate_pattern_module_cost,
    gaze_vs_pmp_comparison,
)

__all__ = [
    "AreaEnergyEstimate",
    "GAZE_STORAGE_BREAKDOWN",
    "baseline_storage_table",
    "estimate_pattern_module_cost",
    "gaze_storage_breakdown",
    "gaze_vs_pmp_comparison",
    "prefetcher_storage_kib",
]
