"""repro: reproduction of the Gaze spatial prefetcher (HPCA 2025).

The package is organised as:

* :mod:`repro.core` -- the Gaze prefetcher (the paper's contribution) and
  its ablation variants;
* :mod:`repro.prefetchers` -- the seven state-of-the-art baselines the paper
  compares against, plus a registry;
* :mod:`repro.sim` -- the trace-driven cache-hierarchy/CPU simulator
  substrate (the ChampSim stand-in);
* :mod:`repro.workloads` -- synthetic trace generators and benchmark suites
  standing in for the SPEC/Ligra/PARSEC/CloudSuite/GAP/QMM traces;
* :mod:`repro.experiments` -- the harness that regenerates every table and
  figure of the evaluation section;
* :mod:`repro.analysis` -- storage / area / energy accounting (Tables I, IV).

Quickstart::

    from repro import GazePrefetcher, simulate_trace
    from repro.workloads import make_trace

    trace = make_trace("spatial", seed=1)
    baseline = simulate_trace(trace, prefetcher=None)
    gaze = simulate_trace(trace, prefetcher=GazePrefetcher())
    print("speedup:", gaze.speedup(baseline))
"""

from repro.core.gaze import GazeConfig, GazePrefetcher
from repro.prefetchers import available_prefetchers, create_prefetcher
from repro.sim import (
    SimulationStats,
    SystemConfig,
    default_system_config,
    simulate_mix,
    simulate_trace,
)

__version__ = "1.0.0"

__all__ = [
    "GazeConfig",
    "GazePrefetcher",
    "SimulationStats",
    "SystemConfig",
    "available_prefetchers",
    "create_prefetcher",
    "default_system_config",
    "simulate_mix",
    "simulate_trace",
    "__version__",
]
