"""Compiled batched driver: glue between the simulator and ``DriverKernel``.

When the optional C extension :mod:`repro._kernels` is built, the whole
batched driver loop — cache probes, hit-run retirement, MSHR/DRAM/core
timing, prefetch-queue drain and in-process prefetcher training — can run
inside the extension's ``DriverKernel`` instead of
:meth:`~repro.sim.simulator.SingleCoreSimulator._execute_batched`.  This
module decides *whether* the C driver may engage for a given simulator
(every shape/listener/quiescence condition the Python driver's fast paths
rely on must hold), ships the live Python state into the kernel at attach
time, keeps the Python-visible core/statistics state in sync after every
batch call, and exports the hierarchy state back at detach so everything
downstream (``flush_prefetches``, ``finalize``, goldens, state
introspection) observes exactly what the Python driver would have left
behind.

Engagement is strictly opt-in (``kernel="compiled"``) and strictly
conservative: :meth:`CompiledDriver.try_attach` declines — with a
human-readable reason recorded as ``kernel_decline_reason`` — whenever the
configuration is one the C port does not replicate bit-exactly, and the
caller falls back to the Python driver.  The supported matrix:

===================  ==========================================
prefetcher           C driver path
===================  ==========================================
``none``             fused demand loop (no PQ/train machinery)
vBerti (compiled)    per-access loop + ``BertiKernel`` train
Gaze (compiled)      per-access loop + ``GazeKernel`` train/evict
PMP (compiled)       per-access loop + ``PMPKernel`` train/evict
Triangel (compiled)  per-access loop + ``TriangelKernel`` train
                     (the L1-hit training gate applied natively)
anything else        declined -> Python driver (bit-identical)
===================  ==========================================
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.cache import Cache, CacheBlock, MSHREntry
from repro.sim.dram import DRAMModel
from repro.sim.types import PrefetchHint, PrefetchRequest

try:  # pragma: no cover - exercised only when the extension is built
    from repro import _kernels
except ImportError:  # plain source checkouts: Python driver only
    _kernels = None

#: ``ptype`` codes understood by ``DriverKernel`` (must match _kernels.c).
PF_NONE = 0
PF_BERTI = 1
PF_GAZE = 2
PF_PMP = 3
PF_TRIANGEL = 4

#: Cache-block flag bits used by ``load_cache``/``export_cache``.
_F_PREFETCHED = 1
_F_USEFUL = 2
_F_FROM_DRAM = 4
_F_DIRTY = 8
_F_COUNTED = 16


def driver_available() -> bool:
    """Whether the extension exposes the batched ``DriverKernel``."""
    return _kernels is not None and hasattr(_kernels, "DriverKernel")


def _classify(prefetcher) -> Tuple[Optional[int], object, Optional[str]]:
    """Map ``prefetcher`` to a ``(ptype, train_kernel, decline_reason)``.

    Only the *compiled twin* classes qualify: they already own the C train
    kernel the driver calls in-process, and their construction enforced
    the geometry limits (<= 64-entry masks/FIFOs).  A plain Python
    prefetcher under ``kernel="compiled"`` means :func:`resolve_kernel`
    could not produce a twin (unsupported design or geometry), so the
    driver declines and the Python driver runs it.
    """
    if prefetcher is None:
        return PF_NONE, None, None
    from repro.prefetchers.compiled import (
        CompiledBertiPrefetcher,
        CompiledGazePrefetcher,
        CompiledPMPPrefetcher,
        CompiledTriangelPrefetcher,
    )

    ptype = {
        CompiledBertiPrefetcher: PF_BERTI,
        CompiledGazePrefetcher: PF_GAZE,
        CompiledPMPPrefetcher: PF_PMP,
        CompiledTriangelPrefetcher: PF_TRIANGEL,
    }.get(type(prefetcher))
    if ptype is None:
        return None, None, (
            f"prefetcher {getattr(prefetcher, 'name', type(prefetcher).__name__)!r}"
            " has no compiled twin"
        )
    if ptype in (PF_BERTI, PF_TRIANGEL):
        # The driver never forwards L1 evictions to these designs; that is
        # only correct while their eviction hook is the base-class no-op.
        from repro.prefetchers.base import Prefetcher

        if type(prefetcher).on_cache_eviction is not Prefetcher.on_cache_eviction:
            return None, None, "prefetcher overrides on_cache_eviction"
    return ptype, getattr(prefetcher, "_kernel", None), None


def _cache_items(cache: Cache):
    """Flatten a cache into ``(block, flags)`` rows, per-set LRU->MRU."""
    items = []
    append = items.append
    for cache_set in cache._sets:
        for block, entry in cache_set.items():
            flags = 0
            if entry.prefetched:
                flags |= _F_PREFETCHED
            if entry.prefetch_useful:
                flags |= _F_USEFUL
            if entry.from_dram:
                flags |= _F_FROM_DRAM
            if entry.dirty:
                flags |= _F_DIRTY
            if entry.useful_counted:
                flags |= _F_COUNTED
            append((block, flags))
    return items


class CompiledDriver:
    """One attached ``DriverKernel`` driving one simulator's batched runs."""

    __slots__ = ("_kernel", "_sim", "_ptype")

    def __init__(self, kernel, sim, ptype: int) -> None:
        self._kernel = kernel
        self._sim = sim
        self._ptype = ptype

    # ------------------------------------------------------------------ #
    # Attach
    # ------------------------------------------------------------------ #
    @staticmethod
    def try_attach(sim) -> Tuple[Optional["CompiledDriver"], Optional[str]]:
        """Build an attached driver for ``sim``, or ``(None, reason)``.

        The checks mirror the preconditions of the Python driver's inline
        fast paths (``inline_ok``/``fused``/``dram_plain``) plus the
        quiescence the C state transfer requires; any mismatch falls back
        to the Python driver, which handles every configuration.
        """
        if not driver_available():
            return None, "repro._kernels extension (DriverKernel) not built"
        ptype, train_kernel, reason = _classify(sim.prefetcher)
        if ptype is None:
            return None, reason

        hierarchy = sim.hierarchy
        l1d = hierarchy.l1d
        l2c = hierarchy.l2c
        llc = hierarchy.llc
        dram = hierarchy.dram
        if type(l1d) is not Cache or type(l2c) is not Cache or type(llc) is not Cache:
            return None, "non-plain cache object in hierarchy"
        if l1d._set_mask is None or l2c._set_mask is None or llc._set_mask is None:
            return None, "non-power-of-two cache set count"
        if type(dram) is not DRAMModel:
            return None, "non-plain DRAM model"

        expected_l1 = [hierarchy._count_useless_eviction]
        if sim.prefetcher is not None:
            expected_l1.append(sim._notify_prefetcher_eviction)
        if l1d.eviction_listeners != expected_l1:
            return None, "custom L1D eviction listeners"
        if l2c.eviction_listeners != [hierarchy._count_useless_eviction]:
            return None, "custom L2C eviction listeners"
        if llc.eviction_listeners:
            return None, "LLC has eviction listeners"

        mshr = hierarchy.l1_mshr
        pq = hierarchy.prefetch_queue
        if mshr._entries or pq.pending:
            return None, "hierarchy not quiescent (in-flight prefetches)"

        core = sim.core
        kernel = _kernels.DriverKernel(
            l1_sets=l1d._set_count,
            l1_ways=l1d._ways,
            l2_sets=l2c._set_count,
            l2_ways=l2c._ways,
            llc_sets=llc._set_count,
            llc_ways=llc._ways,
            lat_l1=hierarchy._lat_l1,
            lat_l2=hierarchy._lat_l2,
            lat_llc=hierarchy._lat_llc,
            lat_l2_source=hierarchy._lat_l2_source,
            lat_llc_source=hierarchy._lat_llc_source,
            mshr_capacity=mshr.capacity,
            pq_capacity=pq.capacity,
            pq_drain=pq.drain_per_access,
            dram_channels=dram._channels,
            dram_banks=dram._banks_per_channel,
            dram_row_div=dram._row_divisor,
            dram_row_hit=dram._row_hit_latency,
            dram_row_miss=dram._row_miss_latency,
            dram_transfer=float(dram._transfer_cycles),
            width=core._width,
            fetch_increment=core._fetch_increment,
            rob=core._rob_size,
            lq=core._load_queue_size,
            miss_limit=core._miss_limit,
            miss_threshold=core._miss_threshold,
            ptype=ptype,
            kernel=train_kernel,
        )
        kernel.load_cache(1, _cache_items(l1d))
        kernel.load_cache(2, _cache_items(l2c))
        kernel.load_cache(3, _cache_items(llc))
        try:
            issue = core._issue_cycle
        except AttributeError:
            issue = core._fetch_cycle
        kernel.load_core(
            core._instr_count,
            core._fetch_cycle,
            core._last_retire_cycle,
            issue,
            list(core._outstanding),
            list(core._outstanding_misses),
        )
        kernel.load_dram(
            list(dram._open_row.items()),
            list(dram._bank_busy_until.items()),
            list(dram._channel_busy_until),
        )
        return CompiledDriver(kernel, sim, ptype), None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run_batch(self, replayer, instruction_budget: Optional[int]) -> None:
        """Run one ``_execute_batched`` call's worth of trace in C.

        ``replayer._batched`` holds the :class:`~repro.sim.batch.BatchedTrace`
        (a whole trace or one streamed chunk); position/replay bookkeeping
        round-trips through the kernel so chunked resume, warmup cuts and
        budget cuts behave exactly like the Python driver.  Core progress
        and statistics sync back *every* call: the simulator reads
        ``core._instr_count`` between chunks and swaps the stats object at
        the warmup boundary.
        """
        trace = replayer._batched
        budget = -1 if instruction_budget is None else instruction_budget
        index, replays, _executed, yielded = self._kernel.run(
            trace.addresses,
            trace.pcs,
            trace.blocks,
            trace.gaps,
            trace.kinds,
            replayer._index,
            budget,
            replayer.replays,
        )
        replayer._index = index
        replayer.replays = replays
        if yielded:
            replayer.yielded_any = True
        self._sync_core_out()
        self._drain_stats()

    def _sync_core_out(self) -> None:
        """Write the kernel's core-model state onto the live Python core."""
        instr, fetch, last_retire, issue, pairs, misses = self._kernel.export_core()
        core = self._sim.core
        core._instr_count = instr
        core._fetch_cycle = fetch
        core._last_retire_cycle = last_retire
        core._issue_position = instr
        core._issue_cycle = issue
        outstanding = core._outstanding
        outstanding.clear()
        outstanding.extend(pairs)
        core._outstanding_misses = misses

    def _drain_stats(self) -> None:
        """Add the kernel's counter deltas onto the live statistics objects.

        ``hierarchy.stats`` is fetched *at call time* (never cached): the
        warmup boundary swaps it for a fresh object, and the eviction
        accounting must land in whichever object is current.
        """
        v = self._kernel.drain_stats()
        sim = self._sim
        hierarchy = sim.hierarchy
        stats = hierarchy.stats
        stats.demand_accesses += v[0]
        stats.l1_hits += v[1]
        stats.l1_misses += v[2]
        stats.l2_hits += v[3]
        stats.l2_misses += v[4]
        stats.llc_hits += v[5]
        stats.llc_misses += v[6]
        stats.dram_reads += v[7]
        stats.total_demand_latency += v[8]
        prefetch = stats.prefetch
        prefetch.generated += v[9]
        prefetch.issued += v[10]
        prefetch.dropped_queue_full += v[11]
        prefetch.dropped_mshr_full += v[12]
        prefetch.redundant += v[13]
        prefetch.filled_l1 += v[14]
        prefetch.filled_l2 += v[15]
        prefetch.useful_l1 += v[16]
        prefetch.useful_l2 += v[17]
        prefetch.useless += v[18]
        prefetch.late += v[19]
        prefetch.covered_llc_misses += v[20]
        pq = hierarchy.prefetch_queue
        pq.enqueued += v[21]
        pq.dropped_full += v[22]
        for cache, base in (
            (hierarchy.l1d, 23),
            (hierarchy.l2c, 27),
            (hierarchy.llc, 31),
        ):
            cache.hits += v[base]
            cache.misses += v[base + 1]
            cache.evictions += v[base + 2]
            cache.useless_prefetch_evictions += v[base + 3]
        dram_stats = hierarchy.dram.stats
        dram_stats.requests += v[35]
        dram_stats.demand_requests += v[36]
        dram_stats.prefetch_requests += v[37]
        dram_stats.row_hits += v[38]
        dram_stats.row_misses += v[39]
        dram_stats.total_queue_wait += v[40]
        dram_stats.total_service_cycles += v[41]

    # ------------------------------------------------------------------ #
    # Detach
    # ------------------------------------------------------------------ #
    def detach(self) -> None:
        """Export every piece of hierarchy state back onto the live objects.

        After this returns, the simulator is indistinguishable from one
        that ran the Python driver: ``flush_prefetches`` drains the same
        queue entries into the same MSHR/caches, ``finalize`` sees the same
        core state, and state-introspection tests read identical caches.
        """
        self._sync_core_out()
        self._drain_stats()
        kernel = self._kernel
        hierarchy = self._sim.hierarchy

        for level, cache in ((1, hierarchy.l1d), (2, hierarchy.l2c), (3, hierarchy.llc)):
            sets = cache._sets
            for cache_set in sets:
                cache_set.clear()
            mask = cache._set_mask
            for block, flags in kernel.export_cache(level):
                entry = CacheBlock(
                    block,
                    bool(flags & _F_PREFETCHED),
                    bool(flags & _F_USEFUL),
                    bool(flags & _F_FROM_DRAM),
                    bool(flags & _F_DIRTY),
                )
                entry.useful_counted = bool(flags & _F_COUNTED)
                sets[block & mask][block] = entry

        mshr = hierarchy.l1_mshr
        entries, min_ready = kernel.export_mshr()
        mshr._entries.clear()
        for block, ready, from_dram in entries:
            mshr._entries[block] = MSHREntry(block, ready, True, 1, bool(from_dram))
        mshr._min_ready = float("inf") if min_ready is None else min_ready

        pq = hierarchy.prefetch_queue
        packed, issue = kernel.export_pq()
        if packed:
            queue = pq._queue
            convert_cycle = int(issue)
            hint_l1 = PrefetchHint.L1
            hint_l2 = PrefetchHint.L2
            for p in packed:
                request = PrefetchRequest(
                    (p >> 1) << 6, hint_l1 if p & 1 else hint_l2, 0, ""
                )
                queue.append((request, convert_cycle))

        dram = hierarchy.dram
        open_rows, bank_busy, channel_busy = kernel.export_dram()
        dram._open_row.clear()
        dram._open_row.update(open_rows)
        dram._bank_busy_until.clear()
        dram._bank_busy_until.update(bank_busy)
        dram._channel_busy_until[:] = channel_busy
