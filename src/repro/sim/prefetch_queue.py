"""Prefetch queue (PQ) model.

Prefetch requests produced by a prefetcher do not reach the memory hierarchy
instantly: they are enqueued in a small FIFO and drained a few entries at a
time.  Two effects matter for the paper's results and are modelled here:

* a full queue drops new requests (lost opportunities for very aggressive
  prefetchers);
* *redundant* requests (for blocks already resident in the L1D) still occupy
  queue slots until they are drained and discarded -- this is the effect that
  limits vBerti on streaming workloads (§IV-B3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.sim.types import PrefetchRequest


@dataclass(slots=True)
class QueuedPrefetch:
    """A prefetch request waiting in the PQ."""

    request: PrefetchRequest
    enqueue_cycle: int


class PrefetchQueue:
    """Bounded FIFO of pending prefetch requests.

    Internally the FIFO holds plain ``(request, enqueue_cycle)`` tuples —
    the hot push/pop pair then allocates no wrapper objects — and the
    :class:`QueuedPrefetch` view is materialized lazily by the drain
    helpers that return entries to callers.
    """

    __slots__ = ("capacity", "drain_per_access", "_queue", "enqueued", "dropped_full")

    def __init__(self, capacity: int, drain_per_access: int = 4) -> None:
        if capacity <= 0:
            raise ValueError("prefetch queue capacity must be positive")
        if drain_per_access <= 0:
            raise ValueError("drain_per_access must be positive")
        self.capacity = capacity
        self.drain_per_access = drain_per_access
        self._queue: Deque[tuple] = deque()
        self.enqueued = 0
        self.dropped_full = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        """True when at least one request is queued (hot-path fast check)."""
        return bool(self._queue)

    @property
    def is_full(self) -> bool:
        """True when no more requests can be accepted."""
        return len(self._queue) >= self.capacity

    @property
    def quiescent(self) -> bool:
        """True when no request is queued — nothing can issue this access.

        This is the public spelling of the quiescence condition the
        batched kernel's chunked fast path requires (a queued request
        would have to issue mid-run).  The kernels themselves bind
        :attr:`pending` once and test the deque's truthiness per access —
        same condition, no property call on the hot path.
        """
        return not self._queue

    @property
    def pending(self) -> Deque[QueuedPrefetch]:
        """The underlying FIFO, exposed for hot-path truthiness checks.

        Drivers bind this deque once and test it per access (or per chunk)
        instead of calling a method; mutation stays this class's job.  The
        deque object is stable for the queue's lifetime (never rebound).
        """
        return self._queue

    def push(self, request: PrefetchRequest, cycle: int) -> bool:
        """Enqueue ``request``; returns False (and counts a drop) if full."""
        queue = self._queue
        if len(queue) >= self.capacity:
            self.dropped_full += 1
            return False
        queue.append((request, cycle))
        self.enqueued += 1
        return True

    def drain(self, limit: Optional[int] = None) -> List[QueuedPrefetch]:
        """Remove and return up to ``limit`` queued requests (FIFO order)."""
        if limit is None:
            limit = self.drain_per_access
        queue = self._queue
        if not queue:
            return []
        popleft = queue.popleft
        drained: List[QueuedPrefetch] = []
        append = drained.append
        while queue and len(drained) < limit:
            append(QueuedPrefetch(*popleft()))
        return drained

    def drain_all(self) -> List[QueuedPrefetch]:
        """Remove and return every queued request."""
        drained = [QueuedPrefetch(request, cycle) for request, cycle in self._queue]
        self._queue.clear()
        return drained

    def clear(self) -> None:
        """Discard all queued requests without counting them."""
        self._queue.clear()
