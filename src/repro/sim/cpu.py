"""Analytic out-of-order core timing model.

A full cycle-accurate out-of-order pipeline is neither feasible nor necessary
in Python for this reproduction: what the paper's speedup numbers depend on
is how demand-load latency (as reduced by prefetching) translates into
retired instructions per cycle under a bounded instruction window.  The
model below captures exactly that:

* the front end delivers ``width`` instructions per cycle;
* an instruction can only enter the window when the instruction
  ``rob_size`` positions older has retired (in-order retirement);
* non-memory instructions complete the cycle they issue; loads complete
  after their hierarchy latency; the load queue bounds the number of
  outstanding loads (memory-level parallelism).

This is the classic "interval"-style approximation: independent long-latency
loads inside the ROB window overlap, dependent chains serialize through the
retirement constraint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

from repro.sim.config import CoreConfig


@dataclass
class CoreSnapshot:
    """Read-only view of the core model's progress."""

    instructions: int
    cycles: float
    outstanding_loads: int


class CoreTimingModel:
    """Tracks fetch, issue and retirement timing for one core."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self._fetch_cycle = 0.0
        self._instr_count = 0
        self._last_retire_cycle = 0.0
        # (instruction position, completion cycle) of loads not yet known to
        # have retired; bounded by the ROB walk below.
        self._outstanding: Deque[Tuple[int, float]] = deque()
        # Completion cycles of outstanding *misses* (long-latency loads);
        # bounded by the MSHR count to model the core's MLP limit.
        self._outstanding_misses: List[float] = []

    # ------------------------------------------------------------------ #
    # Trace consumption
    # ------------------------------------------------------------------ #
    def advance_non_memory(self, count: int) -> None:
        """Account for ``count`` non-memory instructions in program order."""
        if count <= 0:
            return
        self._instr_count += count
        self._fetch_cycle += count / self.config.width

    def begin_memory_access(self) -> int:
        """Reserve the next memory instruction and return its issue cycle.

        The issue cycle respects front-end bandwidth, the ROB occupancy
        constraint and the load-queue size.  The caller must follow up with
        :meth:`complete_memory_access` carrying the latency obtained from
        the hierarchy.
        """
        self._instr_count += 1
        self._fetch_cycle += 1.0 / self.config.width
        issue = self._fetch_cycle
        position = self._instr_count

        # ROB constraint: the oldest in-flight load must retire before the
        # window can slide far enough to admit this instruction.
        rob = self.config.rob_size
        while self._outstanding and position - self._outstanding[0][0] >= rob:
            issue = max(issue, self._outstanding[0][1])
            self._retire_head(issue)

        # Load-queue constraint: bounded memory-level parallelism.
        lq = self.config.load_queue_size
        while len(self._outstanding) >= lq:
            issue = max(issue, self._outstanding[0][1])
            self._retire_head(issue)

        # MSHR constraint: only a limited number of demand *misses* can be
        # outstanding at once.  If the MSHRs are full, this access cannot be
        # sent to the memory system until the oldest miss returns.
        limit = self.config.max_outstanding_misses
        if len(self._outstanding_misses) >= limit:
            self._outstanding_misses.sort()
            while len(self._outstanding_misses) >= limit:
                issue = max(issue, self._outstanding_misses.pop(0))
        self._outstanding_misses = [
            c for c in self._outstanding_misses if c > issue
        ]

        # Opportunistically retire loads that have already completed.
        while self._outstanding and self._outstanding[0][1] <= issue:
            self._retire_head(issue)

        self._issue_position = position
        self._issue_cycle = issue
        return int(issue)

    def complete_memory_access(self, latency: int) -> None:
        """Record the completion of the access reserved by
        :meth:`begin_memory_access`."""
        completion = self._issue_cycle + max(1, latency)
        self._outstanding.append((self._issue_position, completion))
        if latency > self.config.miss_latency_threshold:
            self._outstanding_misses.append(completion)
        # Keep the fetch clock from falling behind an already-stalled window.
        if self._issue_cycle > self._fetch_cycle:
            self._fetch_cycle = self._issue_cycle

    def _retire_head(self, now: float) -> None:
        position, completion = self._outstanding.popleft()
        self._last_retire_cycle = max(self._last_retire_cycle, completion, now)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def finalize(self) -> Tuple[int, int]:
        """Return ``(instructions, cycles)`` after draining outstanding loads."""
        final_cycle = max(self._fetch_cycle, self._last_retire_cycle)
        while self._outstanding:
            _, completion = self._outstanding.popleft()
            final_cycle = max(final_cycle, completion)
        cycles = max(1, int(round(final_cycle)))
        return self._instr_count, cycles

    def snapshot(self) -> CoreSnapshot:
        """Return the current progress of the model."""
        return CoreSnapshot(
            instructions=self._instr_count,
            cycles=max(self._fetch_cycle, self._last_retire_cycle),
            outstanding_loads=len(self._outstanding),
        )

    @property
    def current_cycle(self) -> int:
        """Current front-end cycle (used to timestamp hierarchy events)."""
        return int(self._fetch_cycle)
