"""Analytic out-of-order core timing model.

A full cycle-accurate out-of-order pipeline is neither feasible nor necessary
in Python for this reproduction: what the paper's speedup numbers depend on
is how demand-load latency (as reduced by prefetching) translates into
retired instructions per cycle under a bounded instruction window.  The
model below captures exactly that:

* the front end delivers ``width`` instructions per cycle;
* an instruction can only enter the window when the instruction
  ``rob_size`` positions older has retired (in-order retirement);
* non-memory instructions complete the cycle they issue; loads complete
  after their hierarchy latency; the load queue bounds the number of
  outstanding loads (memory-level parallelism).

This is the classic "interval"-style approximation: independent long-latency
loads inside the ROB window overlap, dependent chains serialize through the
retirement constraint.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple

from repro.sim.config import CoreConfig


@dataclass(slots=True)
class CoreSnapshot:
    """Read-only view of the core model's progress."""

    instructions: int
    cycles: float
    outstanding_loads: int


class CoreTimingModel:
    """Tracks fetch, issue and retirement timing for one core.

    Slotted: the begin/complete pair runs once per simulated memory access
    and touches most of these attributes each time.
    """

    __slots__ = (
        "config",
        "_fetch_cycle",
        "_instr_count",
        "_last_retire_cycle",
        "_outstanding",
        "_outstanding_misses",
        "_width",
        "_fetch_increment",
        "_rob_size",
        "_load_queue_size",
        "_miss_limit",
        "_miss_threshold",
        "_issue_position",
        "_issue_cycle",
    )

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self._fetch_cycle = 0.0
        self._instr_count = 0
        self._last_retire_cycle = 0.0
        # (instruction position, completion cycle) of loads not yet known to
        # have retired; bounded by the ROB walk below.
        self._outstanding: Deque[Tuple[int, float]] = deque()
        # Completion cycles of outstanding *misses* (long-latency loads);
        # bounded by the MSHR count to model the core's MLP limit.
        self._outstanding_misses: List[float] = []
        # Hot-path constants (read once per simulated access).  The fetch
        # increment is the same float the historical per-call division
        # produced, so cycle counts stay bit-identical.
        self._width = config.width
        self._fetch_increment = 1.0 / config.width
        self._rob_size = config.rob_size
        self._load_queue_size = config.load_queue_size
        self._miss_limit = config.max_outstanding_misses
        self._miss_threshold = config.miss_latency_threshold

    # ------------------------------------------------------------------ #
    # Trace consumption
    # ------------------------------------------------------------------ #
    def advance_non_memory(self, count: int) -> None:
        """Account for ``count`` non-memory instructions in program order."""
        if count <= 0:
            return
        self._instr_count += count
        self._fetch_cycle += count / self._width

    def begin_memory_access(self) -> int:
        """Reserve the next memory instruction and return its issue cycle.

        The issue cycle respects front-end bandwidth, the ROB occupancy
        constraint and the load-queue size.  The caller must follow up with
        :meth:`complete_memory_access` carrying the latency obtained from
        the hierarchy.
        """
        self._instr_count += 1
        self._fetch_cycle += self._fetch_increment
        issue = self._fetch_cycle
        position = self._instr_count
        outstanding = self._outstanding

        # ROB constraint: the oldest in-flight load must retire before the
        # window can slide far enough to admit this instruction.  Retirement
        # is inlined: pop the head and advance the last-retire clock.
        rob = self._rob_size
        last_retire = self._last_retire_cycle
        popleft = outstanding.popleft
        while outstanding and position - outstanding[0][0] >= rob:
            head = outstanding[0][1]
            if head > issue:
                issue = head
            completion = popleft()[1]
            if completion > last_retire:
                last_retire = completion
            if issue > last_retire:
                last_retire = issue

        # Load-queue constraint: bounded memory-level parallelism.
        lq = self._load_queue_size
        while len(outstanding) >= lq:
            head = outstanding[0][1]
            if head > issue:
                issue = head
            completion = popleft()[1]
            if completion > last_retire:
                last_retire = completion
            if issue > last_retire:
                last_retire = issue

        # MSHR constraint: only a limited number of demand *misses* can be
        # outstanding at once.  If the MSHRs are full, this access cannot be
        # sent to the memory system until the oldest miss returns.
        misses = self._outstanding_misses
        if len(misses) >= self._miss_limit:
            misses.sort()
            while len(misses) >= self._miss_limit:
                completed = misses.pop(0)
                if completed > issue:
                    issue = completed
        if misses and min(misses) <= issue:
            self._outstanding_misses = [c for c in misses if c > issue]

        # Opportunistically retire loads that have already completed.
        while outstanding and outstanding[0][1] <= issue:
            completion = popleft()[1]
            if completion > last_retire:
                last_retire = completion
            if issue > last_retire:
                last_retire = issue

        self._last_retire_cycle = last_retire
        self._issue_position = position
        self._issue_cycle = issue
        return int(issue)

    def complete_memory_access(self, latency: int) -> None:
        """Record the completion of the access reserved by
        :meth:`begin_memory_access`."""
        completion = self._issue_cycle + (latency if latency > 1 else 1)
        self._outstanding.append((self._issue_position, completion))
        if latency > self._miss_threshold:
            self._outstanding_misses.append(completion)
        # Keep the fetch clock from falling behind an already-stalled window.
        if self._issue_cycle > self._fetch_cycle:
            self._fetch_cycle = self._issue_cycle

    def advance_hit_run(self, gaps, start: int, count: int, latency: int) -> None:
        """Aggregate timing advance over a run of same-latency accesses.

        Equivalent to calling ``advance_non_memory(gaps[i])`` /
        :meth:`begin_memory_access` / :meth:`complete_memory_access`
        (``latency``) for each of the ``count`` accesses beginning at
        ``gaps[start]`` — the batched kernel's L1-hit runs — but in one
        tight loop with every constant and container bound to a local.

        This is the *reference implementation* of the run-retirement
        timing: the batched driver
        (:meth:`repro.sim.simulator.SingleCoreSimulator._execute_batched`)
        inlines the identical loop so the model state can live in its own
        local variables across runs, and the two copies are pinned against
        each other by the batched-vs-scalar golden/equivalence suite plus
        this method's direct unit test.  Any timing change must be applied
        to both (they are line-for-line the same logic).

        Bit-identicality contract: the float additions happen in the same
        order with the same operands as the scalar calls (``gap / width``
        then ``+= fetch_increment`` per access), and the ROB / load-queue /
        outstanding-miss constraints run the identical logic, so the model
        state after a run is indistinguishable from the scalar kernel's.
        The constraint checks stay inside the loop because a run can begin
        with long-latency completions still outstanding.
        """
        if count <= 0:
            return
        width = self._width
        inc = self._fetch_increment
        rob = self._rob_size
        lq = self._load_queue_size
        miss_limit = self._miss_limit
        records_miss = latency > self._miss_threshold
        completion_delta = latency if latency > 1 else 1
        instr = self._instr_count
        fetch = self._fetch_cycle
        last_retire = self._last_retire_cycle
        outstanding = self._outstanding
        popleft = outstanding.popleft
        append = outstanding.append
        issue = fetch
        for index in range(start, start + count):
            gap = gaps[index]
            if gap > 0:
                instr += gap
                fetch += gap / width
            instr += 1
            fetch += inc
            issue = fetch

            while outstanding and instr - outstanding[0][0] >= rob:
                head = outstanding[0][1]
                if head > issue:
                    issue = head
                completion = popleft()[1]
                if completion > last_retire:
                    last_retire = completion
                if issue > last_retire:
                    last_retire = issue

            while len(outstanding) >= lq:
                head = outstanding[0][1]
                if head > issue:
                    issue = head
                completion = popleft()[1]
                if completion > last_retire:
                    last_retire = completion
                if issue > last_retire:
                    last_retire = issue

            misses = self._outstanding_misses
            if len(misses) >= miss_limit:
                misses.sort()
                while len(misses) >= miss_limit:
                    completed = misses.pop(0)
                    if completed > issue:
                        issue = completed
            if misses and min(misses) <= issue:
                self._outstanding_misses = misses = [
                    c for c in misses if c > issue
                ]

            while outstanding and outstanding[0][1] <= issue:
                completion = popleft()[1]
                if completion > last_retire:
                    last_retire = completion
                if issue > last_retire:
                    last_retire = issue

            completion = issue + completion_delta
            append((instr, completion))
            if records_miss:
                misses.append(completion)
            if issue > fetch:
                fetch = issue

        self._instr_count = instr
        self._fetch_cycle = fetch
        self._last_retire_cycle = last_retire
        self._issue_position = instr
        self._issue_cycle = issue

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def finalize(self) -> Tuple[int, int]:
        """Return ``(instructions, cycles)`` after draining outstanding loads."""
        final_cycle = max(self._fetch_cycle, self._last_retire_cycle)
        while self._outstanding:
            _, completion = self._outstanding.popleft()
            final_cycle = max(final_cycle, completion)
        cycles = max(1, int(round(final_cycle)))
        return self._instr_count, cycles

    def progress_totals(self) -> Tuple[int, int]:
        """``(instructions, cycles)`` as :meth:`finalize` would report them now.

        Non-destructive: outstanding loads stay queued, so the model keeps
        running afterwards.  The multi-core driver uses this to snapshot a
        core's measured totals the moment its instruction budget is
        exhausted, while the core itself keeps replaying its trace to exert
        shared-resource pressure.
        """
        final_cycle = max(self._fetch_cycle, self._last_retire_cycle)
        for _, completion in self._outstanding:
            if completion > final_cycle:
                final_cycle = completion
        return self._instr_count, max(1, int(round(final_cycle)))

    def snapshot(self) -> CoreSnapshot:
        """Return the current progress of the model."""
        return CoreSnapshot(
            instructions=self._instr_count,
            cycles=max(self._fetch_cycle, self._last_retire_cycle),
            outstanding_loads=len(self._outstanding),
        )

    @property
    def current_cycle(self) -> int:
        """Current front-end cycle (used to timestamp hierarchy events)."""
        return int(self._fetch_cycle)
