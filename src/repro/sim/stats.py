"""Statistics collected during simulation and the paper's derived metrics.

The paper's metrics of interest (§IV-A3):

* **Speedup** -- IPC with prefetching / IPC without prefetching.
* **Accuracy** -- *overall* accuracy ``(useful_l1 + useful_l2) / (all filled
  prefetches at L1 and L2)``; prefetches dropped before filling any cache do
  not count.
* **Coverage** -- fraction of would-be LLC misses covered by prefetching;
  computed as ``covered / (covered + remaining demand LLC misses)`` where a
  covered miss is a demand access served by a prefetched block whose fill
  came from DRAM.
* **Timeliness** -- fraction of useful prefetches that were *late* (the
  demand arrived while the prefetch was still in flight).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional


@dataclass(slots=True)
class PrefetchStats:
    """Counters describing prefetcher behaviour during one simulation.

    Slotted: the hierarchy increments these counters on the per-access hot
    path, and slot access is measurably cheaper than a ``__dict__`` probe.
    """

    generated: int = 0
    issued: int = 0
    dropped_queue_full: int = 0
    dropped_mshr_full: int = 0
    redundant: int = 0
    filled_l1: int = 0
    filled_l2: int = 0
    useful_l1: int = 0
    useful_l2: int = 0
    useless: int = 0
    late: int = 0
    covered_llc_misses: int = 0

    @property
    def useful(self) -> int:
        """Total useful prefetches across L1D and L2C."""
        return self.useful_l1 + self.useful_l2

    @property
    def filled(self) -> int:
        """Total prefetches that filled some cache level."""
        return self.filled_l1 + self.filled_l2

    @property
    def accuracy(self) -> float:
        """Overall prefetch accuracy as defined in the paper."""
        if not self.filled:
            return 0.0
        return min(1.0, self.useful / self.filled)

    @property
    def late_fraction(self) -> float:
        """Fraction of useful prefetches that arrived late."""
        if not self.useful:
            return 0.0
        return self.late / self.useful

    def to_dict(self) -> Dict[str, int]:
        """Plain-data representation (for the persistent result cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "PrefetchStats":
        """Rebuild from :meth:`to_dict` output."""
        return cls(**data)


@dataclass(slots=True)
class SimulationStats:
    """Complete result of one single-core simulation run.

    Slotted like :class:`PrefetchStats`; free-form annotations belong in the
    ``extra`` dict, not in ad-hoc attributes.
    """

    name: str = ""
    prefetcher: str = ""
    instructions: int = 0
    cycles: int = 0
    demand_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    dram_reads: int = 0
    total_demand_latency: int = 0
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1_hit_rate(self) -> float:
        """Fraction of demand accesses hitting the L1D."""
        if not self.demand_accesses:
            return 0.0
        return self.l1_hits / self.demand_accesses

    @property
    def llc_mpki(self) -> float:
        """LLC misses per kilo-instruction (demand only)."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.llc_misses / self.instructions

    @property
    def average_demand_latency(self) -> float:
        """Mean load-to-use latency of demand accesses."""
        if not self.demand_accesses:
            return 0.0
        return self.total_demand_latency / self.demand_accesses

    def coverage(self, baseline: Optional["SimulationStats"] = None) -> float:
        """LLC miss coverage.

        If ``baseline`` (a no-prefetch run of the same trace) is supplied,
        coverage is ``1 - misses/baseline_misses`` clamped to [0, 1]; this is
        the definition that matches the paper most closely.  Without a
        baseline, the covered-miss counter collected online is used.
        """
        if baseline is not None and baseline.llc_misses > 0:
            return max(0.0, min(1.0, 1.0 - self.llc_misses / baseline.llc_misses))
        covered = self.prefetch.covered_llc_misses
        denom = covered + self.llc_misses
        if denom == 0:
            return 0.0
        return covered / denom

    def speedup(self, baseline: "SimulationStats") -> float:
        """IPC speedup relative to a baseline run of the same trace."""
        if baseline.ipc == 0.0:
            return 0.0
        return self.ipc / baseline.ipc

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation with every counter preserved exactly.

        Integers stay integers and floats round-trip bit-exactly through
        JSON, so a cached result is indistinguishable from a fresh run.
        """
        data = asdict(self)
        data["prefetch"] = self.prefetch.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationStats":
        """Rebuild a :class:`SimulationStats` from :meth:`to_dict` output."""
        payload = dict(data)
        payload["prefetch"] = PrefetchStats.from_dict(payload.get("prefetch", {}))
        payload["extra"] = dict(payload.get("extra", {}))
        return cls(**payload)

    def summary(self) -> Dict[str, float]:
        """Compact dictionary of headline metrics (for reports and tests)."""
        return {
            "ipc": self.ipc,
            "accuracy": self.prefetch.accuracy,
            "coverage": self.coverage(),
            "late_fraction": self.prefetch.late_fraction,
            "llc_mpki": self.llc_mpki,
            "issued_prefetches": float(self.prefetch.issued),
        }


@dataclass(slots=True)
class MultiCoreStats:
    """Result of a multi-core simulation: one :class:`SimulationStats` per core."""

    per_core: Dict[int, SimulationStats] = field(default_factory=dict)
    name: str = ""
    prefetcher: str = ""

    @property
    def num_cores(self) -> int:
        """Number of simulated cores."""
        return len(self.per_core)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (core ids become string keys).

        Round-trips exactly through :meth:`from_dict`, which is what lets
        multi-core mixes participate in the persistent result cache.
        """
        return {
            "name": self.name,
            "prefetcher": self.prefetcher,
            "per_core": {
                str(core_id): stats.to_dict()
                for core_id, stats in sorted(self.per_core.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MultiCoreStats":
        """Rebuild a :class:`MultiCoreStats` from :meth:`to_dict` output."""
        return cls(
            name=data.get("name", ""),
            prefetcher=data.get("prefetcher", ""),
            per_core={
                int(core_id): SimulationStats.from_dict(stats)
                for core_id, stats in data.get("per_core", {}).items()
            },
        )

    def geomean_speedup(self, baseline: "MultiCoreStats") -> float:
        """Geometric-mean per-core speedup against a baseline run."""
        if not self.per_core:
            return 0.0
        product = 1.0
        count = 0
        for core, stats in self.per_core.items():
            base = baseline.per_core.get(core)
            if base is None or base.ipc == 0.0:
                continue
            product *= stats.ipc / base.ipc
            count += 1
        if count == 0:
            return 0.0
        return product ** (1.0 / count)


def geometric_mean(values) -> float:
    """Geometric mean of an iterable of positive floats (0.0 if empty)."""
    values = [v for v in values if v > 0.0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
