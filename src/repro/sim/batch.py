"""Array-decoded traces for the batched simulation kernel.

The scalar kernel walks a trace as a sequence of
:class:`~repro.sim.types.MemoryAccess` objects; every access costs four or
five slotted-attribute reads before any simulation happens.  The batched
kernel instead consumes a :class:`BatchedTrace`: the same trace *decoded
once* into parallel arrays (addresses, PCs, instruction gaps, access kinds,
plus cache-block numbers precomputed with the existing mask-based geometry),
so the hot loop reads plain integers by index and the chunked L1-hit fast
path (:meth:`repro.sim.cache.Cache.demand_hit_run`) can scan whole runs of
consecutive accesses without touching a single access object.

Layout notes:

* ``addresses``/``pcs``/``gaps``/``blocks`` are plain lists of ints, not
  ``array('q')``: list indexing hands back an existing reference (one
  ``INCREF``) where ``array('q')`` would box a fresh ``int`` per read, and
  the decoded ints are shared with nothing else so the memory difference is
  one pointer per field per access.  ``kinds`` is a ``bytearray`` (0 = load,
  1 = store, 2 = other), the cheapest indexable byte sequence.
* ``blocks[i] == addresses[i] >> BLOCK_SHIFT`` is precomputed because both
  the run-length residency probe and the inlined L1-hit path key their set
  lookups on block numbers.
* ``instruction_total`` is the exact value
  :func:`repro.sim.simulator._count_instructions` would compute, cached at
  decode time so an unbudgeted run never pays a counting pass.

A :class:`BatchedTrace` is also a read-only ``Sequence[MemoryAccess]``
(items are reconstructed on demand), so every scalar consumer — the scalar
kernel under ``batch="off"``, trace statistics, format writers — accepts one
transparently.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.sim.types import AccessType, MemoryAccess, BLOCK_SHIFT

#: ``kinds`` encoding: index of the access type in the batched arrays.
KIND_LOAD = 0
KIND_STORE = 1
KIND_OTHER = 2

# Init-once decode lookup table, never mutated.  # repro-lint: waive R3
_KIND_TO_TYPE = {
    KIND_LOAD: AccessType.LOAD,
    KIND_STORE: AccessType.STORE,
    KIND_OTHER: AccessType.PREFETCH,
}


class BatchedTrace(Sequence):
    """One trace decoded into parallel arrays (see module docstring)."""

    __slots__ = ("addresses", "pcs", "gaps", "kinds", "blocks", "instruction_total")

    def __init__(
        self,
        addresses: List[int],
        pcs: List[int],
        gaps: List[int],
        kinds: bytearray,
        blocks: List[int],
        instruction_total: int,
    ) -> None:
        self.addresses = addresses
        self.pcs = pcs
        self.gaps = gaps
        self.kinds = kinds
        self.blocks = blocks
        self.instruction_total = instruction_total

    @classmethod
    def from_accesses(cls, accesses: Iterable[MemoryAccess]) -> "BatchedTrace":
        """Decode any access iterable (materialized or streamed) in one pass."""
        addresses: List[int] = []
        pcs: List[int] = []
        gaps: List[int] = []
        kinds = bytearray()
        blocks: List[int] = []
        total = 0
        load = AccessType.LOAD
        store = AccessType.STORE
        for access in accesses:
            address = access.address
            gap = access.instr_gap
            access_type = access.access_type
            addresses.append(address)
            pcs.append(access.pc)
            gaps.append(gap)
            kinds.append(
                KIND_LOAD
                if access_type is load
                else (KIND_STORE if access_type is store else KIND_OTHER)
            )
            blocks.append(address >> BLOCK_SHIFT)
            total += gap + 1
        return cls(addresses, pcs, gaps, kinds, blocks, total)

    # ------------------------------------------------------------------ #
    # Sequence protocol (scalar consumers reconstruct accesses on demand)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.addresses)

    def __getitem__(self, index: int) -> MemoryAccess:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self.addresses)))]
        return MemoryAccess(
            pc=self.pcs[index],
            address=self.addresses[index],
            access_type=_KIND_TO_TYPE[self.kinds[index]],
            instr_gap=self.gaps[index],
        )

    def __iter__(self) -> Iterator[MemoryAccess]:
        kind_to_type = _KIND_TO_TYPE
        for pc, address, kind, gap in zip(
            self.pcs, self.addresses, self.kinds, self.gaps
        ):
            yield MemoryAccess(
                pc=pc, address=address, access_type=kind_to_type[kind],
                instr_gap=gap,
            )

    def __repr__(self) -> str:
        return (
            f"BatchedTrace({len(self.addresses)} accesses, "
            f"{self.instruction_total} instructions)"
        )


#: Default accesses per chunk of :class:`ChunkedTraceStream`.  Each decoded
#: access costs five ints plus a byte, so the default bounds the decode
#: working set to well under a megabyte regardless of trace length.
DEFAULT_CHUNK_ACCESSES = 8192


class ChunkedTraceStream:
    """Re-openable access source decoded into bounded-size batched chunks.

    Bridges streamed traces (e.g. :class:`repro.workloads.formats.TraceFile`)
    and the batched kernel: instead of materializing the whole trace (the
    ``batch="on"`` trade) or falling back to the scalar kernel (the old
    ``batch="auto"`` behaviour for files), the simulator pulls successive
    :class:`BatchedTrace` chunks of at most ``chunk_accesses`` accesses —
    the batched kernel's throughput at O(chunk) memory.

    One pass = one iteration of ``source``; :meth:`next_chunk` returns
    ``None`` at the end of a pass and re-opens the source on the following
    call, so replay semantics (for bounded instruction budgets) match the
    scalar streamed path exactly.

    Chunks feed either driver unchanged: the Python batched kernel, or —
    under ``kernel="compiled"`` — the C ``DriverKernel``
    (:mod:`repro.sim.driver`), which consumes one chunk per call.
    """

    __slots__ = ("source", "chunk_accesses", "_iterator")

    def __init__(self, source, chunk_accesses: int = DEFAULT_CHUNK_ACCESSES) -> None:
        if chunk_accesses <= 0:
            raise ValueError("chunk_accesses must be positive")
        self.source = source
        self.chunk_accesses = chunk_accesses
        self._iterator: Optional[Iterator[MemoryAccess]] = None

    def next_chunk(self) -> Optional[BatchedTrace]:
        """Decode and return the next chunk of the current pass.

        Returns ``None`` exactly once at the end of each pass (also for an
        empty source); the next call starts a fresh pass.
        """
        if self._iterator is None:
            self._iterator = iter(self.source)
        iterator = self._iterator
        addresses: List[int] = []
        pcs: List[int] = []
        gaps: List[int] = []
        kinds = bytearray()
        blocks: List[int] = []
        total = 0
        count = 0
        limit = self.chunk_accesses
        load = AccessType.LOAD
        store = AccessType.STORE
        for access in iterator:
            address = access.address
            gap = access.instr_gap
            access_type = access.access_type
            addresses.append(address)
            pcs.append(access.pc)
            gaps.append(gap)
            kinds.append(
                KIND_LOAD
                if access_type is load
                else (KIND_STORE if access_type is store else KIND_OTHER)
            )
            blocks.append(address >> BLOCK_SHIFT)
            total += gap + 1
            count += 1
            if count >= limit:
                break
        if not count:
            self._iterator = None
            return None
        return BatchedTrace(addresses, pcs, gaps, kinds, blocks, total)

    def __iter__(self) -> Iterator[MemoryAccess]:
        """A fresh scalar pass over the underlying source (for counting)."""
        return iter(self.source)


def decode_trace(source) -> Optional[BatchedTrace]:
    """Decode ``source`` into a :class:`BatchedTrace`, or ``None``.

    Accepts an existing :class:`BatchedTrace` (returned as-is) or any
    materialized sequence of access records.  Sources that stream (no
    ``__len__``) or whose items do not look like accesses return ``None``
    so callers can fall back to the scalar kernel; decode is strictly an
    optimization, never a requirement.
    """
    if isinstance(source, BatchedTrace):
        return source
    if not isinstance(source, (list, tuple)):
        return None
    try:
        return BatchedTrace.from_accesses(source)
    except (AttributeError, TypeError):
        return None
