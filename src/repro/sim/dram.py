"""Main-memory timing model.

The model captures the two first-order effects the paper's evaluation relies
on:

* **Row-buffer locality** -- consecutive accesses to the same 2 KB row of a
  bank pay only CAS latency; a row conflict pays precharge + activate + CAS.
* **Channel bandwidth / queueing** -- every transfer occupies its channel's
  data bus for a number of cycles derived from the configured transfer rate
  (MT/s); requests that arrive while the channel is busy wait.  This is what
  makes aggressive-but-inaccurate prefetchers (PMP, DSPatch) degrade in
  multi-core and low-bandwidth configurations (Fig. 14 and Fig. 16a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.config import DRAMConfig


@dataclass(slots=True)
class DRAMStats:
    """Aggregate counters kept by the DRAM model."""

    requests: int = 0
    demand_requests: int = 0
    prefetch_requests: int = 0
    row_hits: int = 0
    row_misses: int = 0
    total_queue_wait: int = 0
    total_service_cycles: int = 0

    @property
    def row_hit_rate(self) -> float:
        """Fraction of requests that hit in an open row buffer."""
        if not self.requests:
            return 0.0
        return self.row_hits / self.requests

    @property
    def average_queue_wait(self) -> float:
        """Mean cycles a request waited for its channel."""
        if not self.requests:
            return 0.0
        return self.total_queue_wait / self.requests


class DRAMModel:
    """Channel-occupancy main-memory model.

    The address is decomposed into (channel, bank, row) by simple bit
    slicing of the block number; the per-channel busy-until timestamp models
    bandwidth, the per-bank open row models row-buffer locality.

    Slotted: :meth:`access` runs once per LLC miss (and once per DRAM-bound
    prefetch) and reads most of these attributes each time.
    """

    __slots__ = (
        "config",
        "_channel_busy_until",
        "_bank_busy_until",
        "_open_row",
        "stats",
        "_blocks_per_row",
        "_banks_per_channel",
        "_channels",
        "_row_hit_latency",
        "_row_miss_latency",
        "_transfer_cycles",
        "_row_divisor",
    )

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._channel_busy_until: List[float] = [0.0] * config.channels
        self._bank_busy_until: Dict[int, float] = {}
        self._open_row: Dict[int, int] = {}
        self.stats = DRAMStats()
        self._blocks_per_row = max(1, config.row_buffer_bytes // 64)
        self._banks_per_channel = config.ranks_per_channel * config.banks_per_rank
        # Hot-path constants hoisted out of the per-request config properties.
        self._channels = config.channels
        self._row_hit_latency = config.row_hit_latency_cycles
        self._row_miss_latency = config.row_miss_latency_cycles
        self._transfer_cycles = config.transfer_cycles_per_block
        self._row_divisor = self._blocks_per_row * config.channels

    # ------------------------------------------------------------------ #
    # Address mapping
    # ------------------------------------------------------------------ #
    def channel_of(self, block: int) -> int:
        """Channel a block maps to (block-interleaved)."""
        return block % self._channels

    def bank_of(self, block: int) -> int:
        """Global bank index a block maps to."""
        channel = block % self._channels
        bank_in_channel = (block // self._channels) % self._banks_per_channel
        return channel * self._banks_per_channel + bank_in_channel

    def row_of(self, block: int) -> int:
        """Row number (within its bank) a block maps to."""
        return block // self._row_divisor

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def access(self, block: int, cycle: int, is_prefetch: bool = False) -> int:
        """Serve a request for ``block`` arriving at ``cycle``.

        Returns the total latency in CPU cycles (queueing + array access +
        transfer) and advances the channel/bank state.
        """
        # Everything is bound to locals and the ``max`` builtins are
        # unrolled into comparisons — this function runs once per LLC miss
        # and once per DRAM-bound prefetch, which makes it one of the
        # hottest leaves of the simulator.  The arithmetic (and therefore
        # every returned latency) is unchanged operation-for-operation.
        channels = self._channels
        banks_per_channel = self._banks_per_channel
        channel = block % channels
        bank = channel * banks_per_channel + (block // channels) % banks_per_channel
        row = block // self._row_divisor

        stats = self.stats
        open_row = self._open_row
        if open_row.get(bank) == row:
            array_latency = self._row_hit_latency
            stats.row_hits += 1
        else:
            array_latency = self._row_miss_latency
            stats.row_misses += 1
            open_row[bank] = row

        # The bank is occupied for the array access, the channel data bus
        # only for the burst transfer; queueing reflects whichever resource
        # the request has to wait for.
        bank_busy = self._bank_busy_until
        bank_wait = bank_busy.get(bank, 0.0) - cycle
        if bank_wait < 0.0:
            bank_wait = 0.0
        array_done = cycle + bank_wait + array_latency
        bank_busy[bank] = array_done

        transfer = self._transfer_cycles
        channel_busy = self._channel_busy_until
        bus_start = channel_busy[channel]
        if array_done > bus_start:
            bus_start = array_done
        bus_done = bus_start + transfer
        channel_busy[channel] = bus_done

        bus_wait = bus_start - array_done
        queue_wait = bank_wait + (bus_wait if bus_wait > 0.0 else 0.0)
        total_latency = bus_done - cycle

        stats.requests += 1
        if is_prefetch:
            stats.prefetch_requests += 1
        else:
            stats.demand_requests += 1
        stats.total_queue_wait += int(queue_wait)
        stats.total_service_cycles += int(array_latency + transfer)

        return int(round(total_latency))

    def reset(self) -> None:
        """Clear all timing state and statistics."""
        self._channel_busy_until = [0.0] * self.config.channels
        self._bank_busy_until.clear()
        self._open_row.clear()
        self.stats = DRAMStats()

    def clone(self) -> "DRAMModel":
        """Copy of the full timing state (busy times, open rows, counters).

        Used by epoch-sharded multi-core execution to hand each core a
        private shadow of the shared DRAM for one epoch; the shadows are
        discarded after reconciliation, so counter copies only matter for
        intra-epoch decisions (they make the clone behave exactly like the
        original would have).
        """
        twin = DRAMModel(self.config)
        twin._channel_busy_until = list(self._channel_busy_until)
        twin._bank_busy_until = dict(self._bank_busy_until)
        twin._open_row = dict(self._open_row)
        twin.stats = DRAMStats(
            requests=self.stats.requests,
            demand_requests=self.stats.demand_requests,
            prefetch_requests=self.stats.prefetch_requests,
            row_hits=self.stats.row_hits,
            row_misses=self.stats.row_misses,
            total_queue_wait=self.stats.total_queue_wait,
            total_service_cycles=self.stats.total_service_cycles,
        )
        return twin
