"""System configuration dataclasses.

The default values mirror Table II of the paper:

* 1-8 cores, 4 GHz, 4-wide out-of-order, 352-entry ROB;
* L1D 48 KB / 12-way / 5 cycles / 16 MSHRs;
* L2C 512 KB / 8-way / 10 cycles / 32 MSHRs;
* LLC 2 MB per core / 16-way / 20 cycles / 64 MSHRs;
* DDR4-3200 with a channel count scaled with the core count.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Optional

from repro.hashing import content_hash


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Parameters of the analytic out-of-order core model."""

    width: int = 4
    rob_size: int = 352
    load_queue_size: int = 128
    store_queue_size: int = 72
    frequency_ghz: float = 4.0
    #: Maximum demand misses the core can overlap (L1D MSHR count).  This is
    #: the memory-level-parallelism bound that prefetching relieves: a
    #: prefetched block does not occupy a demand MSHR.
    max_outstanding_misses: int = 16
    #: Latency above which an access is considered a miss for the MLP bound.
    miss_latency_threshold: int = 20

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("core width must be positive")
        if self.rob_size <= 0:
            raise ValueError("ROB size must be positive")
        if self.max_outstanding_misses <= 0:
            raise ValueError("max_outstanding_misses must be positive")


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    mshrs: int
    block_size: int = 64
    prefetch_queue_size: int = 64
    max_prefetch_issue_per_access: int = 4

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.block_size) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*block ({self.ways}*{self.block_size})"
            )
        # Non-power-of-two set counts are allowed (the cache indexes sets by
        # modulo); this keeps odd core counts (3, 5, ...) valid when the LLC
        # scales at 2 MB per core.

    @property
    def sets(self) -> int:
        """Number of sets in this cache."""
        return self.size_bytes // (self.ways * self.block_size)

    @property
    def total_blocks(self) -> int:
        """Total block capacity of this cache."""
        return self.size_bytes // self.block_size


@dataclass(frozen=True, slots=True)
class DRAMConfig:
    """Main-memory timing/bandwidth model parameters.

    The model keeps one busy-until timestamp per channel and a last-open-row
    per bank, so the effective latency of a request is::

        queue_wait + (row_hit ? t_cas : t_rp + t_rcd + t_cas) + transfer

    with ``transfer`` derived from the transfer rate (MT/s) and the 64-bit
    data bus, exactly the knobs the paper sweeps in Fig. 16a.
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    transfer_rate_mtps: int = 3200
    bus_width_bits: int = 64
    row_buffer_bytes: int = 2048
    t_rp_ns: float = 12.5
    t_rcd_ns: float = 12.5
    t_cas_ns: float = 12.5
    cpu_frequency_ghz: float = 4.0

    @property
    def cycles_per_ns(self) -> float:
        """CPU cycles per nanosecond."""
        return self.cpu_frequency_ghz

    @property
    def row_hit_latency_cycles(self) -> int:
        """Latency (CPU cycles) of a row-buffer hit, excluding transfer."""
        return max(1, round(self.t_cas_ns * self.cycles_per_ns))

    @property
    def row_miss_latency_cycles(self) -> int:
        """Latency (CPU cycles) of a row-buffer miss (precharge+activate+CAS)."""
        return max(
            1,
            round((self.t_rp_ns + self.t_rcd_ns + self.t_cas_ns) * self.cycles_per_ns),
        )

    @property
    def transfer_cycles_per_block(self) -> float:
        """CPU cycles the data bus is occupied transferring one 64 B block."""
        bytes_per_second = self.transfer_rate_mtps * 1e6 * (self.bus_width_bits / 8)
        seconds = 64.0 / bytes_per_second
        return seconds * self.cpu_frequency_ghz * 1e9

    @property
    def total_banks(self) -> int:
        """Total number of banks across channels and ranks."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Complete configuration of a simulated system."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D", size_bytes=48 * 1024, ways=12, latency=5, mshrs=16
        )
    )
    l2c: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2C", size_bytes=512 * 1024, ways=8, latency=10, mshrs=32
        )
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="LLC", size_bytes=2 * 1024 * 1024, ways=16, latency=20, mshrs=64
        )
    )
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    num_cores: int = 1

    # ------------------------------------------------------------------ #
    # Deterministic serialization (used by the job engine's cache keys)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-data representation covering *every* configuration field."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SystemConfig":
        """Rebuild a :class:`SystemConfig` from :meth:`to_dict` output."""
        return cls(
            core=CoreConfig(**data["core"]),
            l1d=CacheConfig(**data["l1d"]),
            l2c=CacheConfig(**data["l2c"]),
            llc=CacheConfig(**data["llc"]),
            dram=DRAMConfig(**data["dram"]),
            num_cores=data["num_cores"],
        )

    def content_key(self) -> str:
        """Stable hash of the full configuration.

        Unlike Python's ``hash()``, this covers every field (MSHRs,
        latencies, prefetch-queue sizes, ...) and is identical across
        processes, so two systems share a key only when they are genuinely
        the same system.
        """
        return content_hash(self.to_dict())

    def scaled_for_cores(self, num_cores: int) -> "SystemConfig":
        """Return a copy scaled for ``num_cores`` following Table II.

        The LLC is 2 MB per core and the DRAM channel/rank count grows with
        the core count (1C: 1 channel/1 rank, 2C: 2/1, 4C: 2/2, 8C: 4/2).
        """
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        llc = replace(self.llc, size_bytes=2 * 1024 * 1024 * num_cores)
        if num_cores >= 8:
            channels, ranks = 4, 2
        elif num_cores >= 4:
            channels, ranks = 2, 2
        elif num_cores >= 2:
            channels, ranks = 2, 1
        else:
            channels, ranks = 1, 1
        dram = replace(self.dram, channels=channels, ranks_per_channel=ranks)
        return replace(self, llc=llc, dram=dram, num_cores=num_cores)


def default_system_config(num_cores: int = 1) -> SystemConfig:
    """Build the paper's baseline system configuration for ``num_cores``."""
    return SystemConfig().scaled_for_cores(num_cores)
