"""Core value types shared by the simulator, prefetchers and workloads.

Addresses are plain integers (byte addresses).  The helpers here convert
between byte addresses, 64-byte cache-block numbers, and spatial regions
(4 KB pages by default, matching the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

#: Cache block (line) size in bytes.  The paper uses 64-byte lines throughout.
BLOCK_SIZE = 64

#: log2 of the block size, used for address arithmetic.
BLOCK_SHIFT = 6

#: Default spatial region size in bytes (a 4 KB physical page).
DEFAULT_REGION_SIZE = 4096

#: Number of 64-byte blocks in a default region.
DEFAULT_BLOCKS_PER_REGION = DEFAULT_REGION_SIZE // BLOCK_SIZE


class AccessType(enum.Enum):
    """Kind of memory operation carried by a trace record."""

    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"


class PrefetchHint(enum.Enum):
    """Target fill level requested for a prefetch.

    The paper's prefetchers issue prefetches either into the L1D (high
    confidence) or only into the L2C (moderate confidence).  None of the
    evaluated designs fill the LLC directly, but the level exists for
    completeness.
    """

    L1 = 1
    L2 = 2
    LLC = 3


@dataclass(frozen=True, slots=True)
class MemoryAccess:
    """One demand access observed by the prefetcher / hierarchy.

    Slotted: traces hold millions of these and the simulation kernel reads
    their fields once per access, so the instances carry no ``__dict__``.

    Attributes:
        pc: program counter of the triggering instruction.
        address: byte address accessed.
        access_type: load or store.
        instr_gap: number of non-memory instructions preceding this access
            in program order (used by the core timing model).
    """

    pc: int
    address: int
    access_type: AccessType = AccessType.LOAD
    instr_gap: int = 0

    @property
    def block(self) -> int:
        """Cache-block number of this access."""
        return self.address >> BLOCK_SHIFT


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """A prefetch candidate produced by a prefetcher.

    Attributes:
        address: byte address (block aligned addresses are recommended but
            any address within the target block is accepted).
        hint: which cache level the block should be filled into.
        origin_pc: PC of the access that triggered the prediction, kept for
            bookkeeping / debugging.
        metadata: free-form tag used by some prefetchers (e.g. which internal
            path produced the request) -- only used for statistics.
    """

    address: int
    hint: PrefetchHint = PrefetchHint.L1
    origin_pc: int = 0
    metadata: str = ""

    @property
    def block(self) -> int:
        """Cache-block number of the requested prefetch."""
        return self.address >> BLOCK_SHIFT


@dataclass(slots=True)
class AccessResult:
    """Outcome of routing one demand access through the hierarchy.

    Attributes:
        latency: total load-to-use latency in cycles.
        hit_level: name of the level that served the access
            (``"L1D"``, ``"L2C"``, ``"LLC"``, ``"DRAM"``).
        served_by_prefetch: True when the block was present (or in flight)
            because of a prefetch and had not yet been demanded.
        late_prefetch: True when the block was still in flight from a
            prefetch when the demand arrived (partial latency savings).
    """

    latency: int
    hit_level: str
    served_by_prefetch: bool = False
    late_prefetch: bool = False


def block_number(address: int) -> int:
    """Return the cache-block number containing ``address``."""
    return address >> BLOCK_SHIFT


def block_address(block: int) -> int:
    """Return the base byte address of cache block ``block``."""
    return block << BLOCK_SHIFT


def region_number(address: int, region_size: int = DEFAULT_REGION_SIZE) -> int:
    """Return the spatial-region number containing ``address``."""
    return address // region_size


def region_base_address(region: int, region_size: int = DEFAULT_REGION_SIZE) -> int:
    """Return the base byte address of region ``region``."""
    return region * region_size


def block_offset_in_region(
    address: int, region_size: int = DEFAULT_REGION_SIZE
) -> int:
    """Return the block offset (0..blocks_per_region-1) of ``address``.

    This is the quantity the paper calls the *offset*: the distance of the
    block from the beginning of its region, measured in blocks.
    """
    return (address % region_size) >> BLOCK_SHIFT


def blocks_per_region(region_size: int = DEFAULT_REGION_SIZE) -> int:
    """Number of cache blocks per spatial region of ``region_size`` bytes."""
    return region_size // BLOCK_SIZE


def address_from_region_offset(
    region: int, offset: int, region_size: int = DEFAULT_REGION_SIZE
) -> int:
    """Compose a block-aligned byte address from a region number and offset."""
    return region * region_size + (offset << BLOCK_SHIFT)


class RegionGeometry:
    """Precomputed shift/mask arithmetic for one spatial-region size.

    The per-access hot path of every spatial prefetcher decomposes each byte
    address into ``(region, offset)``.  Doing that with the module-level
    helpers costs a function call plus a division per access; this object
    precomputes the log2 shift and the offset mask once so the hot path is a
    pair of shifts.  Region sizes that are not a power of two (none of the
    paper's configurations, but allowed) fall back to division with
    identical results.

    Attributes:
        region_size: region size in bytes.
        blocks_per_region: number of 64-byte blocks per region.
        region_shift: ``log2(region_size)`` when it is a power of two,
            otherwise ``None``.
        offset_mask: ``blocks_per_region - 1`` when usable as a mask.
    """

    __slots__ = ("region_size", "blocks_per_region", "region_shift", "offset_mask")

    def __init__(self, region_size: int = DEFAULT_REGION_SIZE) -> None:
        if region_size < BLOCK_SIZE:
            raise ValueError("region size must be at least one cache block")
        self.region_size = region_size
        self.blocks_per_region = region_size // BLOCK_SIZE
        if region_size & (region_size - 1) == 0:
            self.region_shift: Optional[int] = region_size.bit_length() - 1
            self.offset_mask: Optional[int] = self.blocks_per_region - 1
        else:
            self.region_shift = None
            self.offset_mask = None

    def region_of(self, address: int) -> int:
        """Region number containing ``address`` (= :func:`region_number`)."""
        shift = self.region_shift
        if shift is not None:
            return address >> shift
        return address // self.region_size

    def offset_of(self, address: int) -> int:
        """Block offset of ``address`` (= :func:`block_offset_in_region`)."""
        mask = self.offset_mask
        if mask is not None:
            return (address >> BLOCK_SHIFT) & mask
        return (address % self.region_size) >> BLOCK_SHIFT

    def split(self, address: int) -> "tuple[int, int]":
        """Return ``(region, offset)`` of ``address`` in one call."""
        shift = self.region_shift
        if shift is not None:
            return address >> shift, (address >> BLOCK_SHIFT) & self.offset_mask
        return (
            address // self.region_size,
            (address % self.region_size) >> BLOCK_SHIFT,
        )

    def address_of(self, region: int, offset: int) -> int:
        """Block-aligned byte address of ``(region, offset)``."""
        shift = self.region_shift
        if shift is not None:
            return (region << shift) | (offset << BLOCK_SHIFT)
        return region * self.region_size + (offset << BLOCK_SHIFT)

    def region_of_block(self, block: int) -> int:
        """Region number containing cache block ``block``."""
        shift = self.region_shift
        if shift is not None:
            return block >> (shift - BLOCK_SHIFT)
        return (block << BLOCK_SHIFT) // self.region_size
