"""Trace-driven, cycle-approximate memory-hierarchy simulator.

This package is the substrate the paper relies on (ChampSim in the original
work).  It provides:

* :mod:`repro.sim.config` -- system configuration dataclasses mirroring the
  paper's Table II (core width, ROB size, cache geometry, DRAM channels).
* :mod:`repro.sim.cache` -- set-associative caches with LRU replacement,
  MSHRs and per-block prefetch bookkeeping.
* :mod:`repro.sim.dram` -- a channel/row-buffer/bandwidth DRAM model.
* :mod:`repro.sim.hierarchy` -- a three-level hierarchy (L1D, L2C, shared
  LLC) that routes demand and prefetch requests and computes latencies.
* :mod:`repro.sim.cpu` -- an analytic out-of-order core timing model
  (ROB-windowed, in-order retire) converting access latencies into cycles.
* :mod:`repro.sim.simulator` / :mod:`repro.sim.multicore` -- drivers that
  run a trace (or a multi-core mix) against a configured hierarchy plus a
  prefetcher and return a :class:`repro.sim.stats.SimulationStats`.
"""

from repro.sim.config import (
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    SystemConfig,
    default_system_config,
)
from repro.sim.types import (
    AccessType,
    BLOCK_SIZE,
    MemoryAccess,
    PrefetchHint,
    PrefetchRequest,
    block_number,
    block_offset_in_region,
    region_base_address,
    region_number,
)
from repro.sim.cache import Cache, CacheBlock
from repro.sim.dram import DRAMModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.cpu import CoreTimingModel
from repro.sim.stats import MultiCoreStats, PrefetchStats, SimulationStats
from repro.sim.simulator import SingleCoreSimulator, simulate_trace
from repro.sim.multicore import MIX_MODES, MultiCoreSimulator, simulate_mix

__all__ = [
    "AccessType",
    "BLOCK_SIZE",
    "Cache",
    "CacheBlock",
    "CacheConfig",
    "CacheHierarchy",
    "CoreConfig",
    "CoreTimingModel",
    "DRAMConfig",
    "DRAMModel",
    "MIX_MODES",
    "MemoryAccess",
    "MultiCoreSimulator",
    "MultiCoreStats",
    "PrefetchHint",
    "PrefetchRequest",
    "PrefetchStats",
    "SimulationStats",
    "SingleCoreSimulator",
    "SystemConfig",
    "block_number",
    "block_offset_in_region",
    "default_system_config",
    "region_base_address",
    "region_number",
    "simulate_mix",
    "simulate_trace",
]
