"""Single-core simulation driver.

Ties together a trace (an iterable of :class:`repro.sim.types.MemoryAccess`),
a :class:`repro.sim.hierarchy.CacheHierarchy`, a prefetcher and the core
timing model, producing a :class:`repro.sim.stats.SimulationStats`.

The driver mirrors the paper's methodology: an optional warm-up phase trains
the caches and the prefetcher without counting statistics, then a measured
phase of a configurable number of instructions; traces that end early are
replayed from the start.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.sim.config import SystemConfig, default_system_config
from repro.sim.cpu import CoreTimingModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.stats import SimulationStats
from repro.sim.types import AccessType, MemoryAccess


class _TraceReplayer:
    """Iterator over a trace source, optionally replaying from the start.

    Three source shapes are accepted:

    * a ``list``/``tuple`` — indexed replay, the fully-materialized fast
      path (unchanged pre-streaming behaviour);
    * a *re-openable* iterable (e.g.
      :class:`repro.workloads.formats.TraceFile`) — each pass opens a
      fresh iterator, so arbitrarily long traces replay in O(1) memory;
    * a one-shot iterator — streamed once; it cannot replay, so it simply
      ends when exhausted.
    """

    def __init__(self, source) -> None:
        self.replays = 0
        self.yielded_any = False
        self._sequence: Optional[Sequence[MemoryAccess]] = None
        self._factory = None
        self._iterator: Optional[Iterator[MemoryAccess]] = None
        self._index = 0
        if isinstance(source, (list, tuple)):
            if not source:
                raise ValueError("cannot simulate an empty trace")
            self._sequence = source
        elif hasattr(source, "__next__"):
            self._iterator = source
        else:
            self._factory = source
            self._iterator = iter(source)

    @property
    def known_instruction_total(self) -> Optional[int]:
        """Total instructions per pass, when the source is materialized."""
        if self._sequence is not None:
            return sum(a.instr_gap + 1 for a in self._sequence)
        return None

    @property
    def reopenable(self) -> bool:
        """Whether the source can be iterated again from the start."""
        return self._factory is not None

    def count_pass_instructions(self) -> int:
        """One pass's instruction total, via a dedicated counting pass.

        Only valid for re-openable sources; the replay position is not
        disturbed (a fresh iterator is opened just for counting).
        """
        return sum(a.instr_gap + 1 for a in iter(self._factory))

    def next_access(self, replay: bool = True) -> Optional[MemoryAccess]:
        """Return the next access, or ``None`` at the end of the trace.

        With ``replay`` the trace restarts (re-opening streamed sources) so
        only one-shot iterators ever end; without it, every source ends at
        the end of its current pass — the single-pass semantics used when
        no instruction budget bounds the run.
        """
        if self._sequence is not None:
            if not replay and self.replays > 0:
                return None
            access = self._sequence[self._index]
            self._index += 1
            if self._index >= len(self._sequence):
                self._index = 0
                self.replays += 1
            self.yielded_any = True
            return access
        try:
            access = next(self._iterator)
        except StopIteration:
            self.replays += 1
            if self._factory is None or not replay:
                return None
            self._iterator = iter(self._factory)
            try:
                access = next(self._iterator)
            except StopIteration:
                raise ValueError("cannot simulate an empty trace") from None
        self.yielded_any = True
        return access

    def __next__(self) -> MemoryAccess:
        access = self.next_access(replay=True)
        if access is None:
            raise StopIteration
        return access

    def __iter__(self) -> "Iterator[MemoryAccess]":
        return self


class SingleCoreSimulator:
    """Runs one trace against one configured core + hierarchy + prefetcher."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        prefetcher=None,
        name: str = "",
    ) -> None:
        self.config = config if config is not None else default_system_config(1)
        self.prefetcher = prefetcher
        self.stats = SimulationStats(
            name=name,
            prefetcher=getattr(prefetcher, "name", "none") if prefetcher else "none",
        )
        self.hierarchy = CacheHierarchy(self.config, stats=self.stats)
        self.core = CoreTimingModel(self.config.core)
        if prefetcher is not None and hasattr(prefetcher, "on_cache_eviction"):
            self.hierarchy.l1d.eviction_listeners.append(
                lambda victim: prefetcher.on_cache_eviction(victim.block)
            )

    # ------------------------------------------------------------------ #
    def run(
        self,
        trace: Union[Sequence[MemoryAccess], Iterable[MemoryAccess]],
        max_instructions: Optional[int] = None,
        warmup_instructions: int = 0,
    ) -> SimulationStats:
        """Simulate ``trace`` and return the collected statistics.

        ``trace`` may be a materialized sequence, a re-openable streaming
        handle (:class:`repro.workloads.formats.TraceFile`) or a one-shot
        iterator; streamed sources are consumed lazily in O(1) memory.

        ``max_instructions`` bounds the measured phase (counting both memory
        and non-memory instructions), replaying the trace as needed; when
        omitted, exactly one full pass over the trace is simulated.
        ``warmup_instructions`` are executed first with full
        cache/prefetcher training but without resetting the cycle clock
        (statistics counters are cleared at the boundary).
        """
        if max_instructions is not None and hasattr(trace, "__next__"):
            # An explicit budget may require replaying past the end of the
            # trace, which a one-shot iterator cannot do — materialize it
            # (the historical behaviour).  Re-openable handles replay by
            # re-opening and stay O(1)-memory.
            trace = list(trace)
        replayer = _TraceReplayer(trace)

        start_instr = 0
        start_cycles = 0.0
        if warmup_instructions > 0:
            self._execute(replayer, warmup_instructions)
            self._reset_measurement_counters()
            snapshot = self.core.snapshot()
            start_instr = snapshot.instructions
            start_cycles = snapshot.cycles

        if max_instructions is None:
            # Materialized traces keep the historical exact budget (one
            # pass's instructions, wrapping mid-access never truncates);
            # streamed traces run single-pass until exhaustion, which
            # executes the identical access sequence.  When warmup consumed
            # part of the stream, a re-openable source pays one counting
            # pass so its measured budget matches the materialized path
            # exactly (one-shot iterators measure the stream's remainder).
            max_instructions = replayer.known_instruction_total
            if max_instructions is None and warmup_instructions > 0:
                if replayer.reopenable:
                    max_instructions = replayer.count_pass_instructions()
        self._execute(replayer, max_instructions)
        if not replayer.yielded_any:
            raise ValueError("cannot simulate an empty trace")

        self.hierarchy.flush_prefetches(self.core.current_cycle)
        instructions, cycles = self.core.finalize()
        self.stats.instructions = instructions - start_instr
        self.stats.cycles = max(1, int(cycles - start_cycles))
        return self.stats

    # ------------------------------------------------------------------ #
    def _execute(
        self, replayer: _TraceReplayer, instruction_budget: Optional[int]
    ) -> None:
        """Execute until the budget is spent (``None`` = one full pass)."""
        unbounded = instruction_budget is None
        executed = 0
        while unbounded or executed < instruction_budget:
            access = replayer.next_access(replay=not unbounded)
            if access is None:
                break
            self.core.advance_non_memory(access.instr_gap)
            executed += access.instr_gap

            issue_cycle = self.core.begin_memory_access()
            executed += 1

            self.hierarchy.issue_queued_prefetches(issue_cycle)
            result = self.hierarchy.demand_access(
                access.address,
                issue_cycle,
                is_store=access.access_type is AccessType.STORE,
            )
            self.core.complete_memory_access(result.latency)

            if self.prefetcher is not None and access.access_type is AccessType.LOAD:
                requests = self.prefetcher.train(
                    access.pc, access.address, issue_cycle, result
                )
                if requests:
                    self.hierarchy.enqueue_prefetches(requests, issue_cycle)

    def _reset_measurement_counters(self) -> None:
        """Clear statistics at the warm-up/measurement boundary.

        The hierarchy's eviction listeners read ``self.hierarchy.stats``
        dynamically, so swapping the stats object is sufficient; cache and
        prefetcher *state* is deliberately preserved (that is the point of
        warming up).
        """
        fresh = SimulationStats(name=self.stats.name, prefetcher=self.stats.prefetcher)
        self.stats = fresh
        self.hierarchy.stats = fresh


def simulate_trace(
    trace: Union[Sequence[MemoryAccess], Iterable[MemoryAccess]],
    prefetcher=None,
    config: Optional[SystemConfig] = None,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    name: str = "",
) -> SimulationStats:
    """Convenience wrapper: build a simulator, run it, return the stats."""
    simulator = SingleCoreSimulator(config=config, prefetcher=prefetcher, name=name)
    return simulator.run(
        trace,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
    )
