"""Single-core simulation driver.

Ties together a trace (an iterable of :class:`repro.sim.types.MemoryAccess`),
a :class:`repro.sim.hierarchy.CacheHierarchy`, a prefetcher and the core
timing model, producing a :class:`repro.sim.stats.SimulationStats`.

The driver mirrors the paper's methodology: an optional warm-up phase trains
the caches and the prefetcher without counting statistics, then a measured
phase of a configurable number of instructions; traces that end early are
replayed from the start.

``_execute`` is the innermost loop of every experiment: all hot methods are
bound to locals once per call, and fully-materialized traces run through a
dedicated indexing loop that avoids the per-access source-shape branching of
:meth:`_TraceReplayer.next_access`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.sim.config import SystemConfig, default_system_config
from repro.sim.cpu import CoreTimingModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.stats import SimulationStats
from repro.sim.types import AccessType, MemoryAccess


def _count_instructions(accesses: Iterable[MemoryAccess]) -> int:
    """Total instructions carried by ``accesses`` (memory + gap)."""
    return sum(a.instr_gap + 1 for a in accesses)


class _TraceReplayer:
    """Iterator over a trace source, optionally replaying from the start.

    Three source shapes are accepted:

    * a ``list``/``tuple`` — indexed replay, the fully-materialized fast
      path (unchanged pre-streaming behaviour);
    * a *re-openable* iterable (e.g.
      :class:`repro.workloads.formats.TraceFile`) — each pass opens a
      fresh iterator, so arbitrarily long traces replay in O(1) memory;
    * a one-shot iterator — streamed once; it cannot replay, so it simply
      ends when exhausted.
    """

    def __init__(self, source) -> None:
        self.replays = 0
        self.yielded_any = False
        self._sequence: Optional[Sequence[MemoryAccess]] = None
        self._factory = None
        self._iterator: Optional[Iterator[MemoryAccess]] = None
        self._index = 0
        self._known_total: Optional[int] = None
        if isinstance(source, (list, tuple)):
            if not source:
                raise ValueError("cannot simulate an empty trace")
            self._sequence = source
        elif hasattr(source, "__next__"):
            self._iterator = source
        else:
            self._factory = source
            self._iterator = iter(source)

    @property
    def known_instruction_total(self) -> Optional[int]:
        """Total instructions per pass, when the source is materialized.

        Memoized: the sum over the whole trace is computed at most once per
        replayer, not once per caller.
        """
        if self._sequence is None:
            return None
        if self._known_total is None:
            self._known_total = _count_instructions(self._sequence)
        return self._known_total

    @property
    def reopenable(self) -> bool:
        """Whether the source can be iterated again from the start."""
        return self._factory is not None

    def count_pass_instructions(self) -> int:
        """One pass's instruction total, via a dedicated counting pass.

        Only valid for re-openable sources; the replay position is not
        disturbed (a fresh iterator is opened just for counting).  Memoized
        alongside :attr:`known_instruction_total` — the source is
        deterministic, so one counting pass serves every caller.
        """
        if self._known_total is None:
            self._known_total = _count_instructions(iter(self._factory))
        return self._known_total

    def next_access(self, replay: bool = True) -> Optional[MemoryAccess]:
        """Return the next access, or ``None`` at the end of the trace.

        With ``replay`` the trace restarts (re-opening streamed sources) so
        only one-shot iterators ever end; without it, every source ends at
        the end of its current pass — the single-pass semantics used when
        no instruction budget bounds the run.
        """
        sequence = self._sequence
        if sequence is not None:
            if not replay and self.replays > 0:
                return None
            access = sequence[self._index]
            self._index += 1
            if self._index >= len(sequence):
                self._index = 0
                self.replays += 1
            self.yielded_any = True
            return access
        try:
            access = next(self._iterator)
        except StopIteration:
            self.replays += 1
            if self._factory is None or not replay:
                return None
            self._iterator = iter(self._factory)
            try:
                access = next(self._iterator)
            except StopIteration:
                raise ValueError("cannot simulate an empty trace") from None
        self.yielded_any = True
        return access

    def __next__(self) -> MemoryAccess:
        access = self.next_access(replay=True)
        if access is None:
            raise StopIteration
        return access

    def __iter__(self) -> "Iterator[MemoryAccess]":
        return self


class SingleCoreSimulator:
    """Runs one trace against one configured core + hierarchy + prefetcher."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        prefetcher=None,
        name: str = "",
    ) -> None:
        self.config = config if config is not None else default_system_config(1)
        self.prefetcher = prefetcher
        self.stats = SimulationStats(
            name=name,
            prefetcher=getattr(prefetcher, "name", "none") if prefetcher else "none",
        )
        self.hierarchy = CacheHierarchy(self.config, stats=self.stats)
        self.core = CoreTimingModel(self.config.core)
        if prefetcher is not None and hasattr(prefetcher, "on_cache_eviction"):
            listeners = self.hierarchy.l1d.eviction_listeners
            # Bound method, not a per-instance lambda: cheaper to call and
            # comparable by identity, so re-running a simulator (or wiring a
            # reused prefetcher into a rebuilt hierarchy) can never stack a
            # second copy of the same listener.
            if self._notify_prefetcher_eviction not in listeners:
                listeners.append(self._notify_prefetcher_eviction)

    def _notify_prefetcher_eviction(self, victim) -> None:
        """Forward an L1D eviction to the prefetcher's region deactivation."""
        self.prefetcher.on_cache_eviction(victim.block)

    # ------------------------------------------------------------------ #
    def run(
        self,
        trace: Union[Sequence[MemoryAccess], Iterable[MemoryAccess]],
        max_instructions: Optional[int] = None,
        warmup_instructions: int = 0,
    ) -> SimulationStats:
        """Simulate ``trace`` and return the collected statistics.

        ``trace`` may be a materialized sequence, a re-openable streaming
        handle (:class:`repro.workloads.formats.TraceFile`) or a one-shot
        iterator; streamed sources are consumed lazily in O(1) memory.

        ``max_instructions`` bounds the measured phase (counting both memory
        and non-memory instructions), replaying the trace as needed; when
        omitted, exactly one full pass over the trace is simulated.
        ``warmup_instructions`` are executed first with full
        cache/prefetcher training but without resetting the cycle clock
        (statistics counters are cleared at the boundary).
        """
        if max_instructions is not None and hasattr(trace, "__next__"):
            # An explicit budget may require replaying past the end of the
            # trace, which a one-shot iterator cannot do — materialize it
            # (the historical behaviour).  Re-openable handles replay by
            # re-opening and stay O(1)-memory.
            trace = list(trace)
        replayer = _TraceReplayer(trace)

        start_instr = 0
        start_cycles = 0.0
        if warmup_instructions > 0:
            self._execute(replayer, warmup_instructions)
            self._reset_measurement_counters()
            snapshot = self.core.snapshot()
            start_instr = snapshot.instructions
            start_cycles = snapshot.cycles

        if max_instructions is None:
            # Materialized traces keep the historical exact budget (one
            # pass's instructions, wrapping mid-access never truncates);
            # streamed traces run single-pass until exhaustion, which
            # executes the identical access sequence.  When warmup consumed
            # part of the stream, a re-openable source pays one counting
            # pass so its measured budget matches the materialized path
            # exactly (one-shot iterators measure the stream's remainder).
            max_instructions = replayer.known_instruction_total
            if max_instructions is None and warmup_instructions > 0:
                if replayer.reopenable:
                    max_instructions = replayer.count_pass_instructions()
        self._execute(replayer, max_instructions)
        if not replayer.yielded_any:
            raise ValueError("cannot simulate an empty trace")

        self.hierarchy.flush_prefetches(self.core.current_cycle)
        instructions, cycles = self.core.finalize()
        self.stats.instructions = instructions - start_instr
        self.stats.cycles = max(1, int(cycles - start_cycles))
        return self.stats

    # ------------------------------------------------------------------ #
    def _execute(
        self, replayer: _TraceReplayer, instruction_budget: Optional[int]
    ) -> None:
        """Execute until the budget is spent (``None`` = one full pass)."""
        unbounded = instruction_budget is None
        executed = 0

        # Bind the per-access call chain once.
        core = self.core
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        advance_non_memory = core.advance_non_memory
        begin_memory_access = core.begin_memory_access
        complete_memory_access = core.complete_memory_access
        issue_queued_prefetches = hierarchy.issue_queued_prefetches
        demand_access = hierarchy.demand_access
        enqueue_prefetches = hierarchy.enqueue_prefetches
        # The deque itself is bound so the per-access "anything queued?"
        # check is a C-level truthiness test, not a method call.
        pending_prefetches = hierarchy.prefetch_queue._queue
        train = prefetcher.train if prefetcher is not None else None
        load = AccessType.LOAD
        store = AccessType.STORE

        sequence = replayer._sequence
        if sequence is not None:
            # Materialized fast path: direct indexing, no per-access source
            # dispatch.  Replay semantics match next_access(): a bounded run
            # wraps indefinitely, an unbounded run stops after one pass.
            index = replayer._index
            length = len(sequence)
            yielded = False
            while unbounded or executed < instruction_budget:
                if unbounded and replayer.replays > 0:
                    break
                access = sequence[index]
                index += 1
                if index >= length:
                    index = 0
                    replayer.replays += 1
                yielded = True

                gap = access.instr_gap
                if gap > 0:
                    advance_non_memory(gap)
                issue_cycle = begin_memory_access()
                executed += gap + 1

                if pending_prefetches:
                    issue_queued_prefetches(issue_cycle)
                access_type = access.access_type
                result = demand_access(
                    access.address, issue_cycle, access_type is store
                )
                complete_memory_access(result.latency)

                if train is not None and access_type is load:
                    requests = train(
                        access.pc, access.address, issue_cycle, result
                    )
                    if requests:
                        enqueue_prefetches(requests, issue_cycle)
            replayer._index = index
            if yielded:
                replayer.yielded_any = True
            return

        next_access = replayer.next_access
        replay = not unbounded
        while unbounded or executed < instruction_budget:
            access = next_access(replay=replay)
            if access is None:
                break
            gap = access.instr_gap
            if gap > 0:
                advance_non_memory(gap)
            issue_cycle = begin_memory_access()
            executed += gap + 1

            if pending_prefetches:
                issue_queued_prefetches(issue_cycle)
            access_type = access.access_type
            result = demand_access(access.address, issue_cycle, access_type is store)
            complete_memory_access(result.latency)

            if train is not None and access_type is load:
                requests = train(access.pc, access.address, issue_cycle, result)
                if requests:
                    enqueue_prefetches(requests, issue_cycle)

    def _reset_measurement_counters(self) -> None:
        """Clear statistics at the warm-up/measurement boundary.

        The hierarchy's eviction listeners read ``self.hierarchy.stats``
        dynamically, so swapping the stats object is sufficient; cache and
        prefetcher *state* is deliberately preserved (that is the point of
        warming up).
        """
        fresh = SimulationStats(name=self.stats.name, prefetcher=self.stats.prefetcher)
        self.stats = fresh
        self.hierarchy.stats = fresh


def simulate_trace(
    trace: Union[Sequence[MemoryAccess], Iterable[MemoryAccess]],
    prefetcher=None,
    config: Optional[SystemConfig] = None,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    name: str = "",
) -> SimulationStats:
    """Convenience wrapper: build a simulator, run it, return the stats."""
    simulator = SingleCoreSimulator(config=config, prefetcher=prefetcher, name=name)
    return simulator.run(
        trace,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
    )
