"""Single-core simulation driver.

Ties together a trace (an iterable of :class:`repro.sim.types.MemoryAccess`),
a :class:`repro.sim.hierarchy.CacheHierarchy`, a prefetcher and the core
timing model, producing a :class:`repro.sim.stats.SimulationStats`.

The driver mirrors the paper's methodology: an optional warm-up phase trains
the caches and the prefetcher without counting statistics, then a measured
phase of a configurable number of instructions; traces that end early are
replayed from the start.

``_execute`` is the innermost loop of every experiment: all hot methods are
bound to locals once per call, and fully-materialized traces run through a
dedicated indexing loop that avoids the per-access source-shape branching of
:meth:`_TraceReplayer.next_access`.

On top of the scalar kernel sits the **batched** kernel
(:meth:`SingleCoreSimulator._execute_batched`): traces decoded into parallel
arrays (:class:`~repro.sim.batch.BatchedTrace`) are driven in chunks — the
run of consecutive pure L1 hits with a quiescent hierarchy (MSHR empty,
prefetch queue empty, no prefetch provenance to account) is detected by
:meth:`~repro.sim.cache.Cache.demand_hit_run` and retired with per-run
arithmetic (the run-timing loop of
:meth:`~repro.sim.cpu.CoreTimingModel.advance_hit_run`, inlined so the core
state stays in driver locals, plus batched statistics updates), falling
back to the scalar per-access path at
the first access that misses or needs prefetch bookkeeping.  Prefetcher
training order is preserved exactly: with a prefetcher attached, every
demand access still runs through the per-access path (over the decoded
arrays, with the hierarchy's L1-hit branch inlined), because ``train`` must
observe every access in order.  Both kernels produce bit-identical
statistics — the golden-stats suite pins this.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.sim.batch import BatchedTrace, ChunkedTraceStream, decode_trace
from repro.sim.cache import Cache, CacheBlock, MSHREntry
from repro.sim.config import SystemConfig, default_system_config
from repro.sim.cpu import CoreTimingModel
from repro.sim.dram import DRAMModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.stats import SimulationStats
from repro.sim.types import (
    AccessResult,
    AccessType,
    MemoryAccess,
    PrefetchHint,
    PrefetchRequest,
)

#: Accepted values of the ``batch`` execution knob.
BATCH_MODES = ("auto", "on", "off")

#: Accepted values of the ``kernel`` execution knob: the prefetcher-state
#: tier.  ``"auto"``/``"python"`` run the (pure-Python) tier the registry
#: selected; ``"compiled"`` swaps flat-state prefetchers for their C twins
#: when the optional :mod:`repro._kernels` extension is built, falling
#: back silently otherwise.  All tiers are bit-exact, so this is purely a
#: performance knob (and is excluded from job cache keys, like ``batch``).
KERNEL_MODES = ("auto", "python", "compiled")


def resolve_kernel(prefetcher, kernel: str):
    """Apply the ``kernel`` knob to ``prefetcher`` (graceful fallback).

    Returns the prefetcher to simulate with: the compiled twin under
    ``kernel="compiled"`` when one is available (flat-state prefetcher,
    supported geometry, extension built), the input unchanged otherwise.
    """
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    if kernel == "compiled" and prefetcher is not None:
        from repro.prefetchers.compiled import compiled_twin

        twin = compiled_twin(prefetcher)
        if twin is not None:
            return twin
    return prefetcher


def _count_instructions(accesses: Iterable[MemoryAccess]) -> int:
    """Total instructions carried by ``accesses`` (memory + gap)."""
    return sum(a.instr_gap + 1 for a in accesses)


class _TraceReplayer:
    """Iterator over a trace source, optionally replaying from the start.

    Three source shapes are accepted:

    * a ``list``/``tuple`` — indexed replay, the fully-materialized fast
      path (unchanged pre-streaming behaviour);
    * a *re-openable* iterable (e.g.
      :class:`repro.workloads.formats.TraceFile`) — each pass opens a
      fresh iterator, so arbitrarily long traces replay in O(1) memory;
    * a one-shot iterator — streamed once; it cannot replay, so it simply
      ends when exhausted.
    """

    def __init__(self, source) -> None:
        self.replays = 0
        self.yielded_any = False
        self._sequence: Optional[Sequence[MemoryAccess]] = None
        self._batched: Optional[BatchedTrace] = None
        self._chunked: Optional[ChunkedTraceStream] = None
        self._chunk_replayer: "Optional[_TraceReplayer]" = None
        self._chunk_remaining = 0
        self._factory = None
        self._iterator: Optional[Iterator[MemoryAccess]] = None
        self._index = 0
        self._known_total: Optional[int] = None
        if isinstance(source, ChunkedTraceStream):
            # Chunk-wise batched execution of a re-openable stream; the
            # underlying source doubles as the counting-pass factory.
            # next_access() is never used on this shape (the chunked
            # executor owns consumption), so no scalar iterator is opened.
            self._chunked = source
            self._factory = source.source
        elif isinstance(source, BatchedTrace):
            # Decoded arrays: the batched kernel drives these directly; the
            # sequence view keeps every scalar code path working unchanged.
            if not len(source):
                raise ValueError("cannot simulate an empty trace")
            self._batched = source
            self._sequence = source
            self._known_total = source.instruction_total
        elif isinstance(source, (list, tuple)):
            if not source:
                raise ValueError("cannot simulate an empty trace")
            self._sequence = source
        elif hasattr(source, "__next__"):
            self._iterator = source
        else:
            self._factory = source
            self._iterator = iter(source)

    @property
    def known_instruction_total(self) -> Optional[int]:
        """Total instructions per pass, when the source is materialized.

        Memoized: the sum over the whole trace is computed at most once per
        replayer, not once per caller.
        """
        if self._sequence is None:
            return None
        if self._known_total is None:
            self._known_total = _count_instructions(self._sequence)
        return self._known_total

    @property
    def reopenable(self) -> bool:
        """Whether the source can be iterated again from the start."""
        return self._factory is not None

    def count_pass_instructions(self) -> int:
        """One pass's instruction total, via a dedicated counting pass.

        Only valid for re-openable sources; the replay position is not
        disturbed (a fresh iterator is opened just for counting).  Memoized
        alongside :attr:`known_instruction_total` — the source is
        deterministic, so one counting pass serves every caller.
        """
        if self._known_total is None:
            self._known_total = _count_instructions(iter(self._factory))
        return self._known_total

    def next_access(self, replay: bool = True) -> Optional[MemoryAccess]:
        """Return the next access, or ``None`` at the end of the trace.

        With ``replay`` the trace restarts (re-opening streamed sources) so
        only one-shot iterators ever end; without it, every source ends at
        the end of its current pass — the single-pass semantics used when
        no instruction budget bounds the run.
        """
        sequence = self._sequence
        if sequence is not None:
            if not replay and self.replays > 0:
                return None
            access = sequence[self._index]
            self._index += 1
            if self._index >= len(sequence):
                self._index = 0
                self.replays += 1
            self.yielded_any = True
            return access
        try:
            access = next(self._iterator)
        except StopIteration:
            self.replays += 1
            if self._factory is None or not replay:
                return None
            self._iterator = iter(self._factory)
            try:
                access = next(self._iterator)
            except StopIteration:
                raise ValueError("cannot simulate an empty trace") from None
        self.yielded_any = True
        return access

    def __next__(self) -> MemoryAccess:
        access = self.next_access(replay=True)
        if access is None:
            raise StopIteration
        return access

    def __iter__(self) -> "Iterator[MemoryAccess]":
        return self


class SingleCoreSimulator:
    """Runs one trace against one configured core + hierarchy + prefetcher."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        prefetcher=None,
        name: str = "",
        kernel: str = "auto",
    ) -> None:
        if kernel not in KERNEL_MODES:
            raise ValueError(
                f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
            )
        self.config = config if config is not None else default_system_config(1)
        self.prefetcher = prefetcher
        #: Requested kernel tier.  ``"compiled"`` additionally engages the
        #: C batched driver (:mod:`repro.sim.driver`) when the run shape
        #: supports it; the other modes always use the Python driver.
        self.kernel_mode = kernel
        #: Tier that actually executed the last :meth:`run`:
        #: ``"compiled-driver"`` (C driver loop), ``"compiled"`` (Python
        #: driver calling compiled train kernels) or ``"python"``.
        self.kernel_tier_used: Optional[str] = None
        #: Why the C driver did not engage (``None`` when it did, or when
        #: it was never requested).
        self.kernel_decline_reason: Optional[str] = None
        self._driver = None
        self.stats = SimulationStats(
            name=name,
            prefetcher=getattr(prefetcher, "name", "none") if prefetcher else "none",
        )
        self.hierarchy = CacheHierarchy(self.config, stats=self.stats)
        self.core = CoreTimingModel(self.config.core)
        if prefetcher is not None and hasattr(prefetcher, "on_cache_eviction"):
            listeners = self.hierarchy.l1d.eviction_listeners
            # Bound method, not a per-instance lambda: cheaper to call and
            # comparable by identity, so re-running a simulator (or wiring a
            # reused prefetcher into a rebuilt hierarchy) can never stack a
            # second copy of the same listener.
            if self._notify_prefetcher_eviction not in listeners:
                listeners.append(self._notify_prefetcher_eviction)

    def _notify_prefetcher_eviction(self, victim) -> None:
        """Forward an L1D eviction to the prefetcher's region deactivation."""
        self.prefetcher.on_cache_eviction(victim.block)

    # ------------------------------------------------------------------ #
    def run(
        self,
        trace: Union[Sequence[MemoryAccess], Iterable[MemoryAccess]],
        max_instructions: Optional[int] = None,
        warmup_instructions: int = 0,
        batch: str = "auto",
    ) -> SimulationStats:
        """Simulate ``trace`` and return the collected statistics.

        ``trace`` may be a materialized sequence, a pre-decoded
        :class:`~repro.sim.batch.BatchedTrace`, a re-openable streaming
        handle (:class:`repro.workloads.formats.TraceFile`) or a one-shot
        iterator; streamed sources are consumed lazily in O(1) memory.

        ``batch`` selects the execution kernel — statistics are
        bit-identical either way:

        * ``"auto"`` (default): the batched kernel for array-decodable
          sources (pre-decoded traces as-is, materialized sequences decoded
          here), the scalar kernel for streamed sources (which keep their
          O(1)-memory property);
        * ``"on"``: additionally materializes + decodes streamed sources
          (trading the O(1) memory for the batched kernel's throughput);
        * ``"off"``: always the scalar kernel.

        ``max_instructions`` bounds the measured phase (counting both memory
        and non-memory instructions), replaying the trace as needed; when
        omitted, exactly one full pass over the trace is simulated.
        ``warmup_instructions`` are executed first with full
        cache/prefetcher training but without resetting the cycle clock
        (statistics counters are cleared at the boundary).
        """
        if batch not in BATCH_MODES:
            raise ValueError(
                f"unknown batch mode {batch!r}; expected one of {BATCH_MODES}"
            )
        if max_instructions is not None and hasattr(trace, "__next__"):
            # An explicit budget may require replaying past the end of the
            # trace, which a one-shot iterator cannot do — materialize it
            # (the historical behaviour).  Re-openable handles replay by
            # re-opening and stay O(1)-memory.
            trace = list(trace)
        if batch != "off" and self.hierarchy.l1d._set_mask is not None:
            # The batched kernel requires the mask-based set geometry (every
            # configuration of the paper); odd set counts stay scalar.
            decoded = decode_trace(trace)
            if decoded is None and batch == "on":
                decoded = BatchedTrace.from_accesses(iter(trace))
            if decoded is not None:
                trace = decoded
            elif batch == "auto" and not hasattr(trace, "__next__"):
                # Re-openable streamed source (e.g. a TraceFile): run the
                # batched kernel chunk-wise at bounded memory instead of
                # falling back to the scalar kernel.  One-shot iterators
                # keep the scalar path (they cannot replay).
                trace = ChunkedTraceStream(trace)
        elif isinstance(trace, BatchedTrace):
            # batch="off" (or a non-power-of-two L1): the scalar kernel runs
            # over a materialized copy so a pre-decoded trace cannot
            # silently re-enter the batched kernel.
            trace = list(trace)
        replayer = _TraceReplayer(trace)
        self._attach_driver(replayer)

        try:
            start_instr = 0
            start_cycles = 0.0
            if warmup_instructions > 0:
                self._execute(replayer, warmup_instructions)
                self._reset_measurement_counters()
                snapshot = self.core.snapshot()
                start_instr = snapshot.instructions
                start_cycles = snapshot.cycles

            if max_instructions is None:
                # Materialized traces keep the historical exact budget (one
                # pass's instructions, wrapping mid-access never truncates);
                # streamed traces run single-pass until exhaustion, which
                # executes the identical access sequence.  When warmup consumed
                # part of the stream, a re-openable source pays one counting
                # pass so its measured budget matches the materialized path
                # exactly (one-shot iterators measure the stream's remainder).
                max_instructions = replayer.known_instruction_total
                if max_instructions is None and warmup_instructions > 0:
                    if replayer.reopenable:
                        max_instructions = replayer.count_pass_instructions()
            self._execute(replayer, max_instructions)
        finally:
            driver = self._driver
            if driver is not None:
                self._driver = None
                driver.detach()
        if not replayer.yielded_any:
            raise ValueError("cannot simulate an empty trace")

        self.hierarchy.flush_prefetches(self.core.current_cycle)
        instructions, cycles = self.core.finalize()
        self.stats.instructions = instructions - start_instr
        self.stats.cycles = max(1, int(cycles - start_cycles))
        return self.stats

    # ------------------------------------------------------------------ #
    def _attach_driver(self, replayer: _TraceReplayer) -> None:
        """Engage the C batched driver when requested and supported.

        Sets ``kernel_tier_used``/``kernel_decline_reason`` either way, so
        a ``kernel="compiled"`` run that silently fell back to the Python
        driver is observable.  Only batched/chunked execution shapes
        qualify: the scalar kernel has no C counterpart.
        """
        driver = None
        reason = None
        if self.kernel_mode == "compiled":
            if replayer._batched is not None or replayer._chunked is not None:
                from repro.sim.driver import CompiledDriver

                driver, reason = CompiledDriver.try_attach(self)
            else:
                reason = "scalar execution path (batch=off or one-shot stream)"
        self._driver = driver
        if driver is not None:
            self.kernel_tier_used = "compiled-driver"
            self.kernel_decline_reason = None
        else:
            compiled_train = getattr(self.prefetcher, "_kernel", None) is not None
            self.kernel_tier_used = "compiled" if compiled_train else "python"
            self.kernel_decline_reason = reason

    def _execute(
        self, replayer: _TraceReplayer, instruction_budget: Optional[int]
    ) -> None:
        """Execute until the budget is spent (``None`` = one full pass)."""
        if replayer._chunked is not None:
            self._execute_chunked(replayer, instruction_budget)
            return
        if replayer._batched is not None:
            self._execute_batched(replayer, instruction_budget)
            return
        unbounded = instruction_budget is None
        executed = 0

        # Bind the per-access call chain once.
        core = self.core
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        advance_non_memory = core.advance_non_memory
        begin_memory_access = core.begin_memory_access
        complete_memory_access = core.complete_memory_access
        issue_queued_prefetches = hierarchy.issue_queued_prefetches
        demand_access = hierarchy.demand_access
        enqueue_prefetches = hierarchy.enqueue_prefetches
        # The deque itself is bound so the per-access "anything queued?"
        # check is a C-level truthiness test, not a method call.
        pending_prefetches = hierarchy.prefetch_queue._queue
        train = prefetcher.train if prefetcher is not None else None
        load = AccessType.LOAD
        store = AccessType.STORE

        sequence = replayer._sequence
        if sequence is not None:
            # Materialized fast path: direct indexing, no per-access source
            # dispatch.  Replay semantics match next_access(): a bounded run
            # wraps indefinitely, an unbounded run stops after one pass.
            index = replayer._index
            length = len(sequence)
            yielded = False
            while unbounded or executed < instruction_budget:
                if unbounded and replayer.replays > 0:
                    break
                access = sequence[index]
                index += 1
                if index >= length:
                    index = 0
                    replayer.replays += 1
                yielded = True

                gap = access.instr_gap
                if gap > 0:
                    advance_non_memory(gap)
                issue_cycle = begin_memory_access()
                executed += gap + 1

                if pending_prefetches:
                    issue_queued_prefetches(issue_cycle)
                access_type = access.access_type
                result = demand_access(
                    access.address, issue_cycle, access_type is store
                )
                complete_memory_access(result.latency)

                if train is not None and access_type is load:
                    requests = train(
                        access.pc, access.address, issue_cycle, result
                    )
                    if requests:
                        enqueue_prefetches(requests, issue_cycle)
            replayer._index = index
            if yielded:
                replayer.yielded_any = True
            return

        next_access = replayer.next_access
        replay = not unbounded
        while unbounded or executed < instruction_budget:
            access = next_access(replay=replay)
            if access is None:
                break
            gap = access.instr_gap
            if gap > 0:
                advance_non_memory(gap)
            issue_cycle = begin_memory_access()
            executed += gap + 1

            if pending_prefetches:
                issue_queued_prefetches(issue_cycle)
            access_type = access.access_type
            result = demand_access(access.address, issue_cycle, access_type is store)
            complete_memory_access(result.latency)

            if train is not None and access_type is load:
                requests = train(access.pc, access.address, issue_cycle, result)
                if requests:
                    enqueue_prefetches(requests, issue_cycle)

    def _execute_chunked(
        self, replayer: _TraceReplayer, instruction_budget: Optional[int]
    ) -> None:
        """Streamed batched execution: the batched kernel at O(chunk) memory.

        Pulls successive :class:`BatchedTrace` chunks from the replayer's
        :class:`~repro.sim.batch.ChunkedTraceStream` and drives each through
        :meth:`_execute_batched`.  Semantics are identical to the scalar
        streamed path: a bounded run replays by re-opening the source at
        end-of-pass, an unbounded run stops after one pass, and the access
        that exhausts the budget executes in full (the inner kernel applies
        the same per-access stopping rule, and the chunk cap equals the
        chunk's exact remaining instructions so it can never wrap within a
        chunk).

        A partially consumed chunk (warmup boundary, budget exhaustion)
        persists on the replayer — ``_chunk_replayer`` holds the inner
        position and ``_chunk_remaining`` its exact instruction remainder —
        so consecutive ``_execute`` calls resume mid-chunk, exactly like
        the scalar iterator resumes mid-stream.
        """
        stream = replayer._chunked
        core = self.core
        unbounded = instruction_budget is None
        executed = 0
        while unbounded or executed < instruction_budget:
            inner = replayer._chunk_replayer
            if inner is None:
                chunk = stream.next_chunk()
                if chunk is None:
                    # End of one pass over the source.
                    replayer.replays += 1
                    if not replayer.yielded_any:
                        break  # empty source: run() raises
                    if unbounded:
                        break  # single-pass semantics
                    continue  # bounded: the next next_chunk() re-opens
                replayer.yielded_any = True
                inner = _TraceReplayer(chunk)
                replayer._chunk_replayer = inner
                replayer._chunk_remaining = chunk.instruction_total
            remaining = replayer._chunk_remaining
            if unbounded:
                step = remaining
            else:
                left = instruction_budget - executed
                step = remaining if remaining < left else left
            before = core._instr_count
            self._execute_batched(inner, step)
            done = core._instr_count - before
            executed += done
            remaining -= done
            replayer._chunk_remaining = remaining
            if remaining <= 0:
                replayer._chunk_replayer = None

    def _execute_batched(
        self, replayer: _TraceReplayer, instruction_budget: Optional[int]
    ) -> None:
        """The batched kernel: chunked L1-hit runs over decoded arrays.

        Replay/budget semantics are identical to the scalar kernel's
        materialized fast path — a bounded run wraps the arrays
        indefinitely, an unbounded run stops after one pass, and the access
        that exhausts the budget still executes in full.

        Two driver loops, both bit-identical to the scalar kernel (the
        golden-stats suite pins this):

        * **No prefetcher** (and a default-shaped hierarchy): the chunked
          fast path.  While the hierarchy is quiescent (MSHR file empty,
          prefetch queue empty), the longest run of plain L1 hits within
          budget is detected and retired wholesale
          (:meth:`Cache.demand_hit_run` for residency + batched LRU
          touches; the timing is
          :meth:`CoreTimingModel.advance_hit_run`'s loop inlined against
          the local core state, pinned to the reference method by the
          equivalence suite; per-run statistics arithmetic); the access
          that breaks the run —
          a miss, or a block with prefetch provenance to account — executes
          through a fully fused per-access path (the entire
          ``demand_access`` chain inlined as set-dict operations, with
          victim recycling as in :meth:`Cache.fill_absent`).

        * **Prefetcher attached**: every access takes the per-access path —
          training order must be preserved exactly, so ``train`` observes
          every demand load in order — but over the decoded arrays, with
          the demand chain inlined the same way (eviction listeners are
          invoked exactly as ``Cache.fill`` would) and the ``train`` result
          delivered through per-level preallocated mutable
          :class:`AccessResult` objects (no prefetcher retains the result
          beyond the call).

        In both loops the core timing model's scalar state lives in local
        variables for the duration of the call — the inlined begin/complete
        logic performs the identical float operations in the identical
        order — and is written back to the model at every point where a
        :class:`CoreTimingModel` method runs (run retirement, non-fusable
        fallbacks) and at exit.

        When the compiled driver is attached (``kernel="compiled"`` and
        :meth:`_attach_driver` accepted the configuration), both loops run
        inside the C extension instead — same replay/budget semantics,
        same statistics, bit-identical.
        """
        driver = self._driver
        if driver is not None:
            driver.run_batch(replayer, instruction_budget)
            return
        batched = replayer._batched
        blocks = batched.blocks
        gaps = batched.gaps
        kinds = batched.kinds
        addresses = batched.addresses
        pcs = batched.pcs
        length = len(addresses)
        unbounded = instruction_budget is None
        executed = 0

        core = self.core
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        issue_queued_prefetches = hierarchy.issue_queued_prefetches
        demand_access = hierarchy.demand_access
        enqueue_prefetches = hierarchy.enqueue_prefetches
        complete_ready = hierarchy._complete_ready_prefetches
        l1d = hierarchy.l1d
        l2c = hierarchy.l2c
        llc = hierarchy.llc
        demand_hit_run = l1d.demand_hit_run
        l1_sets = l1d._sets
        l1_mask = l1d._set_mask
        l1_ways = l1d._ways
        l1_listeners = l1d.eviction_listeners
        l2_sets = l2c._sets
        l2_mask = l2c._set_mask
        l2_ways = l2c._ways
        l2_listeners = l2c.eviction_listeners
        llc_plain = type(llc) is Cache
        llc_sets = llc._sets if llc_plain else None
        llc_mask = llc._set_mask if llc_plain else None
        llc_ways = llc._ways if llc_plain else None
        llc_listeners = llc.eviction_listeners if llc_plain else None
        # Stable containers, bound for C-level truthiness tests (neither is
        # ever rebound by its owner).
        pending_prefetches = hierarchy.prefetch_queue.pending
        mshr_entries = hierarchy.l1_mshr._entries
        stats = hierarchy.stats
        prefetch_stats = stats.prefetch
        l1_latency = hierarchy._lat_l1
        lat_l2 = hierarchy._lat_l2
        lat_llc = hierarchy._lat_llc
        dram = hierarchy.dram
        dram_access = dram.access
        train = prefetcher.train if prefetcher is not None else None

        # DRAM timing state, bound once for the whole call so the per-miss
        # arithmetic of :meth:`DRAMModel.access` can run inline (subclasses
        # keep the method call).  ``reset`` — the only thing that rebinds
        # these attributes — never runs mid-kernel.
        dram_plain = type(dram) is DRAMModel
        if dram_plain:
            dram_channels = dram._channels
            dram_banks = dram._banks_per_channel
            dram_row_div = dram._row_divisor
            dram_hit_lat = dram._row_hit_latency
            dram_miss_lat = dram._row_miss_latency
            dram_transfer = dram._transfer_cycles
            dram_open_row = dram._open_row
            dram_bank_busy = dram._bank_busy_until
            dram_channel_busy = dram._channel_busy_until
            dram_stats = dram.stats

        # The full demand chain can only be inlined against plain
        # power-of-two-set caches (every configuration of the paper).
        inline_ok = (
            l2_mask is not None and llc_plain and llc_mask is not None
        )

        # Core timing state, held in locals for the whole call (see the
        # docstring); the inlined arithmetic replicates begin_memory_access
        # / complete_memory_access operation-for-operation.
        width = core._width
        fetch_inc = core._fetch_increment
        rob = core._rob_size
        lq = core._load_queue_size
        miss_limit = core._miss_limit
        miss_threshold = core._miss_threshold
        instr = core._instr_count
        fetch = core._fetch_cycle
        last_retire = core._last_retire_cycle
        outstanding = core._outstanding
        out_popleft = outstanding.popleft
        out_append = outstanding.append
        misses_list = core._outstanding_misses
        # Cached minimum of ``misses_list`` (INF when empty): the original
        # per-access ``min()`` scan is replaced by constant-time updates on
        # append/filter — the comparison outcomes are identical.
        INF = float("inf")
        misses_min = min(misses_list) if misses_list else INF
        try:
            issue = core._issue_cycle
        except AttributeError:
            issue = fetch

        index = replayer._index
        yielded = False

        default_listener = hierarchy._count_useless_eviction
        fused = (
            train is None
            and inline_ok
            and l1_listeners == [default_listener]
            and l2_listeners == [default_listener]
            and not llc_listeners
        )

        if fused:
            # Constants of the inlined hit-run retirement (L1 hits have one
            # fixed latency).
            hit_completion_delta = l1_latency if l1_latency > 1 else 1
            hit_records_miss = l1_latency > miss_threshold
            while True:
                if unbounded:
                    if replayer.replays > 0:
                        break
                elif executed >= instruction_budget:
                    break
                block = blocks[index]
                l1_set = l1_sets[block & l1_mask]
                if not mshr_entries and not pending_prefetches:
                    if block in l1_set:
                        # Chunked fast path: retire the whole pure-hit run.
                        remaining = (
                            None if unbounded else instruction_budget - executed
                        )
                        run, instructions = demand_hit_run(
                            blocks, kinds, gaps, index, length, remaining
                        )
                        if run:
                            # Timing of the whole run, inlined against the
                            # local core state (the same per-access float
                            # operations CoreTimingModel.advance_hit_run
                            # performs — no sync round-trip).
                            for run_index in range(index, index + run):
                                gap = gaps[run_index]
                                if gap > 0:
                                    instr += gap
                                    fetch += gap / width
                                instr += 1
                                fetch += fetch_inc
                                issue = fetch
                                while (
                                    outstanding
                                    and instr - outstanding[0][0] >= rob
                                ):
                                    head = outstanding[0][1]
                                    if head > issue:
                                        issue = head
                                    completion = out_popleft()[1]
                                    if completion > last_retire:
                                        last_retire = completion
                                    if issue > last_retire:
                                        last_retire = issue
                                while len(outstanding) >= lq:
                                    head = outstanding[0][1]
                                    if head > issue:
                                        issue = head
                                    completion = out_popleft()[1]
                                    if completion > last_retire:
                                        last_retire = completion
                                    if issue > last_retire:
                                        last_retire = issue
                                if len(misses_list) >= miss_limit:
                                    misses_list.sort()
                                    while len(misses_list) >= miss_limit:
                                        completed = misses_list.pop(0)
                                        if completed > issue:
                                            issue = completed
                                    misses_min = (
                                        misses_list[0] if misses_list else INF
                                    )
                                if misses_list and misses_min <= issue:
                                    misses_list = [
                                        c for c in misses_list if c > issue
                                    ]
                                    misses_min = (
                                        min(misses_list) if misses_list else INF
                                    )
                                while (
                                    outstanding and outstanding[0][1] <= issue
                                ):
                                    completion = out_popleft()[1]
                                    if completion > last_retire:
                                        last_retire = completion
                                    if issue > last_retire:
                                        last_retire = issue
                                completion = issue + hit_completion_delta
                                out_append((instr, completion))
                                if hit_records_miss:
                                    misses_list.append(completion)
                                    if completion < misses_min:
                                        misses_min = completion
                                if issue > fetch:
                                    fetch = issue
                            stats.demand_accesses += run
                            stats.l1_hits += run
                            stats.total_demand_latency += run * l1_latency
                            executed += instructions
                            index += run
                            yielded = True
                            if index >= length:
                                index = 0
                                replayer.replays += 1
                            continue
                    # Fused per-access demand path (inlined demand_access,
                    # bit-identical bookkeeping, no intermediate objects).
                    gap = gaps[index]
                    is_store = kinds[index] == 1
                    index += 1
                    if index >= length:
                        index = 0
                        replayer.replays += 1
                    yielded = True

                    # Inlined begin_memory_access.
                    if gap > 0:
                        instr += gap
                        fetch += gap / width
                    instr += 1
                    fetch += fetch_inc
                    issue = fetch
                    while outstanding and instr - outstanding[0][0] >= rob:
                        head = outstanding[0][1]
                        if head > issue:
                            issue = head
                        completion = out_popleft()[1]
                        if completion > last_retire:
                            last_retire = completion
                        if issue > last_retire:
                            last_retire = issue
                    while len(outstanding) >= lq:
                        head = outstanding[0][1]
                        if head > issue:
                            issue = head
                        completion = out_popleft()[1]
                        if completion > last_retire:
                            last_retire = completion
                        if issue > last_retire:
                            last_retire = issue
                    if len(misses_list) >= miss_limit:
                        misses_list.sort()
                        while len(misses_list) >= miss_limit:
                            completed = misses_list.pop(0)
                            if completed > issue:
                                issue = completed
                        misses_min = misses_list[0] if misses_list else INF
                    if misses_list and misses_min <= issue:
                        misses_list = [c for c in misses_list if c > issue]
                        misses_min = min(misses_list) if misses_list else INF
                    while outstanding and outstanding[0][1] <= issue:
                        completion = out_popleft()[1]
                        if completion > last_retire:
                            last_retire = completion
                        if issue > last_retire:
                            last_retire = issue
                    executed += gap + 1
                    stats.demand_accesses += 1

                    entry = l1_set.get(block)
                    if entry is not None:
                        # L1 hit that the run scan refused (prefetch
                        # provenance to account).
                        del l1_set[block]
                        l1_set[block] = entry
                        l1d.hits += 1
                        if entry.prefetched:
                            if not entry.prefetch_useful:
                                entry.prefetch_useful = True
                            if not entry.useful_counted:
                                entry.useful_counted = True
                                prefetch_stats.useful_l1 += 1
                                if entry.from_dram:
                                    prefetch_stats.covered_llc_misses += 1
                        if is_store:
                            entry.dirty = True
                        stats.l1_hits += 1
                        stats.total_demand_latency += l1_latency
                        latency = l1_latency
                    else:
                        l1d.misses += 1
                        stats.l1_misses += 1

                        l2_set = l2_sets[block & l2_mask]
                        entry = l2_set.get(block)
                        if entry is not None:
                            del l2_set[block]
                            l2_set[block] = entry
                            l2c.hits += 1
                            if entry.prefetched:
                                if not entry.prefetch_useful:
                                    entry.prefetch_useful = True
                                if not entry.useful_counted:
                                    entry.useful_counted = True
                                    prefetch_stats.useful_l2 += 1
                                    if entry.from_dram:
                                        prefetch_stats.covered_llc_misses += 1
                            # Inlined L1 fill (block is guaranteed absent);
                            # the victim object is recycled — nothing else
                            # can hold a reference to it here.
                            if len(l1_set) >= l1_ways:
                                victim = l1_set.pop(next(iter(l1_set)))
                                l1d.evictions += 1
                                if victim.prefetched and not victim.prefetch_useful:
                                    l1d.useless_prefetch_evictions += 1
                                    prefetch_stats.useless += 1
                                victim.block = block
                                victim.prefetched = False
                                victim.prefetch_useful = False
                                victim.from_dram = False
                                victim.dirty = is_store
                                victim.useful_counted = False
                                l1_set[block] = victim
                            else:
                                l1_set[block] = CacheBlock(
                                    block, False, False, False, is_store
                                )
                            stats.l2_hits += 1
                            stats.total_demand_latency += lat_l2
                            latency = lat_l2
                        else:
                            l2c.misses += 1
                            stats.l2_misses += 1

                            llc_set = llc_sets[block & llc_mask]
                            entry = llc_set.get(block)
                            if entry is not None:
                                del llc_set[block]
                                llc_set[block] = entry
                                llc.hits += 1
                                if entry.prefetched and not entry.prefetch_useful:
                                    entry.prefetch_useful = True
                                from_dram = False
                                latency = lat_llc
                                stats.llc_hits += 1
                            else:
                                llc.misses += 1
                                stats.llc_misses += 1
                                if dram_plain:
                                    # Inlined DRAMModel.access (demand).
                                    cyc = int(issue)
                                    channel = block % dram_channels
                                    bank = (
                                        channel * dram_banks
                                        + (block // dram_channels) % dram_banks
                                    )
                                    row = block // dram_row_div
                                    if dram_open_row.get(bank) == row:
                                        array_latency = dram_hit_lat
                                        dram_stats.row_hits += 1
                                    else:
                                        array_latency = dram_miss_lat
                                        dram_stats.row_misses += 1
                                        dram_open_row[bank] = row
                                    bank_wait = (
                                        dram_bank_busy.get(bank, 0.0) - cyc
                                    )
                                    if bank_wait < 0.0:
                                        bank_wait = 0.0
                                    array_done = cyc + bank_wait + array_latency
                                    dram_bank_busy[bank] = array_done
                                    bus_start = dram_channel_busy[channel]
                                    if array_done > bus_start:
                                        bus_start = array_done
                                    bus_done = bus_start + dram_transfer
                                    dram_channel_busy[channel] = bus_done
                                    bus_wait = bus_start - array_done
                                    dram_stats.requests += 1
                                    dram_stats.demand_requests += 1
                                    dram_stats.total_queue_wait += int(
                                        bank_wait
                                        + (bus_wait if bus_wait > 0.0 else 0.0)
                                    )
                                    dram_stats.total_service_cycles += int(
                                        array_latency + dram_transfer
                                    )
                                    latency = lat_llc + int(
                                        round(bus_done - cyc)
                                    )
                                else:
                                    latency = lat_llc + dram_access(
                                        block, int(issue), False
                                    )
                                stats.dram_reads += 1
                                from_dram = True
                                # Inlined LLC fill (no listeners here).
                                if len(llc_set) >= llc_ways:
                                    victim = llc_set.pop(next(iter(llc_set)))
                                    llc.evictions += 1
                                    if victim.prefetched and not victim.prefetch_useful:
                                        llc.useless_prefetch_evictions += 1
                                    victim.block = block
                                    victim.prefetched = False
                                    victim.prefetch_useful = False
                                    victim.from_dram = True
                                    victim.dirty = False
                                    victim.useful_counted = False
                                    llc_set[block] = victim
                                else:
                                    llc_set[block] = CacheBlock(
                                        block, False, False, True
                                    )

                            # Inlined L2 + L1 fills (block absent from both).
                            if len(l2_set) >= l2_ways:
                                victim = l2_set.pop(next(iter(l2_set)))
                                l2c.evictions += 1
                                if victim.prefetched and not victim.prefetch_useful:
                                    l2c.useless_prefetch_evictions += 1
                                    prefetch_stats.useless += 1
                                victim.block = block
                                victim.prefetched = False
                                victim.prefetch_useful = False
                                victim.from_dram = from_dram
                                victim.dirty = False
                                victim.useful_counted = False
                                l2_set[block] = victim
                            else:
                                l2_set[block] = CacheBlock(
                                    block, False, False, from_dram
                                )
                            if len(l1_set) >= l1_ways:
                                victim = l1_set.pop(next(iter(l1_set)))
                                l1d.evictions += 1
                                if victim.prefetched and not victim.prefetch_useful:
                                    l1d.useless_prefetch_evictions += 1
                                    prefetch_stats.useless += 1
                                victim.block = block
                                victim.prefetched = False
                                victim.prefetch_useful = False
                                victim.from_dram = from_dram
                                victim.dirty = is_store
                                victim.useful_counted = False
                                l1_set[block] = victim
                            else:
                                l1_set[block] = CacheBlock(
                                    block, False, False, from_dram, is_store
                                )
                            stats.total_demand_latency += latency

                    # Inlined complete_memory_access.
                    completion = issue + (latency if latency > 1 else 1)
                    out_append((instr, completion))
                    if latency > miss_threshold:
                        misses_list.append(completion)
                        if completion < misses_min:
                            misses_min = completion
                    if issue > fetch:
                        fetch = issue
                    continue
                # Non-quiescent hierarchy (in-flight or queued prefetches,
                # impossible without a prefetcher but kept for safety):
                # generic scalar access through the model's methods.
                core._instr_count = instr
                core._fetch_cycle = fetch
                core._last_retire_cycle = last_retire
                core._outstanding_misses = misses_list
                gap = gaps[index]
                kind = kinds[index]
                address = addresses[index]
                index += 1
                if index >= length:
                    index = 0
                    replayer.replays += 1
                yielded = True
                if gap > 0:
                    core.advance_non_memory(gap)
                issue_cycle = core.begin_memory_access()
                executed += gap + 1
                if pending_prefetches:
                    issue_queued_prefetches(issue_cycle)
                result = demand_access(address, issue_cycle, kind == 1)
                core.complete_memory_access(result.latency)
                instr = core._instr_count
                fetch = core._fetch_cycle
                last_retire = core._last_retire_cycle
                misses_list = core._outstanding_misses
                misses_min = min(misses_list) if misses_list else INF
                issue = core._issue_cycle
        else:
            # Per-access loop: the prefetcher observes every demand load in
            # program order (and the same loop serves prefetcher-less runs
            # on non-default hierarchies, where ``fused`` is False).
            result_l1 = AccessResult(l1_latency, "L1D", False, False)
            result_l2 = AccessResult(lat_l2, "L2C", False, False)
            result_llc = AccessResult(lat_llc, "LLC", False, False)
            result_dram = AccessResult(0, "DRAM", False, False)
            result_inflight = AccessResult(0, "L1D", False, False)
            l1_mshr = hierarchy.l1_mshr
            issue_one = hierarchy._issue_prefetch
            pq_popleft = pending_prefetches.popleft
            pq_append = pending_prefetches.append
            prefetch_queue = hierarchy.prefetch_queue
            drain_limit = prefetch_queue.drain_per_access
            pq_capacity = prefetch_queue.capacity
            mshr_capacity = l1_mshr.capacity
            lat_l2_source = hierarchy._lat_l2_source
            lat_llc_source = hierarchy._lat_llc_source
            hint_l1 = PrefetchHint.L1
            hint_l2 = PrefetchHint.L2
            # Packed-protocol prefetch path.  With the demand chain inlined
            # (``inline_ok``) and a prefetcher attached, queued prefetches
            # are stored as packed ints — ``block << 1 | to_l1`` — and
            # issued through :meth:`CacheHierarchy._issue_prefetch`'s body
            # inlined below against the already-bound cache locals, so no
            # :class:`PrefetchRequest` travels through the hot path.  Flat
            # prefetchers (``train_flat``) produce packed ints natively;
            # object prefetchers' requests are packed at enqueue (the sim
            # layer only ever reads ``address`` and ``hint``, and every
            # non-L1 hint takes the L2 fill branch, so the single to-L1 bit
            # is behaviourally lossless).  Leftover entries are converted
            # back to ``(request, cycle)`` tuples at exit, preserving the
            # PQ representation every other code path uses.
            train_flat = (
                getattr(prefetcher, "train_flat", None)
                if train is not None
                else None
            )
            use_packed = inline_ok and train is not None
            if use_packed and pending_prefetches:
                for _ in range(len(pending_prefetches)):
                    request, _enq_cycle = pq_popleft()
                    pq_append(
                        (request.address >> 6) << 1
                        | (1 if request.hint is hint_l1 else 0)
                    )
            while unbounded or executed < instruction_budget:
                if unbounded and replayer.replays > 0:
                    break
                gap = gaps[index]
                kind = kinds[index]
                address = addresses[index]
                block = blocks[index]
                pc = pcs[index]
                index += 1
                if index >= length:
                    index = 0
                    replayer.replays += 1
                yielded = True

                # Inlined begin_memory_access.
                if gap > 0:
                    instr += gap
                    fetch += gap / width
                instr += 1
                fetch += fetch_inc
                issue = fetch
                while outstanding and instr - outstanding[0][0] >= rob:
                    head = outstanding[0][1]
                    if head > issue:
                        issue = head
                    completion = out_popleft()[1]
                    if completion > last_retire:
                        last_retire = completion
                    if issue > last_retire:
                        last_retire = issue
                while len(outstanding) >= lq:
                    head = outstanding[0][1]
                    if head > issue:
                        issue = head
                    completion = out_popleft()[1]
                    if completion > last_retire:
                        last_retire = completion
                    if issue > last_retire:
                        last_retire = issue
                if len(misses_list) >= miss_limit:
                    misses_list.sort()
                    while len(misses_list) >= miss_limit:
                        completed = misses_list.pop(0)
                        if completed > issue:
                            issue = completed
                    misses_min = misses_list[0] if misses_list else INF
                if misses_list and misses_min <= issue:
                    misses_list = [c for c in misses_list if c > issue]
                    misses_min = min(misses_list) if misses_list else INF
                while outstanding and outstanding[0][1] <= issue:
                    completion = out_popleft()[1]
                    if completion > last_retire:
                        last_retire = completion
                    if issue > last_retire:
                        last_retire = issue
                issue_cycle = int(issue)
                executed += gap + 1

                if pending_prefetches:
                    if not use_packed:
                        # Inlined issue_queued_prefetches (same FIFO order
                        # and per-access drain limit).
                        issued = 0
                        while pending_prefetches and issued < drain_limit:
                            issue_one(pq_popleft()[0], issue_cycle)
                            issued += 1
                    else:
                        # Packed drain: _issue_prefetch inlined over packed
                        # ints (identical branch structure and statistics).
                        issued = 0
                        while pending_prefetches and issued < drain_limit:
                            p = pq_popleft()
                            issued += 1
                            pblock = p >> 1
                            p_l1_set = l1_sets[pblock & l1_mask]
                            if pblock in p_l1_set or pblock in mshr_entries:
                                prefetch_stats.redundant += 1
                                continue
                            p_l2_set = l2_sets[pblock & l2_mask]
                            l2_entry = p_l2_set.get(pblock)
                            to_l1 = p & 1
                            if not to_l1 and l2_entry is not None:
                                prefetch_stats.redundant += 1
                                continue
                            prefetch_stats.issued += 1

                            # Locate the data (LRU-touching as lookup does).
                            from_dram = False
                            if l2_entry is not None:
                                source_latency = lat_l2_source
                                del p_l2_set[pblock]
                                p_l2_set[pblock] = l2_entry
                            else:
                                p_llc_set = llc_sets[pblock & llc_mask]
                                llc_entry = p_llc_set.get(pblock)
                                if llc_entry is not None:
                                    del p_llc_set[pblock]
                                    p_llc_set[pblock] = llc_entry
                                    source_latency = lat_llc_source
                                else:
                                    if dram_plain:
                                        # Inlined DRAMModel.access (prefetch).
                                        channel = pblock % dram_channels
                                        bank = (
                                            channel * dram_banks
                                            + (pblock // dram_channels)
                                            % dram_banks
                                        )
                                        row = pblock // dram_row_div
                                        if dram_open_row.get(bank) == row:
                                            array_latency = dram_hit_lat
                                            dram_stats.row_hits += 1
                                        else:
                                            array_latency = dram_miss_lat
                                            dram_stats.row_misses += 1
                                            dram_open_row[bank] = row
                                        bank_wait = (
                                            dram_bank_busy.get(bank, 0.0)
                                            - issue_cycle
                                        )
                                        if bank_wait < 0.0:
                                            bank_wait = 0.0
                                        array_done = (
                                            issue_cycle
                                            + bank_wait
                                            + array_latency
                                        )
                                        dram_bank_busy[bank] = array_done
                                        bus_start = dram_channel_busy[channel]
                                        if array_done > bus_start:
                                            bus_start = array_done
                                        bus_done = bus_start + dram_transfer
                                        dram_channel_busy[channel] = bus_done
                                        bus_wait = bus_start - array_done
                                        dram_stats.requests += 1
                                        dram_stats.prefetch_requests += 1
                                        dram_stats.total_queue_wait += int(
                                            bank_wait
                                            + (
                                                bus_wait
                                                if bus_wait > 0.0
                                                else 0.0
                                            )
                                        )
                                        dram_stats.total_service_cycles += int(
                                            array_latency + dram_transfer
                                        )
                                        source_latency = lat_llc_source + int(
                                            round(bus_done - issue_cycle)
                                        )
                                    else:
                                        source_latency = (
                                            lat_llc_source
                                            + dram_access(
                                                pblock, issue_cycle, True
                                            )
                                        )
                                    from_dram = True
                                    # Inlined LLC fill (block just missed).
                                    if len(p_llc_set) >= llc_ways:
                                        victim = p_llc_set.pop(
                                            next(iter(p_llc_set))
                                        )
                                        llc.evictions += 1
                                        if (
                                            victim.prefetched
                                            and not victim.prefetch_useful
                                        ):
                                            llc.useless_prefetch_evictions += 1
                                        for listener in llc_listeners:
                                            listener(victim)
                                        victim.block = pblock
                                        victim.prefetched = False
                                        victim.prefetch_useful = False
                                        victim.from_dram = True
                                        victim.dirty = False
                                        victim.useful_counted = False
                                        p_llc_set[pblock] = victim
                                    else:
                                        p_llc_set[pblock] = CacheBlock(
                                            pblock, False, False, True
                                        )

                            if to_l1:
                                # Inlined has_free_entry: expire(cycle) with
                                # the results discarded (the method's exact
                                # behaviour), then the capacity check.
                                if (
                                    mshr_entries
                                    and issue_cycle >= l1_mshr._min_ready
                                ):
                                    done = [
                                        e
                                        for e in mshr_entries.values()
                                        if e.ready_cycle <= issue_cycle
                                    ]
                                    for mshr_entry in done:
                                        del mshr_entries[mshr_entry.block]
                                    if mshr_entries:
                                        l1_mshr._min_ready = min(
                                            e.ready_cycle
                                            for e in mshr_entries.values()
                                        )
                                    else:
                                        l1_mshr._min_ready = INF
                                if len(mshr_entries) >= mshr_capacity:
                                    prefetch_stats.dropped_mshr_full += 1
                                    if pblock not in p_l2_set:
                                        # Fall back to an L2 fill (inlined
                                        # fill_absent with listeners).
                                        if len(p_l2_set) >= l2_ways:
                                            victim = p_l2_set.pop(
                                                next(iter(p_l2_set))
                                            )
                                            l2c.evictions += 1
                                            if (
                                                victim.prefetched
                                                and not victim.prefetch_useful
                                            ):
                                                l2c.useless_prefetch_evictions += 1
                                            for listener in l2_listeners:
                                                listener(victim)
                                            victim.block = pblock
                                            victim.prefetched = True
                                            victim.prefetch_useful = False
                                            victim.from_dram = from_dram
                                            victim.dirty = False
                                            victim.useful_counted = False
                                            p_l2_set[pblock] = victim
                                        else:
                                            p_l2_set[pblock] = CacheBlock(
                                                pblock, True, False, from_dram
                                            )
                                        prefetch_stats.filled_l2 += 1
                                    continue
                                # Allocate (block proven absent; expiry only
                                # removes entries, so it still is).
                                ready = issue_cycle + source_latency
                                mshr_entries[pblock] = MSHREntry(
                                    pblock, ready, True, 1, from_dram
                                )
                                if ready < l1_mshr._min_ready:
                                    l1_mshr._min_ready = ready
                                prefetch_stats.filled_l1 += 1
                            else:
                                if pblock not in p_l2_set:
                                    # Inlined L2 fill_absent with listeners.
                                    if len(p_l2_set) >= l2_ways:
                                        victim = p_l2_set.pop(
                                            next(iter(p_l2_set))
                                        )
                                        l2c.evictions += 1
                                        if (
                                            victim.prefetched
                                            and not victim.prefetch_useful
                                        ):
                                            l2c.useless_prefetch_evictions += 1
                                        for listener in l2_listeners:
                                            listener(victim)
                                        victim.block = pblock
                                        victim.prefetched = True
                                        victim.prefetch_useful = False
                                        victim.from_dram = from_dram
                                        victim.dirty = False
                                        victim.useful_counted = False
                                        p_l2_set[pblock] = victim
                                    else:
                                        p_l2_set[pblock] = CacheBlock(
                                            pblock, True, False, from_dram
                                        )
                                    prefetch_stats.filled_l2 += 1
                                else:
                                    prefetch_stats.redundant += 1

                is_store = kind == 1
                if not inline_ok:
                    result = demand_access(address, issue_cycle, is_store)
                    latency = result.latency
                else:
                    # Inlined demand_access (bit-identical bookkeeping; the
                    # eviction listeners run exactly as Cache.fill would
                    # invoke them).
                    stats.demand_accesses += 1
                    if mshr_entries:
                        # expire()'s nothing-ready fast path, hoisted: skip
                        # the call chain entirely until a fill can be due.
                        if issue_cycle >= l1_mshr._min_ready:
                            complete_ready(issue_cycle)
                        inflight = mshr_entries.get(block)
                    else:
                        inflight = None
                    if inflight is not None:
                        remaining = inflight.ready_cycle - issue_cycle
                        latency = (
                            remaining if remaining > l1_latency else l1_latency
                        )
                        del mshr_entries[block]
                        is_pf = inflight.is_prefetch
                        inflight_dram = inflight.from_dram
                        l1_set = l1_sets[block & l1_mask]
                        if len(l1_set) >= l1_ways:
                            victim = l1_set.pop(next(iter(l1_set)))
                            l1d.evictions += 1
                            if victim.prefetched and not victim.prefetch_useful:
                                l1d.useless_prefetch_evictions += 1
                            for listener in l1_listeners:
                                listener(victim)
                            victim.block = block
                            victim.prefetched = is_pf
                            victim.prefetch_useful = False
                            victim.from_dram = inflight_dram
                            victim.dirty = is_store
                            victim.useful_counted = False
                            l1_set[block] = victim
                            entry = victim
                        else:
                            entry = CacheBlock(
                                block, is_pf, False, inflight_dram, is_store
                            )
                            l1_set[block] = entry
                        stats.l1_hits += 1
                        if is_pf:
                            entry.prefetch_useful = True
                            prefetch_stats.useful_l1 += 1
                            prefetch_stats.late += 1
                            if inflight_dram:
                                prefetch_stats.covered_llc_misses += 1
                        stats.total_demand_latency += latency
                        result = result_inflight
                        result.latency = latency
                        result.served_by_prefetch = is_pf
                        result.late_prefetch = is_pf
                    else:
                        l1_set = l1_sets[block & l1_mask]
                        entry = l1_set.get(block)
                        if entry is not None:
                            del l1_set[block]
                            l1_set[block] = entry
                            l1d.hits += 1
                            served = False
                            if entry.prefetched:
                                if not entry.prefetch_useful:
                                    entry.prefetch_useful = True
                                if not entry.useful_counted:
                                    entry.useful_counted = True
                                    served = True
                                    prefetch_stats.useful_l1 += 1
                                    if entry.from_dram:
                                        prefetch_stats.covered_llc_misses += 1
                            if is_store:
                                entry.dirty = True
                            stats.l1_hits += 1
                            stats.total_demand_latency += l1_latency
                            latency = l1_latency
                            result = result_l1
                            result.served_by_prefetch = served
                        else:
                            l1d.misses += 1
                            stats.l1_misses += 1

                            l2_set = l2_sets[block & l2_mask]
                            entry = l2_set.get(block)
                            if entry is not None:
                                del l2_set[block]
                                l2_set[block] = entry
                                l2c.hits += 1
                                served = False
                                if entry.prefetched:
                                    if not entry.prefetch_useful:
                                        entry.prefetch_useful = True
                                    if not entry.useful_counted:
                                        entry.useful_counted = True
                                        served = True
                                        prefetch_stats.useful_l2 += 1
                                        if entry.from_dram:
                                            prefetch_stats.covered_llc_misses += 1
                                # Inlined L1 fill (absent).
                                if len(l1_set) >= l1_ways:
                                    victim = l1_set.pop(next(iter(l1_set)))
                                    l1d.evictions += 1
                                    if (
                                        victim.prefetched
                                        and not victim.prefetch_useful
                                    ):
                                        l1d.useless_prefetch_evictions += 1
                                    for listener in l1_listeners:
                                        listener(victim)
                                    victim.block = block
                                    victim.prefetched = False
                                    victim.prefetch_useful = False
                                    victim.from_dram = False
                                    victim.dirty = is_store
                                    victim.useful_counted = False
                                    l1_set[block] = victim
                                else:
                                    l1_set[block] = CacheBlock(
                                        block, False, False, False, is_store
                                    )
                                stats.l2_hits += 1
                                stats.total_demand_latency += lat_l2
                                latency = lat_l2
                                result = result_l2
                                result.served_by_prefetch = served
                            else:
                                l2c.misses += 1
                                stats.l2_misses += 1

                                llc_set = llc_sets[block & llc_mask]
                                entry = llc_set.get(block)
                                if entry is not None:
                                    del llc_set[block]
                                    llc_set[block] = entry
                                    llc.hits += 1
                                    if (
                                        entry.prefetched
                                        and not entry.prefetch_useful
                                    ):
                                        entry.prefetch_useful = True
                                    from_dram = False
                                    latency = lat_llc
                                    stats.llc_hits += 1
                                    result = result_llc
                                else:
                                    llc.misses += 1
                                    stats.llc_misses += 1
                                    if dram_plain:
                                        # Inlined DRAMModel.access (demand).
                                        channel = block % dram_channels
                                        bank = (
                                            channel * dram_banks
                                            + (block // dram_channels)
                                            % dram_banks
                                        )
                                        row = block // dram_row_div
                                        if dram_open_row.get(bank) == row:
                                            array_latency = dram_hit_lat
                                            dram_stats.row_hits += 1
                                        else:
                                            array_latency = dram_miss_lat
                                            dram_stats.row_misses += 1
                                            dram_open_row[bank] = row
                                        bank_wait = (
                                            dram_bank_busy.get(bank, 0.0)
                                            - issue_cycle
                                        )
                                        if bank_wait < 0.0:
                                            bank_wait = 0.0
                                        array_done = (
                                            issue_cycle
                                            + bank_wait
                                            + array_latency
                                        )
                                        dram_bank_busy[bank] = array_done
                                        bus_start = dram_channel_busy[channel]
                                        if array_done > bus_start:
                                            bus_start = array_done
                                        bus_done = bus_start + dram_transfer
                                        dram_channel_busy[channel] = bus_done
                                        bus_wait = bus_start - array_done
                                        dram_stats.requests += 1
                                        dram_stats.demand_requests += 1
                                        dram_stats.total_queue_wait += int(
                                            bank_wait
                                            + (
                                                bus_wait
                                                if bus_wait > 0.0
                                                else 0.0
                                            )
                                        )
                                        dram_stats.total_service_cycles += int(
                                            array_latency + dram_transfer
                                        )
                                        latency = lat_llc + int(
                                            round(bus_done - issue_cycle)
                                        )
                                    else:
                                        latency = lat_llc + dram_access(
                                            block, issue_cycle, False
                                        )
                                    stats.dram_reads += 1
                                    from_dram = True
                                    # Inlined LLC fill (absent).
                                    if len(llc_set) >= llc_ways:
                                        victim = llc_set.pop(
                                            next(iter(llc_set))
                                        )
                                        llc.evictions += 1
                                        if (
                                            victim.prefetched
                                            and not victim.prefetch_useful
                                        ):
                                            llc.useless_prefetch_evictions += 1
                                        for listener in llc_listeners:
                                            listener(victim)
                                        victim.block = block
                                        victim.prefetched = False
                                        victim.prefetch_useful = False
                                        victim.from_dram = True
                                        victim.dirty = False
                                        victim.useful_counted = False
                                        llc_set[block] = victim
                                    else:
                                        llc_set[block] = CacheBlock(
                                            block, False, False, True
                                        )
                                    result = result_dram
                                    result.latency = latency

                                # Inlined L2 + L1 fills (absent from both).
                                if len(l2_set) >= l2_ways:
                                    victim = l2_set.pop(next(iter(l2_set)))
                                    l2c.evictions += 1
                                    if (
                                        victim.prefetched
                                        and not victim.prefetch_useful
                                    ):
                                        l2c.useless_prefetch_evictions += 1
                                    for listener in l2_listeners:
                                        listener(victim)
                                    victim.block = block
                                    victim.prefetched = False
                                    victim.prefetch_useful = False
                                    victim.from_dram = from_dram
                                    victim.dirty = False
                                    victim.useful_counted = False
                                    l2_set[block] = victim
                                else:
                                    l2_set[block] = CacheBlock(
                                        block, False, False, from_dram
                                    )
                                if len(l1_set) >= l1_ways:
                                    victim = l1_set.pop(next(iter(l1_set)))
                                    l1d.evictions += 1
                                    if (
                                        victim.prefetched
                                        and not victim.prefetch_useful
                                    ):
                                        l1d.useless_prefetch_evictions += 1
                                    for listener in l1_listeners:
                                        listener(victim)
                                    victim.block = block
                                    victim.prefetched = False
                                    victim.prefetch_useful = False
                                    victim.from_dram = from_dram
                                    victim.dirty = is_store
                                    victim.useful_counted = False
                                    l1_set[block] = victim
                                else:
                                    l1_set[block] = CacheBlock(
                                        block, False, False, from_dram, is_store
                                    )
                                stats.total_demand_latency += latency

                # Inlined complete_memory_access.
                completion = issue + (latency if latency > 1 else 1)
                out_append((instr, completion))
                if latency > miss_threshold:
                    misses_list.append(completion)
                    if completion < misses_min:
                        misses_min = completion
                if issue > fetch:
                    fetch = issue

                if kind == 0 and train is not None:
                    if train_flat is not None and use_packed:
                        # Flat protocol: packed ints straight from the
                        # prefetcher, enqueued with push()'s bookkeeping
                        # batched per call as enqueue_prefetches does.
                        packed = train_flat(pc, address, issue_cycle, latency)
                        if packed:
                            total = len(packed)
                            accepted = 0
                            for p in packed:
                                if len(pending_prefetches) < pq_capacity:
                                    pq_append(p)
                                    accepted += 1
                            prefetch_queue.enqueued += accepted
                            prefetch_stats.generated += total
                            if accepted != total:
                                dropped = total - accepted
                                prefetch_queue.dropped_full += dropped
                                prefetch_stats.dropped_queue_full += dropped
                    else:
                        requests = train(pc, address, issue_cycle, result)
                        if requests:
                            if not use_packed:
                                enqueue_prefetches(requests, issue_cycle)
                            else:
                                total = 0
                                accepted = 0
                                for request in requests:
                                    total += 1
                                    if len(pending_prefetches) < pq_capacity:
                                        pq_append(
                                            (request.address >> 6) << 1
                                            | (
                                                1
                                                if request.hint is hint_l1
                                                else 0
                                            )
                                        )
                                        accepted += 1
                                prefetch_queue.enqueued += accepted
                                prefetch_stats.generated += total
                                if accepted != total:
                                    dropped = total - accepted
                                    prefetch_queue.dropped_full += dropped
                                    prefetch_stats.dropped_queue_full += dropped

            if use_packed and pending_prefetches:
                # Convert surviving packed entries back to the standard
                # (request, enqueue_cycle) tuples so flush_prefetches and
                # any later kernel invocation see the usual PQ shape.  The
                # enqueue cycle is never read after this point (issuing uses
                # the caller-supplied cycle), so the current issue cycle
                # stands in for the lost per-entry value.
                convert_cycle = int(issue)
                for _ in range(len(pending_prefetches)):
                    p = pq_popleft()
                    pq_append(
                        (
                            PrefetchRequest(
                                (p >> 1) << 6,
                                hint_l1 if p & 1 else hint_l2,
                                0,
                                "",
                            ),
                            convert_cycle,
                        )
                    )

        core._instr_count = instr
        core._fetch_cycle = fetch
        core._last_retire_cycle = last_retire
        core._outstanding_misses = misses_list
        core._issue_position = instr
        core._issue_cycle = issue
        replayer._index = index
        if yielded:
            replayer.yielded_any = True

    def _reset_measurement_counters(self) -> None:
        """Clear statistics at the warm-up/measurement boundary.

        The hierarchy's eviction listeners read ``self.hierarchy.stats``
        dynamically, so swapping the stats object is sufficient; cache and
        prefetcher *state* is deliberately preserved (that is the point of
        warming up).
        """
        fresh = SimulationStats(name=self.stats.name, prefetcher=self.stats.prefetcher)
        self.stats = fresh
        self.hierarchy.stats = fresh


def simulate_trace(
    trace: Union[Sequence[MemoryAccess], Iterable[MemoryAccess]],
    prefetcher=None,
    config: Optional[SystemConfig] = None,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    name: str = "",
    batch: str = "auto",
    kernel: str = "auto",
    record_tier: bool = False,
) -> SimulationStats:
    """Convenience wrapper: build a simulator, run it, return the stats.

    ``record_tier`` reports which kernel tier actually executed into
    ``stats.extra`` (``kernel_tier``, plus ``kernel_decline_reason`` when
    the compiled driver was requested but fell back).  Opt-in for the same
    reason timing is: cached/golden results must stay bit-identical, so
    the default run leaves ``extra`` untouched.
    """
    simulator = SingleCoreSimulator(
        config=config,
        prefetcher=resolve_kernel(prefetcher, kernel),
        name=name,
        kernel=kernel,
    )
    stats = simulator.run(
        trace,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        batch=batch,
    )
    if record_tier:
        stats.extra["kernel_tier"] = simulator.kernel_tier_used
        if simulator.kernel_decline_reason:
            stats.extra["kernel_decline_reason"] = simulator.kernel_decline_reason
    return stats
