"""Single-core simulation driver.

Ties together a trace (an iterable of :class:`repro.sim.types.MemoryAccess`),
a :class:`repro.sim.hierarchy.CacheHierarchy`, a prefetcher and the core
timing model, producing a :class:`repro.sim.stats.SimulationStats`.

The driver mirrors the paper's methodology: an optional warm-up phase trains
the caches and the prefetcher without counting statistics, then a measured
phase of a configurable number of instructions; traces that end early are
replayed from the start.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.sim.config import SystemConfig, default_system_config
from repro.sim.cpu import CoreTimingModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.stats import SimulationStats
from repro.sim.types import AccessType, MemoryAccess


class _TraceReplayer:
    """Endless iterator over a finite trace (replays from the start)."""

    def __init__(self, accesses: Sequence[MemoryAccess]) -> None:
        if not accesses:
            raise ValueError("cannot simulate an empty trace")
        self._accesses = accesses
        self._index = 0
        self.replays = 0

    def __next__(self) -> MemoryAccess:
        access = self._accesses[self._index]
        self._index += 1
        if self._index >= len(self._accesses):
            self._index = 0
            self.replays += 1
        return access

    def __iter__(self) -> "Iterator[MemoryAccess]":
        return self


class SingleCoreSimulator:
    """Runs one trace against one configured core + hierarchy + prefetcher."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        prefetcher=None,
        name: str = "",
    ) -> None:
        self.config = config if config is not None else default_system_config(1)
        self.prefetcher = prefetcher
        self.stats = SimulationStats(
            name=name,
            prefetcher=getattr(prefetcher, "name", "none") if prefetcher else "none",
        )
        self.hierarchy = CacheHierarchy(self.config, stats=self.stats)
        self.core = CoreTimingModel(self.config.core)
        if prefetcher is not None and hasattr(prefetcher, "on_cache_eviction"):
            self.hierarchy.l1d.eviction_listeners.append(
                lambda victim: prefetcher.on_cache_eviction(victim.block)
            )

    # ------------------------------------------------------------------ #
    def run(
        self,
        trace: Sequence[MemoryAccess],
        max_instructions: Optional[int] = None,
        warmup_instructions: int = 0,
    ) -> SimulationStats:
        """Simulate ``trace`` and return the collected statistics.

        ``max_instructions`` bounds the measured phase (counting both memory
        and non-memory instructions); ``warmup_instructions`` are executed
        first with full cache/prefetcher training but without resetting the
        cycle clock (statistics counters are cleared at the boundary).
        """
        accesses = list(trace) if not isinstance(trace, (list, tuple)) else trace
        replayer = _TraceReplayer(accesses)

        start_instr = 0
        start_cycles = 0.0
        if warmup_instructions > 0:
            self._execute(replayer, warmup_instructions)
            self._reset_measurement_counters()
            snapshot = self.core.snapshot()
            start_instr = snapshot.instructions
            start_cycles = snapshot.cycles

        if max_instructions is None:
            max_instructions = sum(a.instr_gap + 1 for a in accesses)
        self._execute(replayer, max_instructions)

        self.hierarchy.flush_prefetches(self.core.current_cycle)
        instructions, cycles = self.core.finalize()
        self.stats.instructions = instructions - start_instr
        self.stats.cycles = max(1, int(cycles - start_cycles))
        return self.stats

    # ------------------------------------------------------------------ #
    def _execute(self, replayer: _TraceReplayer, instruction_budget: int) -> None:
        executed = 0
        while executed < instruction_budget:
            access = next(replayer)
            self.core.advance_non_memory(access.instr_gap)
            executed += access.instr_gap

            issue_cycle = self.core.begin_memory_access()
            executed += 1

            self.hierarchy.issue_queued_prefetches(issue_cycle)
            result = self.hierarchy.demand_access(
                access.address,
                issue_cycle,
                is_store=access.access_type is AccessType.STORE,
            )
            self.core.complete_memory_access(result.latency)

            if self.prefetcher is not None and access.access_type is AccessType.LOAD:
                requests = self.prefetcher.train(
                    access.pc, access.address, issue_cycle, result
                )
                if requests:
                    self.hierarchy.enqueue_prefetches(requests, issue_cycle)

    def _reset_measurement_counters(self) -> None:
        """Clear statistics at the warm-up/measurement boundary.

        The hierarchy's eviction listeners read ``self.hierarchy.stats``
        dynamically, so swapping the stats object is sufficient; cache and
        prefetcher *state* is deliberately preserved (that is the point of
        warming up).
        """
        fresh = SimulationStats(name=self.stats.name, prefetcher=self.stats.prefetcher)
        self.stats = fresh
        self.hierarchy.stats = fresh


def simulate_trace(
    trace: Sequence[MemoryAccess],
    prefetcher=None,
    config: Optional[SystemConfig] = None,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    name: str = "",
) -> SimulationStats:
    """Convenience wrapper: build a simulator, run it, return the stats."""
    simulator = SingleCoreSimulator(config=config, prefetcher=prefetcher, name=name)
    return simulator.run(
        trace,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
    )
