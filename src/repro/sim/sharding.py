"""Shared-resource shadows for epoch-sharded multi-core execution.

The exact multi-core schedule interleaves cores access-by-access against one
shared LLC and one shared DRAM model, which forces the whole mix into a
single sequential loop.  Epoch sharding breaks that dependency: each core
runs one *epoch* (a fixed slice of its instruction budget) against a private
**shadow** of the shared state, recording every operation it performs on the
shared resources.  Because core-epochs touch no common mutable state, they
are independent tasks — they can run in any order, or concurrently, and
produce identical results.

Between epochs the master state is **reconciled**:

* **LLC** — each core's fills, demand probes and prefetch-source touches
  are replayed onto the master in ascending core-id order, so the master's
  contents and recency order reflect every core's traffic; blocks a core
  brought in become visible to the other cores at the next epoch boundary.
* **DRAM** — requests are merged across cores by issue cycle (stable:
  ties resolve by core id, then per-core request order) and replayed, so a
  request from a slow-clocked core can still use an idle bus gap between a
  fast-clocked core's transfers, as it would under exact interleaving.  A
  contended channel's busy-until backlog is thereby carried into the next
  epoch.

Cross-core queueing *within* an epoch is approximated with **ghost
traffic**: each core's shadow DRAM is pre-loaded with the other cores'
previous-epoch request logs, cycle-shifted forward by one epoch (each
core's own measured cycle span), and applies them lazily as the core's own
requests advance through the epoch.  Ghosts disturb busy-until times and
row-buffer state exactly like concurrent traffic would, one epoch stale;
they are never logged, so reconciliation replays each real request exactly
once.

The approximation error relative to the exact interleaving is bounded by
the epoch length and pinned by ``tests/test_multicore.py`` on golden mixes;
single-core mixes are bit-identical by construction (no cross-core traffic
exists, so shadows behave exactly like the master).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.sim.cache import Cache
from repro.sim.dram import DRAMModel

#: LLC log opcodes.
LLC_FILL = 0
LLC_PROBE = 1
LLC_TOUCH = 2

#: A logged DRAM request: ``(cycle, block, is_prefetch)``.
DRAMRequest = Tuple[int, int, bool]


class RecordingCache:
    """Shadow of a shared cache that logs every state-affecting operation.

    Exposes exactly the surface :class:`~repro.sim.hierarchy.CacheHierarchy`
    uses on its LLC (``probe``/``fill``/``lookup``/``contains``).  Reads
    that cannot change state (``contains``, ``lookup`` without an LRU
    update) are not logged.
    """

    __slots__ = ("base", "log")

    def __init__(self, base: Cache) -> None:
        self.base = base
        self.log: List[Tuple] = []

    def probe(self, block: int):
        self.log.append((LLC_PROBE, block))
        return self.base.probe(block)

    def lookup(self, block: int, update_lru: bool = True):
        if update_lru:
            self.log.append((LLC_TOUCH, block))
        return self.base.lookup(block, update_lru)

    def contains(self, block: int) -> bool:
        return self.base.contains(block)

    def fill(
        self,
        block: int,
        prefetched: bool = False,
        from_dram: bool = False,
        dirty: bool = False,
    ):
        self.log.append((LLC_FILL, block, prefetched, from_dram, dirty))
        return self.base.fill(block, prefetched, from_dram, dirty)


class RecordingDRAM:
    """Shadow of the shared DRAM model with ghost cross-traffic.

    ``ghosts`` is a cycle-sorted sequence of the other cores'
    previous-epoch requests; before serving each real request, every ghost
    whose cycle has been reached is applied to the underlying model
    (advancing busy-until times and row-buffer state) without being logged.
    Real requests are logged as ``(cycle, block, is_prefetch)`` for the
    reconciliation replay.
    """

    __slots__ = ("base", "log", "ghosts", "_ghost_pos")

    def __init__(self, base: DRAMModel, ghosts: Sequence[DRAMRequest] = ()) -> None:
        self.base = base
        self.log: List[DRAMRequest] = []
        self.ghosts = ghosts
        self._ghost_pos = 0

    def access(self, block: int, cycle: int, is_prefetch: bool = False) -> int:
        ghosts = self.ghosts
        position = self._ghost_pos
        if position < len(ghosts):
            base_access = self.base.access
            while position < len(ghosts) and ghosts[position][0] <= cycle:
                ghost_cycle, ghost_block, ghost_prefetch = ghosts[position]
                base_access(ghost_block, ghost_cycle, ghost_prefetch)
                position += 1
            self._ghost_pos = position
        self.log.append((cycle, block, is_prefetch))
        return self.base.access(block, cycle, is_prefetch)


def replay_llc_log(master: Cache, log: List[Tuple]) -> None:
    """Re-apply one core's LLC operations onto the master cache.

    The replayed hit results are irrelevant (the core already consumed its
    shadow's answers); only the state transitions — contents, recency
    order, prefetch-provenance flags — matter.  The master LLC has no
    eviction listeners, so replay fires no per-core statistics.
    """
    for op in log:
        code = op[0]
        if code == LLC_FILL:
            master.fill(op[1], prefetched=op[2], from_dram=op[3], dirty=op[4])
        elif code == LLC_PROBE:
            master.probe(op[1])
        else:
            master.lookup(op[1], update_lru=True)


def replay_dram_logs(
    master: DRAMModel, logs: Sequence[List[DRAMRequest]]
) -> None:
    """Re-apply every core's real DRAM requests onto the master model.

    ``logs[i]`` is core ``i``'s request log; requests are merged by issue
    cycle (stable tie-break: core id, then per-core order) before being
    re-applied, mirroring the arrival order exact interleaving would have
    produced.  The replayed latencies are discarded — only the busy-until /
    open-row state transitions and the master's aggregate counters matter.
    """
    merged: List[Tuple[int, int, int, int, bool]] = []
    for core_id, log in enumerate(logs):
        for index, (cycle, block, is_prefetch) in enumerate(log):
            merged.append((cycle, core_id, index, block, is_prefetch))
    merged.sort(key=lambda item: item[:3])
    for cycle, _core_id, _index, block, is_prefetch in merged:
        master.access(block, cycle, is_prefetch)


def shifted_ghosts(
    logs: Sequence[List[DRAMRequest]],
    spans: Sequence[int],
    exclude_core: int,
) -> List[DRAMRequest]:
    """Cycle-sorted ghost traffic for one core's next epoch.

    Every other core's previous-epoch log is shifted forward by that core's
    measured cycle span (so the traffic pattern repeats in the cycle window
    the next epoch will traverse) and the union is sorted by cycle.
    """
    ghosts: List[DRAMRequest] = []
    for core_id, log in enumerate(logs):
        if core_id == exclude_core:
            continue
        shift = spans[core_id]
        for cycle, block, is_prefetch in log:
            ghosts.append((cycle + shift, block, is_prefetch))
    ghosts.sort()
    return ghosts
