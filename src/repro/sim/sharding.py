"""Shared-resource shadows for epoch-sharded multi-core execution.

The exact multi-core schedule interleaves cores access-by-access against one
shared LLC and one shared DRAM model, which forces the whole mix into a
single sequential loop.  Epoch sharding breaks that dependency: each core
runs one *epoch* (a fixed slice of its instruction budget) against a private
**shadow** of the shared state, recording every operation it performs on the
shared resources.  Because core-epochs touch no common mutable state, they
are independent tasks — they can run in any order, or concurrently, and
produce identical results.

Between epochs the master state is **reconciled**:

* **LLC** — each core's fills, demand probes and prefetch-source touches
  are replayed onto the master in ascending core-id order, so the master's
  contents and recency order reflect every core's traffic; blocks a core
  brought in become visible to the other cores at the next epoch boundary.
* **DRAM** — requests are merged across cores by issue cycle (stable:
  ties resolve by core id, then per-core request order) and replayed, so a
  request from a slow-clocked core can still use an idle bus gap between a
  fast-clocked core's transfers, as it would under exact interleaving.  A
  contended channel's busy-until backlog is thereby carried into the next
  epoch.

Cross-core queueing *within* an epoch is approximated with **ghost
traffic**: each core's shadow DRAM is pre-loaded with the other cores'
previous-epoch request logs, cycle-shifted forward by one epoch (each
core's own measured cycle span), and applies them lazily as the core's own
requests advance through the epoch.  Ghosts disturb busy-until times and
row-buffer state exactly like concurrent traffic would, one epoch stale;
they are never logged, so reconciliation replays each real request exactly
once.

The approximation error relative to the exact interleaving is bounded by
the epoch length and pinned by ``tests/test_multicore.py`` on golden mixes;
single-core mixes are bit-identical by construction (no cross-core traffic
exists, so shadows behave exactly like the master).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.cache import Cache, CacheBlock
from repro.sim.dram import DRAMModel

#: LLC log opcodes.
LLC_FILL = 0
LLC_PROBE = 1
LLC_TOUCH = 2

#: A logged DRAM request: ``(cycle, block, is_prefetch)``.
DRAMRequest = Tuple[int, int, bool]


class CowCacheShadow:
    """Copy-on-write view of a shared :class:`Cache` for one core-epoch.

    The historical shadow was a full :meth:`Cache.clone` per core per epoch
    — for a many-megabyte LLC that copies every resident block even though
    one epoch touches a small fraction of the sets.  This shadow instead
    shares the master's per-set dicts read-only and deep-copies a set (dict
    *and* its :class:`~repro.sim.cache.CacheBlock` entries, preserving the
    recency order) the first time the epoch needs to mutate it: LRU-touch
    on a hit, a fill, or a flag update.  Pure reads — ``contains``,
    ``lookup(update_lru=False)``, and the miss outcome of ``probe`` — never
    copy.

    Behaviour is indistinguishable from running against a clone: the
    copied sets evolve exactly as the clone's would, master state is never
    mutated (reconciliation replays the recorded logs afterwards), and the
    aggregate counters start from the master's values exactly as
    :meth:`Cache.clone` carries them (they are read by nothing during the
    epoch and discarded with the shadow).  Like clones, shadows have no
    eviction listeners — the shared LLC never has any.

    Concurrent core-epochs on threads are safe: every shadow only *reads*
    the master's sets, which are not mutated until the serial
    reconciliation step.
    """

    __slots__ = (
        "base",
        "_sets",
        "_base_sets",
        "_set_mask",
        "_set_count",
        "_ways",
        "hits",
        "misses",
        "evictions",
        "useless_prefetch_evictions",
    )

    def __init__(self, base: Cache) -> None:
        self.base = base
        self._base_sets = base._sets
        self._set_mask = base._set_mask
        self._set_count = base._set_count
        self._ways = base._ways
        #: Privately-copied sets, keyed by set index.
        self._sets: Dict[int, Dict[int, CacheBlock]] = {}
        self.hits = base.hits
        self.misses = base.misses
        self.evictions = base.evictions
        self.useless_prefetch_evictions = base.useless_prefetch_evictions

    def _index_of(self, block: int) -> int:
        mask = self._set_mask
        if mask is not None:
            return block & mask
        return block % self._set_count

    def _owned_set(self, index: int) -> Dict[int, CacheBlock]:
        """The private copy of set ``index``, copying it on first use."""
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = {
                block: CacheBlock(
                    entry.block,
                    entry.prefetched,
                    entry.prefetch_useful,
                    entry.from_dram,
                    entry.dirty,
                    entry.useful_counted,
                )
                for block, entry in self._base_sets[index].items()
            }
            self._sets[index] = cache_set
        return cache_set

    # ------------------------------------------------------------------ #
    # The Cache surface the hierarchy uses on its LLC
    # ------------------------------------------------------------------ #
    def probe(self, block: int) -> Optional[CacheBlock]:
        index = self._index_of(block)
        cache_set = self._sets.get(index)
        if cache_set is None:
            # A miss needs no copy: only the (discarded) counter changes.
            if block not in self._base_sets[index]:
                self.misses += 1
                return None
            cache_set = self._owned_set(index)
        entry = cache_set.get(block)
        if entry is None:
            self.misses += 1
            return None
        del cache_set[block]
        cache_set[block] = entry
        self.hits += 1
        if entry.prefetched and not entry.prefetch_useful:
            entry.prefetch_useful = True
        return entry

    def lookup(self, block: int, update_lru: bool = True) -> Optional[CacheBlock]:
        index = self._index_of(block)
        cache_set = self._sets.get(index)
        if cache_set is None:
            base_set = self._base_sets[index]
            if block not in base_set:
                return None
            if not update_lru:
                # Read-only peek: serving the master's entry is safe (the
                # hierarchy only reads presence on this path).
                return base_set[block]
            cache_set = self._owned_set(index)
        entry = cache_set.get(block)
        if entry is not None and update_lru:
            del cache_set[block]
            cache_set[block] = entry
        return entry

    def contains(self, block: int) -> bool:
        index = self._index_of(block)
        cache_set = self._sets.get(index)
        if cache_set is None:
            return block in self._base_sets[index]
        return block in cache_set

    def fill(
        self,
        block: int,
        prefetched: bool = False,
        from_dram: bool = False,
        dirty: bool = False,
    ) -> Optional[CacheBlock]:
        cache_set = self._owned_set(self._index_of(block))
        existing = cache_set.get(block)
        if existing is not None:
            del cache_set[block]
            cache_set[block] = existing
            if dirty:
                existing.dirty = True
            return None
        victim: Optional[CacheBlock] = None
        if len(cache_set) >= self._ways:
            victim = cache_set.pop(next(iter(cache_set)))
            self.evictions += 1
            if victim.prefetched and not victim.prefetch_useful:
                self.useless_prefetch_evictions += 1
        cache_set[block] = CacheBlock(block, prefetched, False, from_dram, dirty)
        return victim


class RecordingCache:
    """Shadow of a shared cache that logs every state-affecting operation.

    Exposes exactly the surface :class:`~repro.sim.hierarchy.CacheHierarchy`
    uses on its LLC (``probe``/``fill``/``lookup``/``contains``).  Reads
    that cannot change state (``contains``, ``lookup`` without an LRU
    update) are not logged.
    """

    __slots__ = ("base", "log")

    def __init__(self, base: Cache) -> None:
        self.base = base
        self.log: List[Tuple] = []

    def probe(self, block: int):
        self.log.append((LLC_PROBE, block))
        return self.base.probe(block)

    def lookup(self, block: int, update_lru: bool = True):
        if update_lru:
            self.log.append((LLC_TOUCH, block))
        return self.base.lookup(block, update_lru)

    def contains(self, block: int) -> bool:
        return self.base.contains(block)

    def fill(
        self,
        block: int,
        prefetched: bool = False,
        from_dram: bool = False,
        dirty: bool = False,
    ):
        self.log.append((LLC_FILL, block, prefetched, from_dram, dirty))
        return self.base.fill(block, prefetched, from_dram, dirty)


class RecordingDRAM:
    """Shadow of the shared DRAM model with ghost cross-traffic.

    ``ghosts`` is a cycle-sorted sequence of the other cores'
    previous-epoch requests; before serving each real request, every ghost
    whose cycle has been reached is applied to the underlying model
    (advancing busy-until times and row-buffer state) without being logged.
    Real requests are logged as ``(cycle, block, is_prefetch)`` for the
    reconciliation replay.
    """

    __slots__ = ("base", "log", "ghosts", "_ghost_pos")

    def __init__(self, base: DRAMModel, ghosts: Sequence[DRAMRequest] = ()) -> None:
        self.base = base
        self.log: List[DRAMRequest] = []
        self.ghosts = ghosts
        self._ghost_pos = 0

    def access(self, block: int, cycle: int, is_prefetch: bool = False) -> int:
        ghosts = self.ghosts
        position = self._ghost_pos
        if position < len(ghosts):
            base_access = self.base.access
            while position < len(ghosts) and ghosts[position][0] <= cycle:
                ghost_cycle, ghost_block, ghost_prefetch = ghosts[position]
                base_access(ghost_block, ghost_cycle, ghost_prefetch)
                position += 1
            self._ghost_pos = position
        self.log.append((cycle, block, is_prefetch))
        return self.base.access(block, cycle, is_prefetch)


def replay_llc_log(master: Cache, log: List[Tuple]) -> None:
    """Re-apply one core's LLC operations onto the master cache.

    The replayed hit results are irrelevant (the core already consumed its
    shadow's answers); only the state transitions — contents, recency
    order, prefetch-provenance flags — matter.  The master LLC has no
    eviction listeners, so replay fires no per-core statistics.
    """
    for op in log:
        code = op[0]
        if code == LLC_FILL:
            master.fill(op[1], prefetched=op[2], from_dram=op[3], dirty=op[4])
        elif code == LLC_PROBE:
            master.probe(op[1])
        else:
            master.lookup(op[1], update_lru=True)


def replay_dram_logs(
    master: DRAMModel, logs: Sequence[List[DRAMRequest]]
) -> None:
    """Re-apply every core's real DRAM requests onto the master model.

    ``logs[i]`` is core ``i``'s request log; requests are merged by issue
    cycle (stable tie-break: core id, then per-core order) before being
    re-applied, mirroring the arrival order exact interleaving would have
    produced.  The replayed latencies are discarded — only the busy-until /
    open-row state transitions and the master's aggregate counters matter.
    """
    merged: List[Tuple[int, int, int, int, bool]] = []
    for core_id, log in enumerate(logs):
        for index, (cycle, block, is_prefetch) in enumerate(log):
            merged.append((cycle, core_id, index, block, is_prefetch))
    merged.sort(key=lambda item: item[:3])
    for cycle, _core_id, _index, block, is_prefetch in merged:
        master.access(block, cycle, is_prefetch)


def shifted_ghosts(
    logs: Sequence[List[DRAMRequest]],
    spans: Sequence[int],
    exclude_core: int,
) -> List[DRAMRequest]:
    """Cycle-sorted ghost traffic for one core's next epoch.

    Every other core's previous-epoch log is shifted forward by that core's
    measured cycle span (so the traffic pattern repeats in the cycle window
    the next epoch will traverse) and the union is sorted by cycle.
    """
    ghosts: List[DRAMRequest] = []
    for core_id, log in enumerate(logs):
        if core_id == exclude_core:
            continue
        shift = spans[core_id]
        for cycle, block, is_prefetch in log:
            ghosts.append((cycle + shift, block, is_prefetch))
    ghosts.sort()
    return ghosts
