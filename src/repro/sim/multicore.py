"""Multi-core simulation driver.

Models an ``n``-core system in which each core has private L1D/L2C caches,
its own prefetcher instance and its own timing model, while the LLC and the
DRAM channels are shared.  Mixes follow the paper's methodology: a
*homogeneous* mix runs ``n`` copies of one trace; a *heterogeneous* mix runs
``n`` different traces.  A core that exhausts its instruction budget keeps
replaying its trace (to keep pressuring shared resources) but stops
accumulating statistics: its measured instruction/cycle totals are
snapshotted the moment the budget is exhausted, and every later counter
update lands in a discarded sink.

Two execution schedules are provided:

* ``mode="exact"`` — cores are interleaved access-by-access in a
  round-robin fashion; contention appears through the shared LLC contents
  and through the DRAM channel-occupancy model.  This is the reference
  schedule (and the one golden mixes snapshot).
* ``mode="epoch"`` — the epoch-sharded schedule: each core runs one epoch
  (a fixed slice of instructions) against private recording shadows of the
  shared LLC/DRAM, intra-epoch cross-core DRAM contention is approximated
  by one-epoch-stale ghost traffic, and the master state is reconciled
  between epochs by deterministically replaying the shared-resource
  operation logs (see :mod:`repro.sim.sharding`).  Core-epochs are
  independent tasks, so they may execute in any order — or concurrently
  via ``workers`` — with results identical to the serial epoch schedule.
  Relative to ``exact``, the approximation is bounded by the epoch length;
  single-core mixes are bit-identical, and ``tests/test_multicore.py``
  pins the per-core IPC error on golden multi-core mixes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence

from repro.sim.cache import Cache
from repro.sim.config import SystemConfig, default_system_config
from repro.sim.cpu import CoreTimingModel
from repro.sim.dram import DRAMModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.sharding import (
    CowCacheShadow,
    RecordingCache,
    RecordingDRAM,
    replay_dram_logs,
    replay_llc_log,
    shifted_ghosts,
)
from repro.sim.simulator import _TraceReplayer
from repro.sim.stats import MultiCoreStats, SimulationStats
from repro.sim.types import AccessType, MemoryAccess

#: Execution schedules accepted by :meth:`MultiCoreSimulator.run`.
MIX_MODES = ("exact", "epoch")


def default_epoch_instructions(max_instructions_per_core: int) -> int:
    """The auto epoch length: an eighth of the budget, at least 500.

    Short enough that shared-state reconciliation happens several times per
    run (bounding the sharding approximation), long enough that the
    clone/replay overhead stays well under the simulation cost.
    """
    return max(500, max_instructions_per_core // 8)


class _CoreContext:
    """Per-core bookkeeping used by the multi-core driver."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        prefetcher,
        trace,
        shared_llc: Cache,
        shared_dram: DRAMModel,
        name: str,
    ) -> None:
        self.core_id = core_id
        self.prefetcher = prefetcher
        self.stats = SimulationStats(
            name=name,
            prefetcher=getattr(prefetcher, "name", "none") if prefetcher else "none",
        )
        self.hierarchy = CacheHierarchy(
            config, stats=self.stats, shared_llc=shared_llc, shared_dram=shared_dram
        )
        self.core = CoreTimingModel(config.core)
        if prefetcher is not None and hasattr(prefetcher, "on_cache_eviction"):
            listeners = self.hierarchy.l1d.eviction_listeners
            # Bound method (identity-comparable) instead of a per-instance
            # lambda; guards against stacking a duplicate listener when a
            # prefetcher/hierarchy pairing is rewired.
            if self._notify_prefetcher_eviction not in listeners:
                listeners.append(self._notify_prefetcher_eviction)
        # Mixes replay traces indefinitely to keep pressuring shared
        # resources, so the source must be replayable: materialized
        # sequences and re-openable handles (TraceFile) are used as-is —
        # the latter replay by re-opening, keeping memory O(1) — while
        # one-shot iterators are materialized.
        if hasattr(trace, "__next__"):
            trace = list(trace)
        self.replayer = _TraceReplayer(trace)
        self.executed_instructions = 0
        self.budget = 0
        self.measuring = True

    def _notify_prefetcher_eviction(self, victim) -> None:
        """Forward an L1D eviction to the prefetcher's region deactivation."""
        self.prefetcher.on_cache_eviction(victim.block)

    def step(self) -> None:
        """Execute one memory access (plus its preceding non-memory gap)."""
        core = self.core
        hierarchy = self.hierarchy
        access = self.replayer.next_access(replay=True)
        gap = access.instr_gap
        if gap > 0:
            core.advance_non_memory(gap)
        issue_cycle = core.begin_memory_access()
        self.executed_instructions += gap + 1

        hierarchy.issue_queued_prefetches(issue_cycle)
        access_type = access.access_type
        result = hierarchy.demand_access(
            access.address, issue_cycle, access_type is AccessType.STORE
        )
        core.complete_memory_access(result.latency)

        if self.prefetcher is not None and access_type is AccessType.LOAD:
            requests = self.prefetcher.train(
                access.pc, access.address, issue_cycle, result
            )
            if requests:
                hierarchy.enqueue_prefetches(requests, issue_cycle)

        if self.measuring and self.executed_instructions >= self.budget:
            self.close_measurement()

    def close_measurement(self) -> None:
        """Freeze this core's measured statistics at budget exhaustion.

        The instruction/cycle totals are snapshotted *now* (so a finished
        core's IPC cannot drift with the overall mix length) and the
        hierarchy's statistics target is swapped to a discarded sink: the
        core keeps running — keeps demanding, prefetching and occupying the
        shared LLC/DRAM — but no longer pollutes its measured counters.
        """
        self.measuring = False
        instructions, cycles = self.core.progress_totals()
        self.stats.instructions = instructions
        self.stats.cycles = cycles
        self.hierarchy.stats = SimulationStats(
            name=self.stats.name, prefetcher=self.stats.prefetcher
        )

    def run_until(self, instruction_target: int) -> None:
        """Step until this core has executed ``instruction_target`` total.

        One core-epoch of the sharded schedule.  Touches only this
        context's private state (and whatever shadows its hierarchy is
        currently bound to), so concurrent calls on different contexts are
        safe and deterministic.
        """
        step = self.step
        while self.executed_instructions < instruction_target:
            step()

    def finalize(self) -> SimulationStats:
        """Return the measured statistics (closing measurement if needed)."""
        if self.measuring:
            self.close_measurement()
        return self.stats


class MultiCoreSimulator:
    """Runs an ``n``-core mix with a shared LLC and DRAM."""

    def __init__(
        self,
        num_cores: int,
        prefetcher_factory: Optional[Callable[[], object]] = None,
        config: Optional[SystemConfig] = None,
        name: str = "",
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        base = config if config is not None else default_system_config(num_cores)
        self.config = base.scaled_for_cores(num_cores)
        self.num_cores = num_cores
        self.prefetcher_factory = prefetcher_factory
        self.name = name
        self.shared_llc = Cache(self.config.llc)
        self.shared_dram = DRAMModel(self.config.dram)

    def run(
        self,
        traces: Sequence,
        max_instructions_per_core: int,
        mode: str = "exact",
        epoch_instructions: int = 0,
        workers: int = 1,
    ) -> MultiCoreStats:
        """Simulate the mix; ``traces`` must contain one trace per core.

        Each entry may be a materialized access sequence or a re-openable
        streaming handle (:class:`repro.workloads.formats.TraceFile`);
        handles are replayed by re-opening, so an n-core mix over file
        traces runs in O(1) memory per core.

        ``mode`` selects the schedule (see the module docstring):
        ``"exact"`` interleaves access-by-access, ``"epoch"`` runs the
        epoch-sharded schedule with ``epoch_instructions`` per epoch
        (``0`` = :func:`default_epoch_instructions`) and core-epochs
        dispatched over ``workers`` threads when ``workers > 1`` — results
        are identical for any worker count.
        """
        if mode not in MIX_MODES:
            raise ValueError(f"unknown mix mode {mode!r}; expected one of {MIX_MODES}")
        if len(traces) != self.num_cores:
            raise ValueError(
                f"expected {self.num_cores} traces, got {len(traces)}"
            )
        contexts: List[_CoreContext] = []
        for core_id, trace in enumerate(traces):
            prefetcher = (
                self.prefetcher_factory() if self.prefetcher_factory else None
            )
            context = _CoreContext(
                core_id=core_id,
                config=self.config,
                prefetcher=prefetcher,
                trace=trace,
                shared_llc=self.shared_llc,
                shared_dram=self.shared_dram,
                name=f"{self.name}.core{core_id}",
            )
            context.budget = max_instructions_per_core
            contexts.append(context)

        if mode == "exact":
            self._run_exact(contexts)
        else:
            if epoch_instructions <= 0:
                epoch_instructions = default_epoch_instructions(
                    max_instructions_per_core
                )
            self._run_epoch(contexts, epoch_instructions, workers)

        result = MultiCoreStats(
            name=self.name,
            prefetcher=contexts[0].stats.prefetcher if contexts else "none",
        )
        for context in contexts:
            result.per_core[context.core_id] = context.finalize()
        return result

    # ------------------------------------------------------------------ #
    # Schedules
    # ------------------------------------------------------------------ #
    def _run_exact(self, contexts: List[_CoreContext]) -> None:
        """Round-robin access-by-access interleaving (the reference)."""
        while any(context.measuring for context in contexts):
            for context in contexts:
                # Finished cores keep stepping to exert shared-resource
                # pressure (their stats are gated), but only for as long as
                # someone is still measuring.
                context.step()

    def _run_epoch(
        self,
        contexts: List[_CoreContext],
        epoch_instructions: int,
        workers: int,
    ) -> None:
        """The epoch-sharded schedule (see :mod:`repro.sim.sharding`)."""
        master_llc = self.shared_llc
        master_dram = self.shared_dram
        num_cores = len(contexts)
        pool = (
            ThreadPoolExecutor(max_workers=min(workers, num_cores))
            if workers > 1 and num_cores > 1
            else None
        )
        # Previous-epoch DRAM logs and per-core cycle spans feed the ghost
        # cross-traffic of the next epoch (empty for the first epoch).
        previous_logs: List[List] = [[] for _ in range(num_cores)]
        spans = [0] * num_cores
        try:
            epoch = 0
            while any(context.measuring for context in contexts):
                epoch += 1
                target = epoch * epoch_instructions
                shadows = []
                cycle_starts = []
                for context in contexts:
                    # Copy-on-write LLC deltas instead of a full
                    # Cache.clone per core per epoch: an epoch touches a
                    # small fraction of a large LLC's sets, and the shadow
                    # copies exactly those (see sharding.CowCacheShadow —
                    # behaviourally indistinguishable from a clone).
                    shadow_llc = RecordingCache(CowCacheShadow(master_llc))
                    shadow_dram = RecordingDRAM(
                        master_dram.clone(),
                        ghosts=shifted_ghosts(
                            previous_logs, spans, context.core_id
                        ),
                    )
                    context.hierarchy.rebind_shared(shadow_llc, shadow_dram)
                    shadows.append((shadow_llc, shadow_dram))
                    cycle_starts.append(context.core.current_cycle)
                if pool is not None:
                    # Core-epochs share no mutable state, so mapping them
                    # over threads is deterministic; list() propagates any
                    # worker exception.
                    list(
                        pool.map(
                            lambda context: context.run_until(target), contexts
                        )
                    )
                else:
                    for context in contexts:
                        context.run_until(target)
                # Reconciliation: replay the shared-resource logs onto the
                # master state — LLC logs in ascending core-id order, DRAM
                # requests merged across cores by issue cycle.
                for shadow_llc, _shadow_dram in shadows:
                    replay_llc_log(master_llc, shadow_llc.log)
                replay_dram_logs(
                    master_dram, [shadow_dram.log for _, shadow_dram in shadows]
                )
                for index, context in enumerate(contexts):
                    previous_logs[index] = shadows[index][1].log
                    spans[index] = max(
                        1, context.core.current_cycle - cycle_starts[index]
                    )
        finally:
            if pool is not None:
                pool.shutdown()
            for context in contexts:
                context.hierarchy.rebind_shared(master_llc, master_dram)


def simulate_mix(
    traces: Sequence[Sequence[MemoryAccess]],
    prefetcher_factory: Optional[Callable[[], object]] = None,
    config: Optional[SystemConfig] = None,
    max_instructions_per_core: int = 50_000,
    name: str = "",
    mode: str = "exact",
    epoch_instructions: int = 0,
    workers: int = 1,
) -> MultiCoreStats:
    """Convenience wrapper around :class:`MultiCoreSimulator`."""
    simulator = MultiCoreSimulator(
        num_cores=len(traces),
        prefetcher_factory=prefetcher_factory,
        config=config,
        name=name,
    )
    return simulator.run(
        traces,
        max_instructions_per_core=max_instructions_per_core,
        mode=mode,
        epoch_instructions=epoch_instructions,
        workers=workers,
    )
