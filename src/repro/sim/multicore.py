"""Multi-core simulation driver.

Models an ``n``-core system in which each core has private L1D/L2C caches,
its own prefetcher instance and its own timing model, while the LLC and the
DRAM channels are shared.  Cores are interleaved access-by-access in a
round-robin fashion; contention appears through the shared LLC contents and
through the DRAM channel-occupancy model (each core stamps DRAM requests
with its own cycle count, which advance at comparable rates).

Mixes follow the paper's methodology: a *homogeneous* mix runs ``n`` copies
of one trace; a *heterogeneous* mix runs ``n`` different traces.  A core
that exhausts its instruction budget keeps replaying its trace (to keep
pressuring shared resources) but stops accumulating statistics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.cache import Cache
from repro.sim.config import SystemConfig, default_system_config
from repro.sim.cpu import CoreTimingModel
from repro.sim.dram import DRAMModel
from repro.sim.hierarchy import CacheHierarchy
from repro.sim.simulator import _TraceReplayer
from repro.sim.stats import MultiCoreStats, SimulationStats
from repro.sim.types import AccessType, MemoryAccess


class _CoreContext:
    """Per-core bookkeeping used by the multi-core driver."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        prefetcher,
        trace,
        shared_llc: Cache,
        shared_dram: DRAMModel,
        name: str,
    ) -> None:
        self.core_id = core_id
        self.prefetcher = prefetcher
        self.stats = SimulationStats(
            name=name,
            prefetcher=getattr(prefetcher, "name", "none") if prefetcher else "none",
        )
        self.hierarchy = CacheHierarchy(
            config, stats=self.stats, shared_llc=shared_llc, shared_dram=shared_dram
        )
        self.core = CoreTimingModel(config.core)
        if prefetcher is not None and hasattr(prefetcher, "on_cache_eviction"):
            listeners = self.hierarchy.l1d.eviction_listeners
            # Bound method (identity-comparable) instead of a per-instance
            # lambda; guards against stacking a duplicate listener when a
            # prefetcher/hierarchy pairing is rewired.
            if self._notify_prefetcher_eviction not in listeners:
                listeners.append(self._notify_prefetcher_eviction)
        # Mixes replay traces indefinitely to keep pressuring shared
        # resources, so the source must be replayable: materialized
        # sequences and re-openable handles (TraceFile) are used as-is —
        # the latter replay by re-opening, keeping memory O(1) — while
        # one-shot iterators are materialized.
        if hasattr(trace, "__next__"):
            trace = list(trace)
        self.replayer = _TraceReplayer(trace)
        self.executed_instructions = 0
        self.finished = False
        self.measuring = True

    def _notify_prefetcher_eviction(self, victim) -> None:
        """Forward an L1D eviction to the prefetcher's region deactivation."""
        self.prefetcher.on_cache_eviction(victim.block)

    def step(self) -> None:
        """Execute one memory access (plus its preceding non-memory gap)."""
        core = self.core
        hierarchy = self.hierarchy
        access = self.replayer.next_access(replay=True)
        gap = access.instr_gap
        if gap > 0:
            core.advance_non_memory(gap)
        issue_cycle = core.begin_memory_access()
        self.executed_instructions += gap + 1

        hierarchy.issue_queued_prefetches(issue_cycle)
        access_type = access.access_type
        result = hierarchy.demand_access(
            access.address, issue_cycle, access_type is AccessType.STORE
        )
        core.complete_memory_access(result.latency)

        if self.prefetcher is not None and access_type is AccessType.LOAD:
            requests = self.prefetcher.train(
                access.pc, access.address, issue_cycle, result
            )
            if requests:
                hierarchy.enqueue_prefetches(requests, issue_cycle)

    def finalize(self) -> SimulationStats:
        """Close the timing model and fill in instruction/cycle totals."""
        self.hierarchy.flush_prefetches(self.core.current_cycle)
        instructions, cycles = self.core.finalize()
        self.stats.instructions = instructions
        self.stats.cycles = cycles
        return self.stats


class MultiCoreSimulator:
    """Runs an ``n``-core mix with a shared LLC and DRAM."""

    def __init__(
        self,
        num_cores: int,
        prefetcher_factory: Optional[Callable[[], object]] = None,
        config: Optional[SystemConfig] = None,
        name: str = "",
    ) -> None:
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        base = config if config is not None else default_system_config(num_cores)
        self.config = base.scaled_for_cores(num_cores)
        self.num_cores = num_cores
        self.prefetcher_factory = prefetcher_factory
        self.name = name
        self.shared_llc = Cache(self.config.llc)
        self.shared_dram = DRAMModel(self.config.dram)

    def run(
        self,
        traces: Sequence,
        max_instructions_per_core: int,
    ) -> MultiCoreStats:
        """Simulate the mix; ``traces`` must contain one trace per core.

        Each entry may be a materialized access sequence or a re-openable
        streaming handle (:class:`repro.workloads.formats.TraceFile`);
        handles are replayed by re-opening, so an n-core mix over file
        traces runs in O(1) memory per core.
        """
        if len(traces) != self.num_cores:
            raise ValueError(
                f"expected {self.num_cores} traces, got {len(traces)}"
            )
        contexts: List[_CoreContext] = []
        for core_id, trace in enumerate(traces):
            prefetcher = (
                self.prefetcher_factory() if self.prefetcher_factory else None
            )
            contexts.append(
                _CoreContext(
                    core_id=core_id,
                    config=self.config,
                    prefetcher=prefetcher,
                    trace=trace,
                    shared_llc=self.shared_llc,
                    shared_dram=self.shared_dram,
                    name=f"{self.name}.core{core_id}",
                )
            )

        unfinished = set(range(self.num_cores))
        while unfinished:
            for context in contexts:
                if context.core_id not in unfinished:
                    # Finished cores keep running to exert shared-resource
                    # pressure, but only for as long as someone is measuring.
                    context.step()
                    continue
                context.step()
                if context.executed_instructions >= max_instructions_per_core:
                    unfinished.discard(context.core_id)

        result = MultiCoreStats(
            name=self.name,
            prefetcher=contexts[0].stats.prefetcher if contexts else "none",
        )
        for context in contexts:
            result.per_core[context.core_id] = context.finalize()
        return result


def simulate_mix(
    traces: Sequence[Sequence[MemoryAccess]],
    prefetcher_factory: Optional[Callable[[], object]] = None,
    config: Optional[SystemConfig] = None,
    max_instructions_per_core: int = 50_000,
    name: str = "",
) -> MultiCoreStats:
    """Convenience wrapper around :class:`MultiCoreSimulator`."""
    simulator = MultiCoreSimulator(
        num_cores=len(traces),
        prefetcher_factory=prefetcher_factory,
        config=config,
        name=name,
    )
    return simulator.run(traces, max_instructions_per_core=max_instructions_per_core)
