"""Set-associative cache model with LRU replacement and prefetch bookkeeping.

The cache tracks, for every resident block, whether it was brought in by a
prefetch and whether it has been demanded since.  This is what lets the
statistics layer classify prefetches as *useful* (demanded before eviction)
or *useless* (evicted untouched), which the paper's accuracy metric is built
on.

Hot-path notes (this module sits under every simulated access):

* Each set is a plain ``dict`` whose *insertion order* is the recency order
  (least-recently-used first).  A touch re-inserts the block at the end, so
  choosing a victim is ``next(iter(set))`` — O(1) instead of the historical
  ``min()`` scan over per-block timestamps, with an identical victim (the
  timestamps were unique and monotone, so "smallest timestamp" and "first
  in recency order" name the same block).
* Set indexing uses a precomputed bitmask when the set count is a power of
  two (every configuration of the paper) and falls back to modulo otherwise
  (odd core counts scale the LLC to non-power-of-two set counts).
* :class:`CacheBlock` is slotted: one is allocated per fill, and the
  hierarchy reads/writes its flags on every access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.config import CacheConfig


@dataclass(slots=True)
class CacheBlock:
    """Metadata of one resident cache block."""

    block: int
    prefetched: bool = False
    prefetch_useful: bool = False
    from_dram: bool = False
    dirty: bool = False
    #: Whether this block's prefetch has already been counted as useful by
    #: the hierarchy's statistics (at most once per fill).
    useful_counted: bool = False


class Cache:
    """A set-associative cache with true-LRU replacement.

    The cache operates on *block numbers* (byte address >> 6), not byte
    addresses; callers are expected to convert first.  Timing is handled by
    the hierarchy -- this class only answers presence questions and manages
    replacement state.

    Slotted: every simulated access reads several of these attributes, and
    slot descriptors are measurably cheaper than instance-dict lookups.
    """

    __slots__ = (
        "config",
        "name",
        "_set_count",
        "_set_mask",
        "_ways",
        "_sets",
        "eviction_listeners",
        "hits",
        "misses",
        "evictions",
        "useless_prefetch_evictions",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.name = config.name
        sets = config.sets
        self._set_count = sets
        #: Bitmask for set indexing, or ``None`` when sets is not 2^k.
        self._set_mask: Optional[int] = sets - 1 if sets & (sets - 1) == 0 else None
        self._ways = config.ways
        self._sets: List[Dict[int, CacheBlock]] = [{} for _ in range(sets)]
        self.eviction_listeners: List[Callable[[CacheBlock], None]] = []
        # Aggregate counters (per-cache, the hierarchy also keeps per-request
        # statistics).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.useless_prefetch_evictions = 0

    # ------------------------------------------------------------------ #
    # Basic geometry helpers
    # ------------------------------------------------------------------ #
    def set_index(self, block: int) -> int:
        """Return the set index a block maps to."""
        mask = self._set_mask
        if mask is not None:
            return block & mask
        return block % self._set_count

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over all block numbers currently resident."""
        for cache_set in self._sets:
            yield from cache_set.keys()

    # ------------------------------------------------------------------ #
    # Lookup / fill / evict
    # ------------------------------------------------------------------ #
    def lookup(self, block: int, update_lru: bool = True) -> Optional[CacheBlock]:
        """Return the resident :class:`CacheBlock` for ``block`` or ``None``.

        ``update_lru`` controls whether the access refreshes the LRU state
        (demand accesses do; probe-only checks from prefetchers do not).
        """
        mask = self._set_mask
        cache_set = self._sets[
            block & mask if mask is not None else block % self._set_count
        ]
        entry = cache_set.get(block)
        if entry is not None and update_lru:
            # Move to most-recently-used position (end of the dict).
            del cache_set[block]
            cache_set[block] = entry
        return entry

    def contains(self, block: int) -> bool:
        """Presence check that does not disturb LRU state."""
        mask = self._set_mask
        return block in self._sets[
            block & mask if mask is not None else block % self._set_count
        ]

    def probe(self, block: int) -> Optional[CacheBlock]:
        """Demand access returning the entry on a hit, ``None`` on a miss.

        Identical bookkeeping to :meth:`access` (hit/miss counters, LRU
        refresh, useful-prefetch marking) without building a result tuple —
        the shape the hierarchy's hot path wants.
        """
        mask = self._set_mask
        cache_set = self._sets[
            block & mask if mask is not None else block % self._set_count
        ]
        entry = cache_set.get(block)
        if entry is None:
            self.misses += 1
            return None
        del cache_set[block]
        cache_set[block] = entry
        self.hits += 1
        if entry.prefetched and not entry.prefetch_useful:
            entry.prefetch_useful = True
        return entry

    def demand_hit_run(
        self,
        blocks,
        kinds,
        gaps,
        start: int,
        stop: int,
        instruction_limit: Optional[int],
    ) -> Tuple[int, int]:
        """Run-length residency probe with batched LRU touches.

        Scans ``blocks[start:stop]`` (parallel to the ``kinds``/``gaps``
        arrays of a :class:`~repro.sim.batch.BatchedTrace`) for the longest
        prefix of *plain* demand hits and retires their cache-side effects
        in one pass: every hit block is LRU-touched (dict re-insertion,
        exactly what :meth:`probe` does), stores merge their dirty bit, and
        the aggregate hit counter is bumped once by the run length.

        The run ends — *without* touching the terminating access — at:

        * the first non-resident block (the scalar kernel will count the
          miss via :meth:`probe`, so the failed residency check here is
          deliberately side-effect free);
        * the first resident block with un-counted prefetch provenance
          (``prefetched and not useful_counted``): serving it updates
          prefetch statistics, which stays the scalar kernel's job;
        * ``instruction_limit`` (``None`` = unlimited): an access is
          included only while the instructions executed so far in this run
          are below the limit, mirroring the scalar kernel's budget check.

        Returns ``(count, instructions)``: how many accesses were retired
        and how many instructions (memory + gap) they carried.  Requires a
        power-of-two set count (callers gate on it).
        """
        sets = self._sets
        mask = self._set_mask
        count = 0
        instructions = 0
        index = start
        while index < stop:
            if instruction_limit is not None and instructions >= instruction_limit:
                break
            block = blocks[index]
            cache_set = sets[block & mask]
            entry = cache_set.get(block)
            if entry is None or (entry.prefetched and not entry.useful_counted):
                break
            del cache_set[block]
            cache_set[block] = entry
            if kinds[index] == 1:
                entry.dirty = True
            instructions += gaps[index] + 1
            count += 1
            index += 1
        self.hits += count
        return count, instructions

    def access(self, block: int) -> Tuple[bool, Optional[CacheBlock]]:
        """Perform a demand access for ``block``.

        Returns ``(hit, entry)``.  On a hit the entry's LRU position is
        refreshed and, if the block was prefetched and not yet used, it is
        marked as a useful prefetch.
        """
        entry = self.probe(block)
        return (entry is not None), entry

    def fill(
        self,
        block: int,
        prefetched: bool = False,
        from_dram: bool = False,
        dirty: bool = False,
    ) -> Optional[CacheBlock]:
        """Insert ``block``; return the evicted :class:`CacheBlock` if any.

        Filling a block that is already resident refreshes its LRU position
        and merges the ``dirty`` flag without changing its prefetch
        provenance.
        """
        mask = self._set_mask
        cache_set = self._sets[
            block & mask if mask is not None else block % self._set_count
        ]
        existing = cache_set.get(block)
        if existing is not None:
            del cache_set[block]
            cache_set[block] = existing
            if dirty:
                existing.dirty = True
            return None

        victim: Optional[CacheBlock] = None
        if len(cache_set) >= self._ways:
            victim_block = next(iter(cache_set))
            victim = cache_set.pop(victim_block)
            self.evictions += 1
            if victim.prefetched and not victim.prefetch_useful:
                self.useless_prefetch_evictions += 1
            for listener in self.eviction_listeners:
                listener(victim)

        cache_set[block] = CacheBlock(block, prefetched, False, from_dram, dirty)
        return victim

    def fill_absent(
        self,
        block: int,
        prefetched: bool = False,
        from_dram: bool = False,
        dirty: bool = False,
    ) -> None:
        """Fill for a block the caller has just proven non-resident.

        Identical state transitions and listener behaviour to :meth:`fill`
        minus the already-resident check, plus one extra liberty: the victim
        object is *recycled* into the new entry after the listeners return
        (listeners only read the victim synchronously, and — unlike
        :meth:`fill` — nothing is returned), so the hot fill paths of the
        hierarchy allocate no :class:`CacheBlock` once their sets are warm.
        """
        mask = self._set_mask
        cache_set = self._sets[
            block & mask if mask is not None else block % self._set_count
        ]
        if len(cache_set) >= self._ways:
            victim = cache_set.pop(next(iter(cache_set)))
            self.evictions += 1
            if victim.prefetched and not victim.prefetch_useful:
                self.useless_prefetch_evictions += 1
            listeners = self.eviction_listeners
            if listeners:
                for listener in listeners:
                    listener(victim)
            victim.block = block
            victim.prefetched = prefetched
            victim.prefetch_useful = False
            victim.from_dram = from_dram
            victim.dirty = dirty
            victim.useful_counted = False
            cache_set[block] = victim
        else:
            cache_set[block] = CacheBlock(block, prefetched, False, from_dram, dirty)

    def invalidate(self, block: int) -> Optional[CacheBlock]:
        """Remove ``block`` from the cache (no listeners fired)."""
        return self._sets[self.set_index(block)].pop(block, None)

    def clone(self) -> "Cache":
        """Deep copy of contents, recency order and aggregate counters.

        Blocks are copied (the clone's flag mutations never leak back) and
        dict insertion order — the LRU order — is preserved.  Eviction
        listeners are deliberately *not* carried over: clones serve as
        per-core shared-LLC shadows in epoch-sharded multi-core execution,
        where the shared LLC has no listeners.
        """
        twin = Cache(self.config)
        for index, cache_set in enumerate(self._sets):
            twin_set = twin._sets[index]
            for block, entry in cache_set.items():
                twin_set[block] = CacheBlock(
                    entry.block,
                    entry.prefetched,
                    entry.prefetch_useful,
                    entry.from_dram,
                    entry.dirty,
                    entry.useful_counted,
                )
        twin.hits = self.hits
        twin.misses = self.misses
        twin.evictions = self.evictions
        twin.useless_prefetch_evictions = self.useless_prefetch_evictions
        return twin

    def reset_statistics(self) -> None:
        """Zero the aggregate hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.useless_prefetch_evictions = 0


class MSHRFile:
    """Tracks outstanding fills (misses / in-flight prefetches) for one cache.

    Each entry maps a block number to the cycle its data arrives plus
    whether the fill was initiated by a prefetch.  The structure enforces a
    capacity limit; callers must check :meth:`has_free_entry` before
    allocating a prefetch entry (demand misses are modelled as always
    schedulable to keep the timing model simple).
    """

    __slots__ = ("capacity", "_entries", "_min_ready")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, "MSHREntry"] = {}
        # Earliest ready_cycle among outstanding entries; kept conservative
        # (never later than the true minimum) so expire() can skip its scan
        # when no entry can possibly be ready yet.
        self._min_ready = float("inf")

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def has_free_entry(self, cycle: int) -> bool:
        """True if a new entry can be allocated at ``cycle``."""
        self.expire(cycle)
        return len(self._entries) < self.capacity

    def allocate(
        self, block: int, ready_cycle: int, is_prefetch: bool, hint_level: int = 1
    ) -> "MSHREntry":
        """Allocate (or merge into) an entry for ``block``."""
        entry = self._entries.get(block)
        if entry is not None:
            if ready_cycle < entry.ready_cycle:
                entry.ready_cycle = ready_cycle
            if ready_cycle < self._min_ready:
                self._min_ready = ready_cycle
            return entry
        entry = MSHREntry(block, ready_cycle, is_prefetch, hint_level)
        self._entries[block] = entry
        if ready_cycle < self._min_ready:
            self._min_ready = ready_cycle
        return entry

    def lookup(self, block: int) -> Optional["MSHREntry"]:
        """Return the outstanding entry for ``block`` if any."""
        return self._entries.get(block)

    def remove(self, block: int) -> Optional["MSHREntry"]:
        """Remove and return the entry for ``block``."""
        return self._entries.pop(block, None)

    def expire(self, cycle: int) -> List["MSHREntry"]:
        """Remove and return all entries whose data has arrived by ``cycle``.

        The nothing-ready fast path returns a shared empty tuple: this runs
        once per demand access while any fill is outstanding, and callers
        only iterate the result.
        """
        entries = self._entries
        if not entries or cycle < self._min_ready:
            return _NO_ENTRIES
        done = [e for e in entries.values() if e.ready_cycle <= cycle]
        for entry in done:
            del entries[entry.block]
        if entries:
            self._min_ready = min(e.ready_cycle for e in entries.values())
        else:
            self._min_ready = float("inf")
        return done

    def outstanding(self) -> List["MSHREntry"]:
        """Return a snapshot of all outstanding entries."""
        return list(self._entries.values())


#: Shared empty result of :meth:`MSHRFile.expire`'s fast path.
_NO_ENTRIES = ()


@dataclass(slots=True)
class MSHREntry:
    """One outstanding fill tracked by an :class:`MSHRFile`."""

    block: int
    ready_cycle: int
    is_prefetch: bool
    hint_level: int = 1
    from_dram: bool = False
