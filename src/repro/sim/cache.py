"""Set-associative cache model with LRU replacement and prefetch bookkeeping.

The cache tracks, for every resident block, whether it was brought in by a
prefetch and whether it has been demanded since.  This is what lets the
statistics layer classify prefetches as *useful* (demanded before eviction)
or *useless* (evicted untouched), which the paper's accuracy metric is built
on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.sim.config import CacheConfig


@dataclass
class CacheBlock:
    """Metadata of one resident cache block."""

    block: int
    last_used: int = 0
    prefetched: bool = False
    prefetch_useful: bool = False
    from_dram: bool = False
    dirty: bool = False


class Cache:
    """A set-associative cache with true-LRU replacement.

    The cache operates on *block numbers* (byte address >> 6), not byte
    addresses; callers are expected to convert first.  Timing is handled by
    the hierarchy -- this class only answers presence questions and manages
    replacement state.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.name = config.name
        self._sets: List[Dict[int, CacheBlock]] = [
            {} for _ in range(config.sets)
        ]
        self._use_counter = 0
        self.eviction_listeners: List[Callable[[CacheBlock], None]] = []
        # Aggregate counters (per-cache, the hierarchy also keeps per-request
        # statistics).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.useless_prefetch_evictions = 0

    # ------------------------------------------------------------------ #
    # Basic geometry helpers
    # ------------------------------------------------------------------ #
    def set_index(self, block: int) -> int:
        """Return the set index a block maps to."""
        return block % self.config.sets

    def __len__(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over all block numbers currently resident."""
        for cache_set in self._sets:
            yield from cache_set.keys()

    # ------------------------------------------------------------------ #
    # Lookup / fill / evict
    # ------------------------------------------------------------------ #
    def lookup(self, block: int, update_lru: bool = True) -> Optional[CacheBlock]:
        """Return the resident :class:`CacheBlock` for ``block`` or ``None``.

        ``update_lru`` controls whether the access refreshes the LRU state
        (demand accesses do; probe-only checks from prefetchers do not).
        """
        entry = self._sets[self.set_index(block)].get(block)
        if entry is not None and update_lru:
            self._use_counter += 1
            entry.last_used = self._use_counter
        return entry

    def contains(self, block: int) -> bool:
        """Presence check that does not disturb LRU state."""
        return block in self._sets[self.set_index(block)]

    def access(self, block: int) -> Tuple[bool, Optional[CacheBlock]]:
        """Perform a demand access for ``block``.

        Returns ``(hit, entry)``.  On a hit the entry's LRU position is
        refreshed and, if the block was prefetched and not yet used, it is
        marked as a useful prefetch.
        """
        entry = self.lookup(block, update_lru=True)
        if entry is None:
            self.misses += 1
            return False, None
        self.hits += 1
        if entry.prefetched and not entry.prefetch_useful:
            entry.prefetch_useful = True
        return True, entry

    def fill(
        self,
        block: int,
        prefetched: bool = False,
        from_dram: bool = False,
        dirty: bool = False,
    ) -> Optional[CacheBlock]:
        """Insert ``block``; return the evicted :class:`CacheBlock` if any.

        Filling a block that is already resident refreshes its LRU position
        and merges the ``dirty`` flag without changing its prefetch
        provenance.
        """
        cache_set = self._sets[self.set_index(block)]
        self._use_counter += 1
        existing = cache_set.get(block)
        if existing is not None:
            existing.last_used = self._use_counter
            existing.dirty = existing.dirty or dirty
            return None

        victim: Optional[CacheBlock] = None
        if len(cache_set) >= self.config.ways:
            victim_block = min(cache_set, key=lambda b: cache_set[b].last_used)
            victim = cache_set.pop(victim_block)
            self.evictions += 1
            if victim.prefetched and not victim.prefetch_useful:
                self.useless_prefetch_evictions += 1
            for listener in self.eviction_listeners:
                listener(victim)

        cache_set[block] = CacheBlock(
            block=block,
            last_used=self._use_counter,
            prefetched=prefetched,
            prefetch_useful=False,
            from_dram=from_dram,
            dirty=dirty,
        )
        return victim

    def invalidate(self, block: int) -> Optional[CacheBlock]:
        """Remove ``block`` from the cache (no listeners fired)."""
        return self._sets[self.set_index(block)].pop(block, None)

    def reset_statistics(self) -> None:
        """Zero the aggregate hit/miss/eviction counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.useless_prefetch_evictions = 0


class MSHRFile:
    """Tracks outstanding fills (misses / in-flight prefetches) for one cache.

    Each entry maps a block number to the cycle its data arrives plus
    whether the fill was initiated by a prefetch.  The structure enforces a
    capacity limit; callers must check :meth:`has_free_entry` before
    allocating a prefetch entry (demand misses are modelled as always
    schedulable to keep the timing model simple).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, "MSHREntry"] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def has_free_entry(self, cycle: int) -> bool:
        """True if a new entry can be allocated at ``cycle``."""
        self.expire(cycle)
        return len(self._entries) < self.capacity

    def allocate(
        self, block: int, ready_cycle: int, is_prefetch: bool, hint_level: int = 1
    ) -> "MSHREntry":
        """Allocate (or merge into) an entry for ``block``."""
        entry = self._entries.get(block)
        if entry is not None:
            entry.ready_cycle = min(entry.ready_cycle, ready_cycle)
            return entry
        entry = MSHREntry(
            block=block,
            ready_cycle=ready_cycle,
            is_prefetch=is_prefetch,
            hint_level=hint_level,
        )
        self._entries[block] = entry
        return entry

    def lookup(self, block: int) -> Optional["MSHREntry"]:
        """Return the outstanding entry for ``block`` if any."""
        return self._entries.get(block)

    def remove(self, block: int) -> Optional["MSHREntry"]:
        """Remove and return the entry for ``block``."""
        return self._entries.pop(block, None)

    def expire(self, cycle: int) -> List["MSHREntry"]:
        """Remove and return all entries whose data has arrived by ``cycle``."""
        done = [e for e in self._entries.values() if e.ready_cycle <= cycle]
        for entry in done:
            del self._entries[entry.block]
        return done

    def outstanding(self) -> List["MSHREntry"]:
        """Return a snapshot of all outstanding entries."""
        return list(self._entries.values())


@dataclass
class MSHREntry:
    """One outstanding fill tracked by an :class:`MSHRFile`."""

    block: int
    ready_cycle: int
    is_prefetch: bool
    hint_level: int = 1
    from_dram: bool = False
