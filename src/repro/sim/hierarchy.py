"""Three-level cache hierarchy with prefetch routing.

The hierarchy owns an L1D, a private L2C and an LLC (which may be shared in
multi-core simulations), plus a DRAM model, an L1 MSHR file used to track
in-flight prefetches, and a prefetch queue.  It is deliberately
non-inclusive and write-allocate; stores are treated like loads for timing
purposes (the paper trains prefetchers on loads only, which the simulator
driver enforces).

Responsibilities:

* compute the load-to-use latency of every demand access (including partial
  savings from late prefetches),
* fill/evict blocks with prefetch provenance so usefulness can be measured,
* issue queued prefetch requests, accounting for redundant requests, MSHR
  pressure and DRAM bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.cache import Cache, MSHRFile
from repro.sim.config import SystemConfig
from repro.sim.dram import DRAMModel
from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.stats import SimulationStats
from repro.sim.types import AccessResult, PrefetchHint, PrefetchRequest, block_number


class CacheHierarchy:
    """L1D + L2C + LLC + DRAM with prefetch support for one core."""

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[SimulationStats] = None,
        shared_llc: Optional[Cache] = None,
        shared_dram: Optional[DRAMModel] = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else SimulationStats()
        self.l1d = Cache(config.l1d)
        self.l2c = Cache(config.l2c)
        self.llc = shared_llc if shared_llc is not None else Cache(config.llc)
        self.dram = shared_dram if shared_dram is not None else DRAMModel(config.dram)
        self.l1_mshr = MSHRFile(config.l1d.mshrs)
        self.prefetch_queue = PrefetchQueue(
            capacity=config.l1d.prefetch_queue_size,
            drain_per_access=config.l1d.max_prefetch_issue_per_access,
        )
        self._register_eviction_listeners()

    # ------------------------------------------------------------------ #
    # Setup helpers
    # ------------------------------------------------------------------ #
    def _register_eviction_listeners(self) -> None:
        def on_l1_evict(victim) -> None:
            if victim.prefetched and not victim.prefetch_useful:
                self.stats.prefetch.useless += 1

        def on_l2_evict(victim) -> None:
            if victim.prefetched and not victim.prefetch_useful:
                self.stats.prefetch.useless += 1

        self.l1d.eviction_listeners.append(on_l1_evict)
        self.l2c.eviction_listeners.append(on_l2_evict)

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #
    def demand_access(self, address: int, cycle: int, is_store: bool = False) -> AccessResult:
        """Route one demand access through the hierarchy.

        Returns an :class:`AccessResult` with the total latency and the level
        that served the request.  Prefetch bookkeeping (useful / late /
        covered) is updated as a side effect.
        """
        self._complete_ready_prefetches(cycle)

        block = block_number(address)
        stats = self.stats
        stats.demand_accesses += 1
        l1_latency = self.config.l1d.latency

        # 1. In-flight prefetch (late prefetch) -------------------------- #
        inflight = self.l1_mshr.lookup(block)
        if inflight is not None:
            remaining = max(0, inflight.ready_cycle - cycle)
            latency = max(l1_latency, remaining)
            self.l1_mshr.remove(block)
            self.l1d.fill(
                block,
                prefetched=inflight.is_prefetch,
                from_dram=inflight.from_dram,
                dirty=is_store,
            )
            entry = self.l1d.lookup(block, update_lru=True)
            result = AccessResult(
                latency=latency,
                hit_level="L1D",
                served_by_prefetch=inflight.is_prefetch,
                late_prefetch=inflight.is_prefetch,
            )
            stats.l1_hits += 1
            if inflight.is_prefetch:
                entry.prefetch_useful = True
                stats.prefetch.useful_l1 += 1
                stats.prefetch.late += 1
                if inflight.from_dram:
                    stats.prefetch.covered_llc_misses += 1
            stats.total_demand_latency += latency
            return result

        # 2. L1D ---------------------------------------------------------- #
        hit, entry = self.l1d.access(block)
        if hit:
            latency = l1_latency
            served_by_prefetch = False
            if entry.prefetched and not getattr(entry, "_useful_counted", False):
                entry._useful_counted = True  # type: ignore[attr-defined]
                served_by_prefetch = True
                stats.prefetch.useful_l1 += 1
                if entry.from_dram:
                    stats.prefetch.covered_llc_misses += 1
            if is_store:
                entry.dirty = True
            stats.l1_hits += 1
            stats.total_demand_latency += latency
            return AccessResult(
                latency=latency, hit_level="L1D", served_by_prefetch=served_by_prefetch
            )

        stats.l1_misses += 1

        # 3. L2C ---------------------------------------------------------- #
        hit, entry = self.l2c.access(block)
        if hit:
            latency = l1_latency + self.config.l2c.latency
            served_by_prefetch = False
            if entry.prefetched and not getattr(entry, "_useful_counted", False):
                entry._useful_counted = True  # type: ignore[attr-defined]
                served_by_prefetch = True
                stats.prefetch.useful_l2 += 1
                if entry.from_dram:
                    stats.prefetch.covered_llc_misses += 1
            self.l1d.fill(block, prefetched=False, from_dram=False, dirty=is_store)
            stats.l2_hits += 1
            stats.total_demand_latency += latency
            return AccessResult(
                latency=latency, hit_level="L2C", served_by_prefetch=served_by_prefetch
            )

        stats.l2_misses += 1

        # 4. LLC ---------------------------------------------------------- #
        hit, _entry = self.llc.access(block)
        if hit:
            latency = (
                l1_latency + self.config.l2c.latency + self.config.llc.latency
            )
            self.l2c.fill(block, prefetched=False, from_dram=False)
            self.l1d.fill(block, prefetched=False, from_dram=False, dirty=is_store)
            stats.llc_hits += 1
            stats.total_demand_latency += latency
            return AccessResult(latency=latency, hit_level="LLC")

        stats.llc_misses += 1

        # 5. DRAM --------------------------------------------------------- #
        dram_latency = self.dram.access(block, cycle, is_prefetch=False)
        latency = (
            l1_latency
            + self.config.l2c.latency
            + self.config.llc.latency
            + dram_latency
        )
        stats.dram_reads += 1
        self.llc.fill(block, prefetched=False, from_dram=True)
        self.l2c.fill(block, prefetched=False, from_dram=True)
        self.l1d.fill(block, prefetched=False, from_dram=True, dirty=is_store)
        stats.total_demand_latency += latency
        return AccessResult(latency=latency, hit_level="DRAM")

    # ------------------------------------------------------------------ #
    # Prefetch path
    # ------------------------------------------------------------------ #
    def enqueue_prefetches(self, requests, cycle: int) -> int:
        """Add prefetch requests to the PQ; returns how many were accepted."""
        accepted = 0
        for request in requests:
            self.stats.prefetch.generated += 1
            if self.prefetch_queue.push(request, cycle):
                accepted += 1
            else:
                self.stats.prefetch.dropped_queue_full += 1
        return accepted

    def issue_queued_prefetches(self, cycle: int, limit: Optional[int] = None) -> int:
        """Drain the PQ and issue requests into the hierarchy."""
        issued = 0
        for queued in self.prefetch_queue.drain(limit):
            self._issue_prefetch(queued.request, cycle)
            issued += 1
        return issued

    def _issue_prefetch(self, request: PrefetchRequest, cycle: int) -> None:
        block = request.block
        stats = self.stats.prefetch

        # Redundant: already in the L1D (or being filled).
        if self.l1d.contains(block) or self.l1_mshr.lookup(block) is not None:
            stats.redundant += 1
            return
        if request.hint is PrefetchHint.L2 and self.l2c.contains(block):
            stats.redundant += 1
            return

        stats.issued += 1

        # Find where the data currently lives and how long it takes to get it.
        from_dram = False
        if self.l2c.contains(block):
            source_latency = self.config.l2c.latency
            self.l2c.lookup(block, update_lru=True)
        elif self.llc.contains(block):
            source_latency = self.config.l2c.latency + self.config.llc.latency
            self.llc.lookup(block, update_lru=True)
        else:
            dram_latency = self.dram.access(block, cycle, is_prefetch=True)
            source_latency = (
                self.config.l2c.latency + self.config.llc.latency + dram_latency
            )
            from_dram = True
            self.llc.fill(block, prefetched=False, from_dram=True)

        if request.hint is PrefetchHint.L1:
            if not self.l1_mshr.has_free_entry(cycle):
                stats.dropped_mshr_full += 1
                # Fall back to an L2 fill so the work done is not wasted.
                if not self.l2c.contains(block):
                    self.l2c.fill(block, prefetched=True, from_dram=from_dram)
                    stats.filled_l2 += 1
                return
            entry = self.l1_mshr.allocate(
                block,
                ready_cycle=cycle + source_latency,
                is_prefetch=True,
                hint_level=1,
            )
            entry.from_dram = from_dram
            stats.filled_l1 += 1
        else:
            if not self.l2c.contains(block):
                self.l2c.fill(block, prefetched=True, from_dram=from_dram)
                stats.filled_l2 += 1
            else:
                stats.redundant += 1

    def _complete_ready_prefetches(self, cycle: int) -> None:
        """Move finished in-flight prefetches from the MSHRs into the L1D."""
        for entry in self.l1_mshr.expire(cycle):
            self.l1d.fill(
                entry.block, prefetched=entry.is_prefetch, from_dram=entry.from_dram
            )

    def flush_prefetches(self, cycle: int) -> None:
        """Issue everything still queued and complete all in-flight fills."""
        for queued in self.prefetch_queue.drain_all():
            self._issue_prefetch(queued.request, cycle)
        self._complete_ready_prefetches(cycle + 10**9)
