"""Three-level cache hierarchy with prefetch routing.

The hierarchy owns an L1D, a private L2C and an LLC (which may be shared in
multi-core simulations), plus a DRAM model, an L1 MSHR file used to track
in-flight prefetches, and a prefetch queue.  It is deliberately
non-inclusive and write-allocate; stores are treated like loads for timing
purposes (the paper trains prefetchers on loads only, which the simulator
driver enforces).

Responsibilities:

* compute the load-to-use latency of every demand access (including partial
  savings from late prefetches),
* fill/evict blocks with prefetch provenance so usefulness can be measured,
* issue queued prefetch requests, accounting for redundant requests, MSHR
  pressure and DRAM bandwidth.

``demand_access`` is the single hottest function of the simulator: level
latencies are pre-summed at construction time, the caches and stats object
are bound to locals, and the common cases (empty MSHR file, empty prefetch
queue) exit before doing any work.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.cache import Cache, MSHRFile
from repro.sim.config import SystemConfig
from repro.sim.dram import DRAMModel
from repro.sim.prefetch_queue import PrefetchQueue
from repro.sim.stats import SimulationStats
from repro.sim.types import AccessResult, PrefetchHint, PrefetchRequest, BLOCK_SHIFT


class CacheHierarchy:
    """L1D + L2C + LLC + DRAM with prefetch support for one core.

    Slotted: ``demand_access`` and ``_issue_prefetch`` read these attributes
    on every simulated access.  ``stats``/``llc``/``dram`` stay assignable
    (warm-up stat swaps, epoch-sharded shadow rebinding) — slots only pin
    the attribute *set*, not mutability.
    """

    __slots__ = (
        "config",
        "stats",
        "l1d",
        "l2c",
        "llc",
        "dram",
        "l1_mshr",
        "prefetch_queue",
        "_lat_l1",
        "_lat_l2",
        "_lat_llc",
        "_lat_l2_source",
        "_lat_llc_source",
        "_llc_plain",
    )

    def __init__(
        self,
        config: SystemConfig,
        stats: Optional[SimulationStats] = None,
        shared_llc: Optional[Cache] = None,
        shared_dram: Optional[DRAMModel] = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else SimulationStats()
        self.l1d = Cache(config.l1d)
        self.l2c = Cache(config.l2c)
        self.llc = shared_llc if shared_llc is not None else Cache(config.llc)
        self.dram = shared_dram if shared_dram is not None else DRAMModel(config.dram)
        self.l1_mshr = MSHRFile(config.l1d.mshrs)
        self.prefetch_queue = PrefetchQueue(
            capacity=config.l1d.prefetch_queue_size,
            drain_per_access=config.l1d.max_prefetch_issue_per_access,
        )
        # Pre-summed load-to-use latencies per serving level.
        self._lat_l1 = config.l1d.latency
        self._lat_l2 = self._lat_l1 + config.l2c.latency
        self._lat_llc = self._lat_l2 + config.llc.latency
        self._lat_l2_source = config.l2c.latency
        self._lat_llc_source = config.l2c.latency + config.llc.latency
        # Plain-Cache LLCs (private single-core, or the shared exact-mode
        # LLC) can take the listener-free fast fill for blocks that just
        # missed; recording shadows and other duck-typed stand-ins cannot.
        self._llc_plain = type(self.llc) is Cache and not self.llc.eviction_listeners
        self._register_eviction_listeners()

    # ------------------------------------------------------------------ #
    # Setup helpers
    # ------------------------------------------------------------------ #
    def _count_useless_eviction(self, victim) -> None:
        """Eviction listener: a prefetched block left L1/L2 untouched."""
        if victim.prefetched and not victim.prefetch_useful:
            self.stats.prefetch.useless += 1

    def _register_eviction_listeners(self) -> None:
        # One bound method instead of per-instance closures; it reads
        # ``self.stats`` dynamically so warm-up stat swaps keep working.
        self.l1d.eviction_listeners.append(self._count_useless_eviction)
        self.l2c.eviction_listeners.append(self._count_useless_eviction)

    def rebind_shared(self, llc, dram) -> None:
        """Point this hierarchy at different shared LLC/DRAM objects.

        The demand and prefetch paths read ``self.llc``/``self.dram``
        dynamically, so rebinding takes effect on the next access.  The
        epoch-sharded multi-core driver uses this to swap in per-epoch
        recording shadows (anything duck-typing the ``probe``/``fill``/
        ``lookup``/``contains`` and ``access`` surfaces is accepted).
        """
        self.llc = llc
        self.dram = dram
        self._llc_plain = type(llc) is Cache and not llc.eviction_listeners

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #
    def demand_access(self, address: int, cycle: int, is_store: bool = False) -> AccessResult:
        """Route one demand access through the hierarchy.

        Returns an :class:`AccessResult` with the total latency and the level
        that served the request.  Prefetch bookkeeping (useful / late /
        covered) is updated as a side effect.
        """
        l1_mshr = self.l1_mshr
        if l1_mshr:
            self._complete_ready_prefetches(cycle)

        block = address >> BLOCK_SHIFT
        stats = self.stats
        stats.demand_accesses += 1
        l1_latency = self._lat_l1

        # 1. In-flight prefetch (late prefetch) -------------------------- #
        inflight = l1_mshr.lookup(block) if l1_mshr else None
        if inflight is not None:
            remaining = inflight.ready_cycle - cycle
            latency = remaining if remaining > l1_latency else l1_latency
            l1_mshr.remove(block)
            # In-flight blocks are never L1-resident (the MSHR entry would
            # have been consumed by the demand that filled them).
            self.l1d.fill_absent(
                block, inflight.is_prefetch, inflight.from_dram, is_store
            )
            entry = self.l1d.lookup(block, update_lru=True)
            is_prefetch = inflight.is_prefetch
            result = AccessResult(latency, "L1D", is_prefetch, is_prefetch)
            stats.l1_hits += 1
            if is_prefetch:
                entry.prefetch_useful = True
                prefetch_stats = stats.prefetch
                prefetch_stats.useful_l1 += 1
                prefetch_stats.late += 1
                if inflight.from_dram:
                    prefetch_stats.covered_llc_misses += 1
            stats.total_demand_latency += latency
            return result

        # 2. L1D ---------------------------------------------------------- #
        # The probe is inlined (set-dict get + LRU re-insertion + counters,
        # exactly Cache.probe): the L1D/L2C are always this hierarchy's
        # private plain caches, so going through the method adds nothing
        # but call overhead to the hottest branch of the simulator.
        l1d = self.l1d
        mask = l1d._set_mask
        l1_set = l1d._sets[
            block & mask if mask is not None else block % l1d._set_count
        ]
        entry = l1_set.get(block)
        if entry is not None:
            del l1_set[block]
            l1_set[block] = entry
            l1d.hits += 1
            served_by_prefetch = False
            if entry.prefetched:
                if not entry.prefetch_useful:
                    entry.prefetch_useful = True
                if not entry.useful_counted:
                    entry.useful_counted = True
                    served_by_prefetch = True
                    stats.prefetch.useful_l1 += 1
                    if entry.from_dram:
                        stats.prefetch.covered_llc_misses += 1
            if is_store:
                entry.dirty = True
            stats.l1_hits += 1
            stats.total_demand_latency += l1_latency
            return AccessResult(l1_latency, "L1D", served_by_prefetch)

        l1d.misses += 1
        stats.l1_misses += 1

        # 3. L2C ---------------------------------------------------------- #
        l2c = self.l2c
        mask = l2c._set_mask
        l2_set = l2c._sets[
            block & mask if mask is not None else block % l2c._set_count
        ]
        entry = l2_set.get(block)
        if entry is not None:
            del l2_set[block]
            l2_set[block] = entry
            l2c.hits += 1
            latency = self._lat_l2
            served_by_prefetch = False
            if entry.prefetched:
                if not entry.prefetch_useful:
                    entry.prefetch_useful = True
                if not entry.useful_counted:
                    entry.useful_counted = True
                    served_by_prefetch = True
                    stats.prefetch.useful_l2 += 1
                    if entry.from_dram:
                        stats.prefetch.covered_llc_misses += 1
            l1d.fill_absent(block, False, False, is_store)
            stats.l2_hits += 1
            stats.total_demand_latency += latency
            return AccessResult(latency, "L2C", served_by_prefetch)

        l2c.misses += 1
        stats.l2_misses += 1

        # 4. LLC ---------------------------------------------------------- #
        if self.llc.probe(block) is not None:
            latency = self._lat_llc
            l2c.fill_absent(block, False, False)
            l1d.fill_absent(block, False, False, is_store)
            stats.llc_hits += 1
            stats.total_demand_latency += latency
            return AccessResult(latency, "LLC")

        stats.llc_misses += 1

        # 5. DRAM --------------------------------------------------------- #
        dram_latency = self.dram.access(block, cycle, is_prefetch=False)
        latency = self._lat_llc + dram_latency
        stats.dram_reads += 1
        if self._llc_plain:
            self.llc.fill_absent(block, False, True)
        else:
            self.llc.fill(block, prefetched=False, from_dram=True)
        l2c.fill_absent(block, False, True)
        l1d.fill_absent(block, False, True, is_store)
        stats.total_demand_latency += latency
        return AccessResult(latency, "DRAM")

    # ------------------------------------------------------------------ #
    # Prefetch path
    # ------------------------------------------------------------------ #
    def enqueue_prefetches(self, requests, cycle: int) -> int:
        """Add prefetch requests to the PQ; returns how many were accepted.

        The generated/dropped statistics are batched: one counter merge per
        call instead of one per request.
        """
        accepted = 0
        total = 0
        queue_push = self.prefetch_queue.push
        for request in requests:
            total += 1
            if queue_push(request, cycle):
                accepted += 1
        prefetch_stats = self.stats.prefetch
        prefetch_stats.generated += total
        if accepted != total:
            prefetch_stats.dropped_queue_full += total - accepted
        return accepted

    def issue_queued_prefetches(self, cycle: int, limit: Optional[int] = None) -> int:
        """Drain the PQ and issue requests into the hierarchy.

        Pops straight off the queue's deque instead of materializing a
        drained list — same FIFO order and drain limit.
        """
        queue = self.prefetch_queue
        pending = queue._queue
        if not pending:
            return 0
        if limit is None:
            limit = queue.drain_per_access
        issued = 0
        issue = self._issue_prefetch
        popleft = pending.popleft
        while pending and issued < limit:
            issue(popleft()[0], cycle)
            issued += 1
        return issued

    def _issue_prefetch(self, request: PrefetchRequest, cycle: int) -> None:
        # Hot for aggressive designs (PMP issues more prefetches than it
        # sees demand accesses), so the L1D/L2C membership checks and the
        # L2C LRU touch are inlined set-dict operations — same rationale as
        # in :meth:`demand_access`.  The LLC and DRAM stay behind their
        # methods (they may be recording shadows in multi-core runs).
        block = request.address >> BLOCK_SHIFT
        stats = self.stats.prefetch
        l1d = self.l1d
        mask = l1d._set_mask
        l1_set = l1d._sets[
            block & mask if mask is not None else block % l1d._set_count
        ]
        l1_mshr = self.l1_mshr
        hint = request.hint
        hint_is_l2 = hint is PrefetchHint.L2

        # Redundant: already in the L1D (or being filled).
        if block in l1_set or block in l1_mshr._entries:
            stats.redundant += 1
            return
        l2c = self.l2c
        mask = l2c._set_mask
        l2_set = l2c._sets[
            block & mask if mask is not None else block % l2c._set_count
        ]
        l2_entry = l2_set.get(block)
        if hint_is_l2 and l2_entry is not None:
            stats.redundant += 1
            return

        stats.issued += 1

        # Find where the data currently lives and how long it takes to get it.
        from_dram = False
        if l2_entry is not None:
            source_latency = self._lat_l2_source
            del l2_set[block]
            l2_set[block] = l2_entry
        elif self.llc.lookup(block, update_lru=True) is not None:
            source_latency = self._lat_llc_source
        else:
            dram_latency = self.dram.access(block, cycle, is_prefetch=True)
            source_latency = self._lat_llc_source + dram_latency
            from_dram = True
            if self._llc_plain:
                self.llc.fill_absent(block, False, True)
            else:
                self.llc.fill(block, prefetched=False, from_dram=True)

        if not hint_is_l2 and hint is PrefetchHint.L1:
            if not l1_mshr.has_free_entry(cycle):
                stats.dropped_mshr_full += 1
                # Fall back to an L2 fill so the work done is not wasted.
                if block not in l2_set:
                    l2c.fill_absent(block, True, from_dram)
                    stats.filled_l2 += 1
                return
            entry = l1_mshr.allocate(
                block,
                ready_cycle=cycle + source_latency,
                is_prefetch=True,
                hint_level=1,
            )
            entry.from_dram = from_dram
            stats.filled_l1 += 1
        else:
            if block not in l2_set:
                l2c.fill_absent(block, True, from_dram)
                stats.filled_l2 += 1
            else:
                stats.redundant += 1

    def _complete_ready_prefetches(self, cycle: int) -> None:
        """Move finished in-flight prefetches from the MSHRs into the L1D.

        In-flight blocks are never L1-resident (see the in-flight branch of
        :meth:`demand_access`), so the fills skip the residency check.
        """
        fill_absent = self.l1d.fill_absent
        for entry in self.l1_mshr.expire(cycle):
            fill_absent(entry.block, entry.is_prefetch, entry.from_dram)

    def flush_prefetches(self, cycle: int) -> None:
        """Issue everything still queued and complete all in-flight fills."""
        for queued in self.prefetch_queue.drain_all():
            self._issue_prefetch(queued.request, cycle)
        self._complete_ready_prefetches(cycle + 10**9)
