"""Deterministic content hashing for experiment artefacts.

The job engine keys its persistent result cache on a content hash of the
complete simulation request (trace spec, prefetcher, system configuration,
scale).  The hash must be stable across processes and Python invocations, so
it is computed over a *canonical* JSON encoding (sorted keys, no whitespace)
rather than over Python's process-randomized ``hash()``.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(value: Any) -> str:
    """Encode ``value`` as canonical JSON (sorted keys, compact separators).

    Only JSON-representable values are accepted; anything else raises
    ``TypeError`` so non-serializable state cannot silently leak into a
    cache key.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
