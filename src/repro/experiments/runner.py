"""Experiment runner: caches traces and baseline simulations.

The paper's experiments all share a structure: simulate a set of traces with
a set of prefetchers and compare against the no-prefetching baseline of the
same trace.  :class:`ExperimentRunner` provides exactly that, with caching
of generated traces and of baseline runs so figures that share workloads do
not pay for them twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.prefetchers.registry import create_prefetcher
from repro.sim.config import SystemConfig, default_system_config
from repro.sim.simulator import simulate_trace
from repro.sim.stats import SimulationStats
from repro.sim.types import MemoryAccess
from repro.workloads.suites import trace_specs_for_suite
from repro.workloads.trace import TraceSpec


@dataclass(frozen=True)
class RunScale:
    """Controls how much work an experiment does.

    The paper simulates 200M instructions per trace on ChampSim; a Python
    simulator cannot, so experiments run scaled-down traces.  The relative
    comparisons the figures make survive the scaling because every
    prefetcher sees exactly the same trace and the same system.
    """

    trace_length: int = 12_000
    traces_per_suite: Optional[int] = 3
    warmup_fraction: float = 0.0

    def select(self, specs: Sequence[TraceSpec]) -> List[TraceSpec]:
        """Pick the subset of trace specs this scale allows."""
        if self.traces_per_suite is None:
            return list(specs)
        return list(specs)[: self.traces_per_suite]


@dataclass
class RunResult:
    """One (trace, prefetcher) simulation outcome plus its baseline."""

    spec: TraceSpec
    prefetcher: str
    stats: SimulationStats
    baseline: SimulationStats

    @property
    def speedup(self) -> float:
        """IPC speedup over the no-prefetching baseline."""
        return self.stats.speedup(self.baseline)

    @property
    def accuracy(self) -> float:
        """Overall prefetch accuracy."""
        return self.stats.prefetch.accuracy

    @property
    def coverage(self) -> float:
        """LLC miss coverage relative to the baseline run."""
        return self.stats.coverage(self.baseline)

    @property
    def late_fraction(self) -> float:
        """Fraction of useful prefetches that were late."""
        return self.stats.prefetch.late_fraction

    def row(self) -> Dict[str, object]:
        """Flat dictionary representation (for reports and tests)."""
        return {
            "trace": self.spec.name,
            "suite": self.spec.suite,
            "prefetcher": self.prefetcher,
            "speedup": self.speedup,
            "accuracy": self.accuracy,
            "coverage": self.coverage,
            "late_fraction": self.late_fraction,
            "ipc": self.stats.ipc,
            "baseline_ipc": self.baseline.ipc,
            "llc_mpki": self.stats.llc_mpki,
        }


class ExperimentRunner:
    """Runs (trace x prefetcher) grids with trace/baseline caching."""

    def __init__(
        self,
        scale: Optional[RunScale] = None,
        system: Optional[SystemConfig] = None,
    ) -> None:
        self.scale = scale if scale is not None else RunScale()
        self.system = system if system is not None else default_system_config(1)
        self._trace_cache: Dict[Tuple[str, int], List[MemoryAccess]] = {}
        self._baseline_cache: Dict[Tuple[str, int, int], SimulationStats] = {}

    # ------------------------------------------------------------------ #
    # Trace and baseline management
    # ------------------------------------------------------------------ #
    def trace_for(self, spec: TraceSpec) -> List[MemoryAccess]:
        """Build (or fetch from cache) the trace for ``spec``."""
        key = (spec.name, self.scale.trace_length)
        if key not in self._trace_cache:
            self._trace_cache[key] = spec.build(length=self.scale.trace_length)
        return self._trace_cache[key]

    def _system_key(self, system: SystemConfig) -> int:
        return hash(
            (
                system.l1d.size_bytes,
                system.l2c.size_bytes,
                system.llc.size_bytes,
                system.dram.channels,
                system.dram.transfer_rate_mtps,
                system.num_cores,
            )
        )

    def baseline_for(
        self, spec: TraceSpec, system: Optional[SystemConfig] = None
    ) -> SimulationStats:
        """No-prefetching run of ``spec`` (cached per system configuration)."""
        system = system if system is not None else self.system
        key = (spec.name, self.scale.trace_length, self._system_key(system))
        if key not in self._baseline_cache:
            self._baseline_cache[key] = simulate_trace(
                self.trace_for(spec),
                prefetcher=None,
                config=system,
                name=spec.name,
            )
        return self._baseline_cache[key]

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #
    def run_one(
        self,
        spec: TraceSpec,
        prefetcher_name: str,
        system: Optional[SystemConfig] = None,
    ) -> RunResult:
        """Simulate one trace with one prefetcher."""
        system = system if system is not None else self.system
        trace = self.trace_for(spec)
        baseline = self.baseline_for(spec, system)
        if prefetcher_name in ("none", None):
            stats = baseline
        else:
            prefetcher = create_prefetcher(prefetcher_name)
            stats = simulate_trace(
                trace, prefetcher=prefetcher, config=system, name=spec.name
            )
        return RunResult(
            spec=spec, prefetcher=prefetcher_name, stats=stats, baseline=baseline
        )

    def run_grid(
        self,
        specs: Iterable[TraceSpec],
        prefetchers: Sequence[str],
        system: Optional[SystemConfig] = None,
    ) -> List[RunResult]:
        """Simulate every (trace, prefetcher) combination."""
        results: List[RunResult] = []
        for spec in specs:
            for prefetcher_name in prefetchers:
                results.append(self.run_one(spec, prefetcher_name, system))
        return results

    def run_suites(
        self,
        suites: Sequence[str],
        prefetchers: Sequence[str],
        system: Optional[SystemConfig] = None,
    ) -> List[RunResult]:
        """Simulate a grid over whole benchmark suites (scaled selection)."""
        specs: List[TraceSpec] = []
        for suite in suites:
            specs.extend(self.scale.select(trace_specs_for_suite(suite)))
        return self.run_grid(specs, prefetchers, system)
